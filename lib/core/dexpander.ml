(** Public umbrella API for the distributed expander decomposition
    library — the entry point a downstream user should start from.

    The toolkit reproduces Chang & Saranurak, "Improved Distributed
    Expander Decomposition and Nearly Optimal Triangle Enumeration"
    (PODC 2019) on a simulated CONGEST network:

    - {!decompose} — Theorem 1, the (ε, φ)-expander decomposition;
    - {!sparse_cut} — Theorem 3, the nearly most balanced sparse cut;
    - {!low_diameter_decomposition} — Theorem 4;
    - {!enumerate_triangles} — Theorem 2, Õ(n^{1/3})-round triangle
      enumeration.

    Sub-libraries are re-exported under their natural names for users
    who need the underlying machinery (walks, sweeps, the CONGEST
    kernel, generators, baselines). *)

module Rng = Dex_util.Rng
module Stats = Dex_util.Stats
module Table = Dex_util.Table
module Invariant = Dex_util.Invariant
module Graph = Dex_graph.Graph
module Vertex = Dex_graph.Vertex
module Metrics = Dex_graph.Metrics
module Generators = Dex_graph.Generators
module Graph_io = Dex_graph.Graph_io
module Json = Dex_obs.Json
module Trace = Dex_obs.Trace
module Clock = Dex_obs.Clock
module Bench_snapshot = Dex_obs.Snapshot
module Network = Dex_congest.Network
module Arena = Dex_congest.Arena
module Conformance = Dex_congest.Conformance
module Rounds = Dex_congest.Rounds
module Primitives = Dex_congest.Primitives
module Faults = Dex_congest.Faults
module Reliable = Dex_congest.Reliable
module Clique = Dex_congest.Clique
module Walk = Dex_spectral.Walk
module Sweep = Dex_spectral.Sweep
module Mixing = Dex_spectral.Mixing
module Exact_cut = Dex_spectral.Exact
module Nibble = Dex_sparsecut.Nibble
module Nibble_params = Dex_sparsecut.Params
module Parallel_nibble = Dex_sparsecut.Parallel_nibble
module Sparse_cut = Dex_sparsecut.Partition
module Sparse_cut_sequential = Dex_sparsecut.St_reference
module Cut_baselines = Dex_sparsecut.Baselines
module Pagerank_cut = Dex_sparsecut.Pagerank_cut
module Clustering = Dex_ldd.Clustering
module Ldd = Dex_ldd.Ldd
module Schedule = Dex_decomp.Schedule
module Decomposition = Dex_decomp.Decomposition
module Decomposition_verify = Dex_decomp.Verify
module Las_vegas = Dex_decomp.Las_vegas
module Cpz_baseline = Dex_decomp.Cpz_baseline
module Recursive_baseline = Dex_decomp.Recursive_baseline
module Trimming = Dex_decomp.Trimming
module Routing = Dex_routing.Hierarchy
module Token_router = Dex_routing.Token_router
module Triangles = Dex_triangle.Exact
module Triangle_enum = Dex_triangle.Expander_enum
module Triangle_baselines = Dex_triangle.Baselines
module Triangle_dlp = Dex_triangle.Dlp

(** [decompose ?preset ?ledger ?epsilon ?k g ~seed] computes an
    (ε, φ)-expander decomposition (Theorem 1). Defaults: ε = 1/6,
    k = 2. Pass a [ledger] (optionally with a {!Trace.t} attached via
    {!Rounds.attach_trace}) to observe the run's span structure, round
    charges and message traffic. *)
let decompose ?preset ?ledger ?(epsilon = 1.0 /. 6.0) ?(k = 2) g ~seed =
  Decomposition.run ?preset ?ledger ~epsilon ~k g (Rng.create seed)

(** [sparse_cut ?preset ?ledger ?phi g ~seed] runs the nearly most
    balanced sparse cut (Theorem 3) at conductance parameter [phi]
    (default 1/20). *)
let sparse_cut ?preset ?ledger ?(phi = 0.05) g ~seed =
  let params =
    Dex_sparsecut.Params.make ?preset ~phi ~m:(max 1 (Graph.num_edges g)) ()
  in
  Sparse_cut.run ?ledger params g (Rng.create seed)

(** [low_diameter_decomposition ?ledger ?beta g ~seed] runs Theorem 4's
    LDD (default β = 0.1). *)
let low_diameter_decomposition ?ledger ?(beta = 0.1) g ~seed =
  Ldd.run_graph ?ledger g ~beta (Rng.create seed)

(** [enumerate_triangles ?ledger ?epsilon ?k g ~seed] enumerates every
    triangle of [g] via expander decomposition (Theorem 2). *)
let enumerate_triangles ?ledger ?epsilon ?k g ~seed =
  Triangle_enum.run ?ledger ?epsilon ?k_decomp:k g (Rng.create seed)

(* CSR slot-addressed message arena: the zero-allocation data plane of
   the CONGEST kernel (DESIGN.md §11).

   Every directed edge (v, adj(v).(i)) owns one preallocated message
   slot at the dense CSR index off(v) + i, on two flat planes:

   - the staging plane (src-side slots): a vertex's sends land in its
     own slots during the parallelizable step phase, so concurrent
     writers touch disjoint indices by construction;
   - the inbox plane (dst-side slots): the sequential delivery phase
     copies each staged message through the [mirror] table into the
     receiver's slot for the next round.

   Occupancy is stamp-based rather than bitmap-cleared: each slot
   carries the tick at which it was last filled, the tick is a
   per-arena monotonic counter that never resets, and a slot is live
   exactly when its stamp matches the current tick — so rounds (and
   whole protocol runs reusing one network) never pay an O(m) clear.
   Together the two planes are the double buffer: steady-state
   execution allocates nothing. *)

module Graph = Dex_graph.Graph
module Vertex = Dex_graph.Vertex

exception Congestion_violation of string

type t = {
  n : int;
  word_size : int;
  off : int array; (* n+1 CSR offsets *)
  nbr : int array; (* slot -> other endpoint of its directed edge *)
  mirror : int array; (* src-side slot -> matching dst-side slot *)
  to_orig : int -> int; (* violation messages in caller coordinates *)
  (* inbox plane (dst-side slots) *)
  data : int array; (* 2m * word_size message words *)
  len : int array;
  cnt : Bytes.t; (* deliveries into the slot this round: 0/1/2 *)
  stamp : int array; (* tick at which the slot was filled *)
  (* staging plane (src-side slots) *)
  out_data : int array;
  out_len : int array;
  enq : int array; (* tick at which the slot was staged; doubles as
                      the duplicate-send detector *)
  (* active set *)
  wake : int array; (* per-vertex self-wake stamp *)
  listed : int array; (* per-vertex already-on-next-worklist stamp *)
  mutable work : int array; (* this round's active vertices, sorted *)
  mutable work_n : int;
  mutable next : int array; (* next round's worklist, being built *)
  mutable next_n : int;
  mutable tick : int; (* monotonic round counter; never reset *)
}

let create ?(word_size = 1) ?(to_orig = fun v -> v) g =
  Dex_util.Invariant.require (word_size >= 1) ~where:"Arena.create"
    "word_size must be >= 1";
  let n = Graph.num_vertices g in
  let off = Graph.csr_offsets g in
  let m2 = off.(n) in
  let nbr = Array.make m2 0 in
  for v = 0 to n - 1 do
    let a = Graph.neighbors g v in
    Array.blit a 0 nbr off.(v) (Array.length a)
  done;
  let mirror = Array.make m2 0 in
  for v = 0 to n - 1 do
    for s = off.(v) to off.(v + 1) - 1 do
      mirror.(s) <- off.(nbr.(s)) + Graph.neighbor_rank g nbr.(s) v
    done
  done;
  { n;
    word_size;
    off;
    nbr;
    mirror;
    to_orig;
    data = Array.make (m2 * word_size) 0;
    len = Array.make m2 0;
    cnt = Bytes.make m2 '\000';
    stamp = Array.make m2 0;
    out_data = Array.make (m2 * word_size) 0;
    out_len = Array.make m2 0;
    enq = Array.make m2 0;
    wake = Array.make n 0;
    listed = Array.make n 0;
    work = Array.make n 0;
    work_n = 0;
    next = Array.make n 0;
    next_n = 0;
    tick = 1 }

let word_size a = a.word_size
let slot_count a = Array.length a.nbr

(* leftmost slot of the directed edge (v, u), or -1 *)
let rank_slot a v u =
  let lo = ref a.off.(v) and hi = ref a.off.(v + 1) in
  while !lo < !hi do
    let mid = (!lo + !hi) / 2 in
    if a.nbr.(mid) < u then lo := mid + 1 else hi := mid
  done;
  if !lo < a.off.(v + 1) && a.nbr.(!lo) = u then !lo else -1

(* ---------------- cursors ---------------- *)

type inbox = { ia : t; mutable iv : int }
type outbox = { oa : t; mutable ov : int }

let make_inbox a = { ia = a; iv = 0 }
let make_outbox a = { oa = a; ov = 0 }
let set_inbox ib v = ib.iv <- v
let set_outbox ob v = ob.ov <- v

module Inbox = struct
  let is_empty ib =
    let a = ib.ia in
    let t = a.tick in
    let empty = ref true in
    let s = ref a.off.(ib.iv) and hi = a.off.(ib.iv + 1) in
    while !empty && !s < hi do
      if a.stamp.(!s) = t then empty := false;
      incr s
    done;
    !empty

  let count ib =
    let a = ib.ia in
    let t = a.tick in
    let c = ref 0 in
    for s = a.off.(ib.iv) to a.off.(ib.iv + 1) - 1 do
      if a.stamp.(s) = t then c := !c + Char.code (Bytes.unsafe_get a.cnt s)
    done;
    !c

  let iter1 ib f =
    let a = ib.ia in
    let t = a.tick in
    for s = a.off.(ib.iv) to a.off.(ib.iv + 1) - 1 do
      if a.stamp.(s) = t then begin
        let src = a.nbr.(s) in
        let w = a.data.(s * a.word_size) in
        f src w;
        if Char.code (Bytes.unsafe_get a.cnt s) > 1 then f src w
      end
    done

  let iter ib f =
    let a = ib.ia in
    let t = a.tick in
    for s = a.off.(ib.iv) to a.off.(ib.iv + 1) - 1 do
      if a.stamp.(s) = t then begin
        let src = a.nbr.(s) in
        let msg = Array.sub a.data (s * a.word_size) a.len.(s) in
        f src msg;
        if Char.code (Bytes.unsafe_get a.cnt s) > 1 then f src msg
      end
    done

  let to_list ib =
    (* legacy inbox ordering: senders descending, a duplicated message
       appearing twice in adjacent positions sharing one array — the
       exact list [Network]'s list-based executors would have built *)
    let acc = ref [] in
    iter ib (fun src msg ->
        (* dex-lint: allow C002 relays messages the arena validated against the budget at send *)
        acc := (src, msg) :: !acc);
    !acc
end

module Outbox = struct
  let not_a_neighbor a v u =
    let u_disp = if u >= 0 && u < a.n then a.to_orig u else u in
    raise
      (Congestion_violation
         (Printf.sprintf "vertex %d: %d is not a neighbor" (a.to_orig v) u_disp))

  let stage ob u words write =
    let a = ob.oa in
    let v = ob.ov in
    if words > a.word_size then
      raise
        (Congestion_violation
           (Printf.sprintf "vertex %d: message of %d words exceeds budget %d"
              (a.to_orig v) words a.word_size));
    let s = if u = v then -1 else rank_slot a v u in
    if s < 0 then not_a_neighbor a v u;
    if a.enq.(s) = a.tick then
      raise
        (Congestion_violation
           (Printf.sprintf "vertex %d: two messages on edge to %d in one round"
              (a.to_orig v) (a.to_orig u)));
    a.enq.(s) <- a.tick;
    a.out_len.(s) <- words;
    write a.out_data (s * a.word_size)

  let send1 ob ~dst w =
    stage ob (Vertex.local_int dst) 1 (fun data pos -> data.(pos) <- w)

  let send ob ~dst msg =
    stage ob (Vertex.local_int dst) (Array.length msg) (fun data pos ->
        Array.blit msg 0 data pos (Array.length msg))

  let wake ob =
    let a = ob.oa in
    a.wake.(ob.ov) <- a.tick
end

(* ---------------- active set ---------------- *)

(* in-place heapsort of arr[0..k): no allocation, deterministic *)
let sort_prefix arr k =
  let swap i j =
    let x = arr.(i) in
    arr.(i) <- arr.(j);
    arr.(j) <- x
  in
  let rec sift_down root last =
    let child = (2 * root) + 1 in
    if child <= last then begin
      let child =
        if child + 1 <= last && arr.(child) < arr.(child + 1) then child + 1
        else child
      in
      if arr.(root) < arr.(child) then begin
        swap root child;
        sift_down child last
      end
    end
  in
  for i = (k - 2) / 2 downto 0 do
    sift_down i (k - 1)
  done;
  for last = k - 1 downto 1 do
    swap 0 last;
    sift_down 0 (last - 1)
  done

let begin_run a =
  (* a fresh tick retires whatever a previous (possibly aborted) run
     left stamped: staleness is impossible because ticks are monotone *)
  a.tick <- a.tick + 1;
  for v = 0 to a.n - 1 do
    a.work.(v) <- v
  done;
  a.work_n <- a.n;
  a.next_n <- 0

let active_count a = a.work_n
let active_get a i = a.work.(i)
let woke a v = a.wake.(v) = a.tick

let push_active a v =
  if a.listed.(v) <> a.tick then begin
    a.listed.(v) <- a.tick;
    a.next.(a.next_n) <- v;
    a.next_n <- a.next_n + 1
  end

let deliver_staged a src verdict =
  let t = a.tick in
  for s = a.off.(src) to a.off.(src + 1) - 1 do
    if a.enq.(s) = t then begin
      let dst = a.nbr.(s) in
      let len = a.out_len.(s) in
      match verdict dst len with
      | `Drop -> ()
      | (`Deliver | `Duplicate) as v ->
        let d = a.mirror.(s) in
        Array.blit a.out_data (s * a.word_size) a.data (d * a.word_size) len;
        a.len.(d) <- len;
        a.stamp.(d) <- t + 1;
        Bytes.unsafe_set a.cnt d
          (match v with `Duplicate -> '\002' | `Deliver -> '\001');
        push_active a dst
    end
  done

let finish_round a =
  a.tick <- a.tick + 1;
  let w = a.work in
  a.work <- a.next;
  a.next <- w;
  a.work_n <- a.next_n;
  a.next_n <- 0;
  (* deliveries appended the next worklist in (src, slot) order, not
     vertex order; canonical ascending order keeps every executor's
     activation sequence identical *)
  sort_prefix a.work a.work_n

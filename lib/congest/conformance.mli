(** Schedule-permutation race detector and CONGEST-conformance auditor.

    The synchronous CONGEST model gives a protocol no control over the
    order in which vertices are activated within a round or the order
    in which an inbox lists its messages. A protocol whose outcome
    depends on either order has a schedule race: it computes something
    the model does not define. This module detects such races
    dynamically, complementing the static rules of [dex_lint]
    (D001/D002 forbid the two most common in-process sources of
    schedule sensitivity — hash-order iteration and ambient
    randomness).

    {!check} executes the protocol twice on the same graph: once under
    the canonical schedule (vertices activated in id order, inboxes
    sorted by sender) and once under a seeded adversarial schedule
    that re-permutes both orders every round. After each round it
    digests every vertex state; any digest mismatch at any (round,
    vertex) is reported as a {!State_divergence}. Both executions are
    additionally audited against the CONGEST kernel invariants that
    {!Network} enforces: at most [word_size] words per message, at
    most one message per directed edge per round, and neighbors only.

    The protocol is supplied as a thunk so each replay rebuilds its
    closures — any mutable state or RNG captured by [init]/[step]/
    [finished] must be created inside the thunk, otherwise the second
    replay starts warm and the comparison is meaningless. *)

type run_tag = Canonical | Permuted

type violation =
  | Word_budget_exceeded of {
      run : run_tag;
      round : int;
      vertex : int;
      dst : int;
      words : int;
      budget : int;
    }
  | Duplicate_message of { run : run_tag; round : int; vertex : int; dst : int }
      (** more than one message on a directed edge in one round *)
  | Not_a_neighbor of { run : run_tag; round : int; vertex : int; dst : int }
      (** includes self-sends *)
  | Round_limit of { run : run_tag; executed : int }
      (** the protocol did not quiesce within [max_rounds] *)
  | State_divergence of {
      round : int;
      vertex : int;
      digest_canonical : int;
      digest_permuted : int;
    }  (** the schedule race itself: same round, same vertex, different state *)
  | Round_divergence of { rounds_canonical : int; rounds_permuted : int }

(** One-line human rendering of a violation. *)
val describe : violation -> string

(** A protocol restated as pure data against the same [step] signature
    as {!Network.run}; [finished] is the quiescence predicate (the
    engine also waits for in-flight messages, like [Network.run]). *)
type 's protocol = {
  init : int -> 's;
  step : 's Network.step;
  finished : 's array -> bool;
}

type report = {
  rounds_canonical : int;
  rounds_permuted : int;
  messages_canonical : int;
  messages_permuted : int;
  violations : violation list;  (** capped at 32 entries; empty iff conformant *)
}

(** [ok report] is [true] iff no violation was recorded. *)
val ok : report -> bool

(** [default_digest s] is the structural digest {!check} uses when no
    [?digest] is supplied ([Hashtbl.hash_param 256 256]). Exported so
    the cross-executor equivalence suite can hash per-round state
    arrays with the exact same function the conformance engine uses. *)
val default_digest : 's -> int

(** [check ?word_size ?max_rounds ?seed ?digest g ~protocol ()] replays
    [protocol ()] under the canonical and the seeded-permuted schedule
    and compares them. [digest] (default [Hashtbl.hash_param 256 256])
    must be a total function of the state — if the state contains
    caches or closures, supply a digest over the meaningful fields. *)
val check :
  ?word_size:int ->
  ?max_rounds:int ->
  ?seed:int ->
  ?digest:('s -> int) ->
  Dex_graph.Graph.t ->
  protocol:(unit -> 's protocol) ->
  unit ->
  report

(** {2 Reference protocols}

    Conformant restatements of the {!Primitives} protocols, usable as
    smoke workloads for {!check} (see the [conformance] CLI command). *)

type bfs_state = { dist : int; par : int; pending : bool }

(** BFS flood from [root] (default vertex 0): min-adoption over the
    inbox, ties broken toward the smaller sender id —
    order-insensitive. *)
val bfs : ?root:Dex_graph.Vertex.local -> Dex_graph.Graph.t -> unit -> bfs_state protocol

type leader_state = { best : int; fresh : bool }

(** Minimum-id flooding leader election; requires a connected graph. *)
val leader : Dex_graph.Graph.t -> unit -> leader_state protocol

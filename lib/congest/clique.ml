module Invariant = Dex_util.Invariant

exception Congestion_violation of string

type message = int array

type t = {
  size : int;
  ledger : Rounds.t;
  word_size : int;
  mutable messages : int;
}

type 's step =
  round:int ->
  vertex:Dex_graph.Vertex.local ->
  's ->
  (int * message) list ->
  's * (int * message) list

let create ?(word_size = 1) ~n ledger =
  Invariant.require (n >= 1) ~where:"Clique.create" "n >= 1";
  Invariant.require (word_size >= 1) ~where:"Clique.create" "word_size >= 1";
  { size = n; ledger; word_size; messages = 0 }

let messages_sent t = t.messages

let validate t v outbox =
  let seen = Hashtbl.create 16 in
  List.iter
    (fun (u, (msg : message)) ->
      if Array.length msg > t.word_size then
        raise
          (Congestion_violation
             (Printf.sprintf "vertex %d: message of %d words exceeds budget %d" v
                (Array.length msg) t.word_size));
      if u < 0 || u >= t.size then
        raise (Congestion_violation (Printf.sprintf "vertex %d: destination %d out of range" v u));
      if u = v then
        raise (Congestion_violation (Printf.sprintf "vertex %d: self message" v));
      if Hashtbl.mem seen u then
        raise
          (Congestion_violation
             (Printf.sprintf "vertex %d: two messages to %d in one round" v u));
      Hashtbl.replace seen u ())
    outbox

let run_rounds t ~label ~init ~step k =
  let states = Array.init t.size init in
  let inboxes = ref (Array.make t.size []) in
  for round = 1 to k do
    let next = Array.make t.size [] in
    for v = 0 to t.size - 1 do
      let state', outbox = step ~round ~vertex:(Dex_graph.Vertex.local v) states.(v) !inboxes.(v) in
      states.(v) <- state';
      validate t v outbox;
      List.iter
        (fun (u, msg) ->
          t.messages <- t.messages + 1;
          (* dex-lint: allow C002 relays messages validate just checked against the budget *)
          next.(u) <- (v, msg) :: next.(u))
        outbox
    done;
    inboxes := next
  done;
  Rounds.charge t.ledger ~label k;
  states

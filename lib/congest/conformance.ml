module Graph = Dex_graph.Graph
module Rng = Dex_util.Rng

type run_tag = Canonical | Permuted

let run_name = function Canonical -> "canonical" | Permuted -> "permuted"

type violation =
  | Word_budget_exceeded of {
      run : run_tag;
      round : int;
      vertex : int;
      dst : int;
      words : int;
      budget : int;
    }
  | Duplicate_message of { run : run_tag; round : int; vertex : int; dst : int }
  | Not_a_neighbor of { run : run_tag; round : int; vertex : int; dst : int }
  | Round_limit of { run : run_tag; executed : int }
  | State_divergence of { round : int; vertex : int; digest_canonical : int; digest_permuted : int }
  | Round_divergence of { rounds_canonical : int; rounds_permuted : int }

let describe = function
  | Word_budget_exceeded { run; round; vertex; dst; words; budget } ->
    Printf.sprintf "[%s] round %d: vertex %d -> %d sends %d words (budget %d)"
      (run_name run) round vertex dst words budget
  | Duplicate_message { run; round; vertex; dst } ->
    Printf.sprintf "[%s] round %d: vertex %d sends twice on directed edge to %d"
      (run_name run) round vertex dst
  | Not_a_neighbor { run; round; vertex; dst } ->
    Printf.sprintf "[%s] round %d: vertex %d sends to non-neighbor %d" (run_name run) round
      vertex dst
  | Round_limit { run; executed } ->
    Printf.sprintf "[%s] protocol did not quiesce within %d rounds" (run_name run) executed
  | State_divergence { round; vertex; digest_canonical; digest_permuted } ->
    Printf.sprintf
      "round %d: vertex %d state digest diverges under permuted schedule (%d vs %d)" round
      vertex digest_canonical digest_permuted
  | Round_divergence { rounds_canonical; rounds_permuted } ->
    Printf.sprintf "round counts diverge under permuted schedule (%d vs %d)" rounds_canonical
      rounds_permuted

type 's protocol = {
  init : int -> 's;
  step : 's Network.step;
  finished : 's array -> bool;
}

type report = {
  rounds_canonical : int;
  rounds_permuted : int;
  messages_canonical : int;
  messages_permuted : int;
  violations : violation list;
}

let ok r = r.violations = []

(* cap the violation list: one schedule bug fires at every vertex of
   every round, and the report should stay readable *)
let max_reported = 32

type 's run_result = {
  digests : int array list; (* per round, per vertex *)
  audit : violation list;
  rounds : int;
  messages : int;
}

(* One full execution of [p] with the same delivery semantics as
   [Network.run] (synchronous rounds, quiescence = finished AND no
   message in flight), but under an explicit schedule: [Canonical]
   activates vertices in id order and delivers each inbox sorted by
   sender; [Permuted] draws a fresh activation permutation and inbox
   shuffle from [rng] every round. A conformant protocol cannot
   observe the difference. *)
let exec ~run ~word_size ~max_rounds ~rng g (p : 's protocol) ~digest =
  let n = Graph.num_vertices g in
  let audit = ref [] in
  let nviol = ref 0 in
  let record v =
    if !nviol < max_reported then audit := v :: !audit;
    incr nviol
  in
  let states = Array.init n p.init in
  let inboxes = ref (Array.make n []) in
  let digests = ref [] in
  let messages = ref 0 in
  let executed = ref 0 in
  let in_flight () = Array.exists (fun inbox -> inbox <> []) !inboxes in
  while (not (p.finished states && not (in_flight ()))) && !executed < max_rounds do
    incr executed;
    let round = !executed in
    let order = Array.init n (fun i -> i) in
    (match rng with Some r -> Rng.shuffle r order | None -> ());
    let next = Array.make n [] in
    Array.iter
      (fun v ->
        let inbox =
          match rng with
          | None ->
            List.stable_sort (fun (a, _) (b, _) -> compare (a : int) b) !inboxes.(v)
          | Some r ->
            let a = Array.of_list !inboxes.(v) in
            Rng.shuffle r a;
            Array.to_list a
        in
        let state', outbox = p.step ~round ~vertex:(Dex_graph.Vertex.local v) states.(v) inbox in
        states.(v) <- state';
        let seen = Hashtbl.create 8 in
        List.iter
          (fun (u, (msg : Network.message)) ->
            if Array.length msg > word_size then
              record
                (Word_budget_exceeded
                   { run; round; vertex = v; dst = u;
                     words = Array.length msg; budget = word_size });
            if v = u || not (Graph.mem_edge g v u) then
              record (Not_a_neighbor { run; round; vertex = v; dst = u });
            if Hashtbl.mem seen u then record (Duplicate_message { run; round; vertex = v; dst = u })
            else Hashtbl.replace seen u ();
            incr messages;
            (* dex-lint: allow C002 the audit kernel records budget violations instead of raising *)
            next.(u) <- (v, msg) :: next.(u))
          outbox)
      order;
    inboxes := next;
    digests := Array.map digest states :: !digests
  done;
  if not (p.finished states) then record (Round_limit { run; executed = !executed });
  { digests = List.rev !digests; audit = List.rev !audit; rounds = !executed;
    messages = !messages }

let default_digest s = Hashtbl.hash_param 256 256 s

let check ?(word_size = 1) ?(max_rounds = 100_000) ?(seed = 0xD1CE) ?digest g ~protocol () =
  let digest = match digest with Some d -> d | None -> default_digest in
  (* the protocol thunk rebuilds every closure, so each replay starts
     from virgin mutable state and a virgin RNG *)
  let a = exec ~run:Canonical ~word_size ~max_rounds ~rng:None g (protocol ()) ~digest in
  let b =
    exec ~run:Permuted ~word_size ~max_rounds ~rng:(Some (Rng.create seed)) g (protocol ())
      ~digest
  in
  let divergences = ref [] in
  let ndiv = ref 0 in
  if a.rounds <> b.rounds then begin
    divergences :=
      [ Round_divergence { rounds_canonical = a.rounds; rounds_permuted = b.rounds } ];
    incr ndiv
  end;
  List.iteri
    (fun i (da, db) ->
      Array.iteri
        (fun v ha ->
          let hb = db.(v) in
          if ha <> hb then begin
            if !ndiv < max_reported then
              divergences :=
                State_divergence
                  { round = i + 1; vertex = v; digest_canonical = ha; digest_permuted = hb }
                :: !divergences;
            incr ndiv
          end)
        da)
    (List.combine
       (if List.length a.digests <= List.length b.digests then a.digests
        else List.filteri (fun i _ -> i < List.length b.digests) a.digests)
       (if List.length b.digests <= List.length a.digests then b.digests
        else List.filteri (fun i _ -> i < List.length a.digests) b.digests));
  { rounds_canonical = a.rounds;
    rounds_permuted = b.rounds;
    messages_canonical = a.messages;
    messages_permuted = b.messages;
    violations = a.audit @ b.audit @ List.rev !divergences }

(* ---------------- reference protocols ---------------- *)

(* the BFS flood of [Primitives.bfs_tree], restated against the
   [protocol] record; min-adoption over the inbox is order-insensitive
   by construction *)
type bfs_state = { dist : int; par : int; pending : bool }

let bfs ?(root = Dex_graph.Vertex.local 0) g () =
  let root = Dex_graph.Vertex.local_int root in
  let init v =
    if v = root then { dist = 0; par = root; pending = true }
    else { dist = max_int; par = -1; pending = false }
  in
  let step ~round:_ ~vertex:v st inbox =
    let v = Dex_graph.Vertex.local_int v in
    let st =
      if st.dist = max_int then
        List.fold_left
          (fun acc (sender, (msg : Network.message)) ->
            let d = msg.(0) + 1 in
            if d < acc.dist || (d = acc.dist && sender < acc.par) then
              { dist = d; par = sender; pending = true }
            else acc)
          st inbox
      else st
    in
    if st.pending then begin
      let outbox = ref [] in
      Graph.iter_neighbors g v (fun u -> outbox := (u, [| st.dist |]) :: !outbox);
      ({ st with pending = false }, !outbox)
    end
    else (st, [])
  in
  let finished states = Array.for_all (fun st -> not st.pending) states in
  { init; step; finished }

type leader_state = { best : int; fresh : bool }

let leader g () =
  let init v = { best = v; fresh = true } in
  let step ~round:_ ~vertex:v st inbox =
    let v = Dex_graph.Vertex.local_int v in
    let best =
      List.fold_left (fun acc (_, (msg : Network.message)) -> min acc msg.(0)) st.best inbox
    in
    if best < st.best || st.fresh then begin
      let outbox = ref [] in
      Graph.iter_neighbors g v (fun u -> outbox := (u, [| best |]) :: !outbox);
      ({ best; fresh = false }, !outbox)
    end
    else ({ best; fresh = false }, [])
  in
  (* on a connected graph the minimum floods everywhere; quiescence is
     then handled by the engine's in-flight check *)
  let finished states =
    let target = Array.fold_left (fun acc st -> min acc st.best) max_int states in
    Array.for_all (fun st -> st.best = target && not st.fresh) states
  in
  { init; step; finished }

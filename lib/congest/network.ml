module Graph = Dex_graph.Graph
module Vertex = Dex_graph.Vertex
module Trace = Dex_obs.Trace
module Invariant = Dex_util.Invariant

exception Congestion_violation = Arena.Congestion_violation

type packed_states = Packed : 'a array -> packed_states

exception
  Round_limit_exceeded of {
    label : string;
    max_rounds : int;
    executed : int;
    states : packed_states;
  }

type message = int array

type executor = Legacy | Staged | Parallel of int

(* process-global default so experiment drivers can flip every network
   they create onto one executor without threading a parameter through
   each call site *)
let default_executor = ref Staged
let set_default_executor e = default_executor := e

(* per-executor duplicate-send scratch: [seen.(u) = epoch] marks one
   message already bound for [u] this validation. Epoch stamping makes
   the array reusable without clearing; each domain of the parallel
   executor owns its own scratch. *)
type vscratch = { seen : int array; mutable epoch : int }

type t = {
  graph : Graph.t;
  ledger : Rounds.t;
  word_size : int;
  faults : Faults.t option;
  vertex_map : Vertex.Map.t option; (* local -> original-graph vertex ids *)
  trace : Trace.t option; (* cached from the ledger at creation *)
  executor : executor;
  shard_min : int; (* smallest active set worth spawning domains for *)
  scratches : vscratch array; (* one per domain; index 0 = sequential *)
  mutable outbox_buf : (int * message) list array; (* staged Phase A results *)
  mutable arena : Arena.t option; (* built on first run_active *)
  mutable messages : int;
  mutable words : int;
}

type 's step =
  round:int ->
  vertex:Vertex.local ->
  's ->
  (int * message) list ->
  's * (int * message) list

type 's active_step =
  round:int -> vertex:Vertex.local -> 's -> Arena.inbox -> Arena.outbox -> 's

let create ?(word_size = 1) ?faults ?vertex_map ?executor ?(shard_min = 512) graph
    ledger =
  Invariant.require (word_size >= 1) ~where:"Network.create" "word_size must be >= 1";
  (match vertex_map with
  | Some map when Vertex.Map.length map <> Graph.num_vertices graph ->
    Invariant.fail ~where:"Network.create" "vertex_map length must equal the vertex count"
  | _ -> ());
  let executor = match executor with Some e -> e | None -> !default_executor in
  (match executor with
  | Parallel k when k < 1 ->
    Invariant.fail ~where:"Network.create" "Parallel executor needs at least 1 domain"
  | _ -> ());
  let trace = Rounds.trace ledger in
  let map v =
    match vertex_map with Some m -> Vertex.orig_int (Vertex.Map.get m v) | None -> v
  in
  (match (faults, trace) with
  | Some f, Some tr ->
    (* bridge every fault decision into the structured trace, in
       original-graph coordinates *)
    Faults.set_observer f
      (Some
         (fun fault ->
           let kind, round, src, dst =
             match fault with
             | Faults.Drop { round; src; dst } -> ("drop", round, map src, map dst)
             | Faults.Duplicate { round; src; dst } ->
               ("duplicate", round, map src, map dst)
             | Faults.Link_down { round; u; v } -> ("link-down", round, map u, map v)
             | Faults.Crash { round; vertex } -> ("crash", round, map vertex, -1)
           in
           Trace.fault tr ~kind ~round ~src ~dst))
  | _ -> ());
  let n = Graph.num_vertices graph in
  let domains = match executor with Parallel k -> max k 1 | _ -> 1 in
  { graph;
    ledger;
    word_size;
    faults;
    vertex_map;
    trace;
    executor;
    shard_min;
    scratches =
      Array.init domains (fun _ -> { seen = Array.make n 0; epoch = 0 });
    outbox_buf = [||];
    arena = None;
    messages = 0;
    words = 0 }

let graph t = t.graph
let messages_sent t = t.messages
let words_sent t = t.words
let rounds t = t.ledger
let faults t = t.faults
let vertex_map t = t.vertex_map
let executor t = t.executor
let charge t ~label k = Rounds.charge t.ledger ~label k

let top_edges t k = match t.trace with Some tr -> Trace.top_edges tr k | None -> []

(* [orig t v] reports [v] in original-graph coordinates: violation
   messages raised from deep inside a recursive decomposition must name
   the vertex of the instance the caller actually built. *)
let orig t v =
  match t.vertex_map with Some m -> Vertex.orig_int (Vertex.Map.get m v) | None -> v

let validate_outbox t sc v outbox =
  (* one message per incident edge: with simple graphs this is one per
     distinct neighbor; detect duplicates and non-neighbors. The
     epoch-stamped scratch plus a binary neighbor-rank probe replaces
     the old per-vertex-per-round Hashtbl + mem_edge pair: zero
     allocation and one cache-resident array. Check order (budget,
     then neighbor, then duplicate) matches the legacy validator, so
     [sc.seen] is only ever indexed by an in-range neighbor id. *)
  sc.epoch <- sc.epoch + 1;
  let ep = sc.epoch in
  List.iter
    (fun (u, (msg : message)) ->
      if Array.length msg > t.word_size then
        raise
          (Congestion_violation
             (Printf.sprintf "vertex %d: message of %d words exceeds budget %d" (orig t v)
                (Array.length msg) t.word_size));
      if u = v || Graph.neighbor_rank t.graph v u < 0 then
        raise
          (Congestion_violation
             (Printf.sprintf "vertex %d: %d is not a neighbor" (orig t v) (orig t u)));
      if sc.seen.(u) = ep then
        raise
          (Congestion_violation
             (Printf.sprintf "vertex %d: two messages on edge to %d in one round" (orig t v)
                (orig t u)));
      sc.seen.(u) <- ep)
    outbox

(* per-round tracing accumulators; allocated only when a trace is
   attached, so disabled tracing costs one match per delivery *)
type round_stats = {
  tr : Trace.t;
  loads : (int * int, int) Hashtbl.t; (* local undirected edge -> deliveries *)
  touched : bool array;
}

let make_stats t =
  match t.trace with
  | None -> None
  | Some tr ->
    Some
      { tr;
        loads = Hashtbl.create 64;
        touched = Array.make (Graph.num_vertices t.graph) false }

let emit_stats t ~round ~messages_before ~words_before = function
  | Some { tr; loads; touched } ->
    let map v = orig t v in
    let max_load = ref 0 in
    Dex_util.Table.iter_sorted
      (fun (u, v) c ->
        if c > !max_load then max_load := c;
        Trace.count_edge tr (map u) (map v) ~by:c)
      loads;
    let active = ref 0 in
    Array.iter (fun b -> if b then incr active) touched;
    Trace.round_tick tr ~round
      ~messages:(t.messages - messages_before)
      ~words:(t.words - words_before)
      ~max_edge_load:!max_load ~active:!active
  | None -> ()

(* ---------------- legacy executor: interleaved step + delivery ----- *)

let exec_round t ~round states inboxes step =
  let n = Graph.num_vertices t.graph in
  let next_inboxes = Array.make n [] in
  let stats = make_stats t in
  let messages_before = t.messages and words_before = t.words in
  let deliver src dst msg =
    t.messages <- t.messages + 1;
    t.words <- t.words + Array.length msg;
    (match stats with
    | Some { loads; touched; _ } ->
      touched.(src) <- true;
      touched.(dst) <- true;
      let e = (min src dst, max src dst) in
      let prev = try Hashtbl.find loads e with Not_found -> 0 in
      Hashtbl.replace loads e (prev + 1)
    | None -> ());
    (* dex-lint: allow C002 relays messages validate_outbox already checked against the budget *)
    next_inboxes.(dst) <- (src, msg) :: next_inboxes.(dst)
  in
  for v = 0 to n - 1 do
    let crashed =
      match t.faults with
      | Some f -> Faults.crashed f ~round ~vertex:(Vertex.local v)
      | None -> false
    in
    (* a crashed vertex executes no step, sends nothing and its inbox
       is lost (crash-stop) *)
    if not crashed then begin
      let state', outbox = step ~round ~vertex:(Vertex.local v) states.(v) inboxes.(v) in
      states.(v) <- state';
      validate_outbox t t.scratches.(0) v outbox;
      List.iter
        (fun (u, msg) ->
          match t.faults with
          | None -> deliver v u msg
          | Some f ->
            (match Faults.verdict f ~round ~src:(Vertex.local v) ~dst:(Vertex.local u) with
            | `Deliver -> deliver v u msg
            | `Drop -> ()
            | `Duplicate ->
              deliver v u msg;
              deliver v u msg))
        outbox
    end
  done;
  emit_stats t stats ~round ~messages_before ~words_before;
  next_inboxes

(* ---------------- staged executors: Phase A step, Phase B deliver -- *)

(* Phase A steps every vertex against the immutable previous-round
   inboxes and parks the validated outboxes in [t.outbox_buf]; only
   reads of the fault schedule happen here ([Faults.is_crashed]), so
   the phase may be sharded across domains: each vertex writes
   states.(v) and outbox_buf.(v) for its own v only. Phase B then
   walks vertices in ascending order doing everything stateful —
   crash recording, fault verdicts, delivery counters, trace stats —
   reproducing the legacy executor's event order exactly. *)

let outbox_buf t =
  let n = Graph.num_vertices t.graph in
  if Array.length t.outbox_buf <> n then t.outbox_buf <- Array.make n [];
  t.outbox_buf

let chunk_bounds ~chunks ~extent i =
  (i * extent / chunks, (i + 1) * extent / chunks)

(* run [work lo hi domain_index] over [0, extent) sharded across
   [domains] chunks. Each chunk reports its first exception; the
   lowest chunk's exception is re-raised, which is the lowest erroring
   vertex since chunks are contiguous and ascending — the same
   exception the sequential executor would have raised. *)
let run_sharded ~domains ~extent work =
  if domains <= 1 || extent < 2 then
    match work 0 extent 0 with Some e -> raise e | None -> ()
  else begin
    let chunks = min domains extent in
    let spawned =
      Array.init (chunks - 1) (fun j ->
          let lo, hi = chunk_bounds ~chunks ~extent (j + 1) in
          Domain.spawn (fun () -> work lo hi (j + 1)))
    in
    let lo, hi = chunk_bounds ~chunks ~extent 0 in
    let first = work lo hi 0 in
    let results = Array.map Domain.join spawned in
    (match first with Some e -> raise e | None -> ());
    Array.iter (function Some e -> raise e | None -> ()) results
  end

(* Domain.spawn costs milliseconds; sharding a narrow round can never
   repay it, so the parallel executor falls back to the sequential
   Phase A below [shard_min] stepped vertices. The decision only picks
   who executes Phase A — results are bit-identical either way. *)
let effective_domains t ~active =
  match t.executor with
  | Parallel k when active >= t.shard_min -> k
  | Parallel _ | Legacy | Staged -> 1

let exec_round_staged t ~round ~domains states inboxes step =
  let n = Graph.num_vertices t.graph in
  let buf = outbox_buf t in
  let work lo hi ci =
    try
      for v = lo to hi - 1 do
        let crashed =
          match t.faults with
          | Some f -> Faults.is_crashed f ~round ~vertex:(Vertex.local v)
          | None -> false
        in
        if crashed then buf.(v) <- []
        else begin
          let state', outbox =
            step ~round ~vertex:(Vertex.local v) states.(v) inboxes.(v)
          in
          states.(v) <- state';
          validate_outbox t t.scratches.(ci) v outbox;
          buf.(v) <- outbox
        end
      done;
      None
    with e -> Some e
  in
  run_sharded ~domains ~extent:n work;
  (* Phase B: sequential, ascending vertex order *)
  let next_inboxes = Array.make n [] in
  let stats = make_stats t in
  let messages_before = t.messages and words_before = t.words in
  let deliver src dst msg =
    t.messages <- t.messages + 1;
    t.words <- t.words + Array.length msg;
    (match stats with
    | Some { loads; touched; _ } ->
      touched.(src) <- true;
      touched.(dst) <- true;
      let e = (min src dst, max src dst) in
      let prev = try Hashtbl.find loads e with Not_found -> 0 in
      Hashtbl.replace loads e (prev + 1)
    | None -> ());
    (* dex-lint: allow C002 relays messages validate_outbox already checked against the budget *)
    next_inboxes.(dst) <- (src, msg) :: next_inboxes.(dst)
  in
  for v = 0 to n - 1 do
    let crashed =
      match t.faults with
      | Some f -> Faults.crashed f ~round ~vertex:(Vertex.local v)
      | None -> false
    in
    if not crashed then
      List.iter
        (fun (u, msg) ->
          match t.faults with
          | None -> deliver v u msg
          | Some f ->
            (match Faults.verdict f ~round ~src:(Vertex.local v) ~dst:(Vertex.local u) with
            | `Deliver -> deliver v u msg
            | `Drop -> ()
            | `Duplicate ->
              deliver v u msg;
              deliver v u msg))
        buf.(v);
    buf.(v) <- []
  done;
  emit_stats t stats ~round ~messages_before ~words_before;
  (next_inboxes, t.messages - messages_before)

(* ---------------- list-API drivers ---------------- *)

let notify on_round round states =
  match on_round with Some f -> f round states | None -> ()

let run t ~label ~init ~step ~finished ?(max_rounds = 1_000_000) ?on_round () =
  let n = Graph.num_vertices t.graph in
  let states = Array.init n init in
  let inboxes = ref (Array.make n []) in
  let executed = ref 0 in
  (* a protocol is complete only when its predicate holds AND no
     message is still in flight — otherwise the wave it just sent
     would be lost *)
  (match t.executor with
  | Legacy ->
    let in_flight () = Array.exists (fun inbox -> inbox <> []) !inboxes in
    while (not (finished states && not (in_flight ()))) && !executed < max_rounds do
      incr executed;
      inboxes := exec_round t ~round:!executed states !inboxes step;
      notify on_round !executed states
    done
  | Staged | Parallel _ ->
    let domains = effective_domains t ~active:n in
    (* incremental in-flight: the staged executor already counted this
       round's deliveries, so no O(n) rescan of the inboxes *)
    let in_flight = ref false in
    while (not (finished states && not !in_flight)) && !executed < max_rounds do
      incr executed;
      let next, delivered =
        exec_round_staged t ~round:!executed ~domains states !inboxes step
      in
      inboxes := next;
      in_flight := delivered > 0;
      notify on_round !executed states
    done);
  if not (finished states) then begin
    (* the rounds were really executed: charge them before raising so
       the ledger stays truthful on failure *)
    Rounds.charge t.ledger ~label !executed;
    raise
      (Round_limit_exceeded
         { label; max_rounds; executed = !executed; states = Packed states })
  end;
  Rounds.charge t.ledger ~label !executed;
  (states, !executed)

let run_rounds t ~label ~init ~step ?on_round n_rounds =
  let n = Graph.num_vertices t.graph in
  let states = Array.init n init in
  let inboxes = ref (Array.make n []) in
  (match t.executor with
  | Legacy ->
    for round = 1 to n_rounds do
      inboxes := exec_round t ~round states !inboxes step;
      notify on_round round states
    done
  | Staged | Parallel _ ->
    let domains = effective_domains t ~active:n in
    for round = 1 to n_rounds do
      let next, _ = exec_round_staged t ~round ~domains states !inboxes step in
      inboxes := next;
      notify on_round round states
    done);
  Rounds.charge t.ledger ~label n_rounds;
  states

(* ---------------- cursor API: arena-backed active-set driver ------- *)

let arena_of t =
  match t.arena with
  | Some a -> a
  | None ->
    let a = Arena.create ~word_size:t.word_size ~to_orig:(fun v -> orig t v) t.graph in
    t.arena <- Some a;
    a

let run_active t ~label ~init ~step ?(max_rounds = 1_000_000) ?on_round () =
  let n = Graph.num_vertices t.graph in
  let a = arena_of t in
  Arena.begin_run a;
  let states = Array.init n init in
  let max_domains = match t.executor with Parallel k -> k | Legacy | Staged -> 1 in
  let ibs = Array.init (max max_domains 1) (fun _ -> Arena.make_inbox a) in
  let obs = Array.init (max max_domains 1) (fun _ -> Arena.make_outbox a) in
  let executed = ref 0 in
  while Arena.active_count a > 0 && !executed < max_rounds do
    incr executed;
    let round = !executed in
    let active = Arena.active_count a in
    (* Phase A: step active vertices through reusable cursors *)
    let work lo hi ci =
      try
        let ib = ibs.(ci) and ob = obs.(ci) in
        for i = lo to hi - 1 do
          let v = Arena.active_get a i in
          let crashed =
            match t.faults with
            | Some f -> Faults.is_crashed f ~round ~vertex:(Vertex.local v)
            | None -> false
          in
          if not crashed then begin
            Arena.set_inbox ib v;
            Arena.set_outbox ob v;
            states.(v) <- step ~round ~vertex:(Vertex.local v) states.(v) ib ob
          end
        done;
        None
      with e -> Some e
    in
    run_sharded ~domains:(effective_domains t ~active) ~extent:active work;
    (* Phase B: sequential merge in canonical (ascending vertex, then
       ascending destination) order *)
    let stats = make_stats t in
    let messages_before = t.messages and words_before = t.words in
    let record src dst words times =
      t.messages <- t.messages + times;
      t.words <- t.words + (times * words);
      match stats with
      | Some { loads; touched; _ } ->
        touched.(src) <- true;
        touched.(dst) <- true;
        let e = (min src dst, max src dst) in
        let prev = try Hashtbl.find loads e with Not_found -> 0 in
        Hashtbl.replace loads e (prev + times)
      | None -> ()
    in
    for i = 0 to active - 1 do
      let v = Arena.active_get a i in
      let crashed =
        match t.faults with
        | Some f -> Faults.crashed f ~round ~vertex:(Vertex.local v)
        | None -> false
      in
      if not crashed then begin
        Arena.deliver_staged a v (fun dst words ->
            match t.faults with
            | None ->
              record v dst words 1;
              `Deliver
            | Some f ->
              (match
                 Faults.verdict f ~round ~src:(Vertex.local v) ~dst:(Vertex.local dst)
               with
              | `Deliver ->
                record v dst words 1;
                `Deliver
              | `Drop -> `Drop
              | `Duplicate ->
                record v dst words 2;
                `Duplicate));
        if Arena.woke a v then Arena.push_active a v
      end
    done;
    emit_stats t stats ~round ~messages_before ~words_before;
    Arena.finish_round a;
    notify on_round round states
  done;
  let quiescent = Arena.active_count a = 0 in
  Rounds.charge t.ledger ~label !executed;
  if not quiescent then
    raise
      (Round_limit_exceeded
         { label; max_rounds; executed = !executed; states = Packed states });
  (states, !executed)

module Graph = Dex_graph.Graph
module Vertex = Dex_graph.Vertex
module Trace = Dex_obs.Trace
module Invariant = Dex_util.Invariant

exception Congestion_violation of string

type packed_states = Packed : 'a array -> packed_states

exception
  Round_limit_exceeded of {
    label : string;
    max_rounds : int;
    executed : int;
    states : packed_states;
  }

type message = int array

type t = {
  graph : Graph.t;
  ledger : Rounds.t;
  word_size : int;
  faults : Faults.t option;
  vertex_map : Vertex.Map.t option; (* local -> original-graph vertex ids *)
  trace : Trace.t option; (* cached from the ledger at creation *)
  mutable messages : int;
  mutable words : int;
}

type 's step =
  round:int ->
  vertex:Vertex.local ->
  's ->
  (int * message) list ->
  's * (int * message) list

let create ?(word_size = 1) ?faults ?vertex_map graph ledger =
  Invariant.require (word_size >= 1) ~where:"Network.create" "word_size must be >= 1";
  (match vertex_map with
  | Some map when Vertex.Map.length map <> Graph.num_vertices graph ->
    Invariant.fail ~where:"Network.create" "vertex_map length must equal the vertex count"
  | _ -> ());
  let trace = Rounds.trace ledger in
  let map v =
    match vertex_map with Some m -> Vertex.orig_int (Vertex.Map.get m v) | None -> v
  in
  (match (faults, trace) with
  | Some f, Some tr ->
    (* bridge every fault decision into the structured trace, in
       original-graph coordinates *)
    Faults.set_observer f
      (Some
         (fun fault ->
           let kind, round, src, dst =
             match fault with
             | Faults.Drop { round; src; dst } -> ("drop", round, map src, map dst)
             | Faults.Duplicate { round; src; dst } ->
               ("duplicate", round, map src, map dst)
             | Faults.Link_down { round; u; v } -> ("link-down", round, map u, map v)
             | Faults.Crash { round; vertex } -> ("crash", round, map vertex, -1)
           in
           Trace.fault tr ~kind ~round ~src ~dst))
  | _ -> ());
  { graph; ledger; word_size; faults; vertex_map; trace; messages = 0; words = 0 }

let graph t = t.graph
let messages_sent t = t.messages
let words_sent t = t.words
let rounds t = t.ledger
let faults t = t.faults
let vertex_map t = t.vertex_map
let charge t ~label k = Rounds.charge t.ledger ~label k

let top_edges t k = match t.trace with Some tr -> Trace.top_edges tr k | None -> []

(* [orig t v] reports [v] in original-graph coordinates: violation
   messages raised from deep inside a recursive decomposition must name
   the vertex of the instance the caller actually built. *)
let orig t v =
  match t.vertex_map with Some m -> Vertex.orig_int (Vertex.Map.get m v) | None -> v

let validate_outbox t v outbox =
  (* one message per incident edge: with simple graphs this is one per
     distinct neighbor; detect duplicates and non-neighbors. *)
  let seen = Hashtbl.create 8 in
  List.iter
    (fun (u, (msg : message)) ->
      if Array.length msg > t.word_size then
        raise
          (Congestion_violation
             (Printf.sprintf "vertex %d: message of %d words exceeds budget %d" (orig t v)
                (Array.length msg) t.word_size));
      if not (Graph.mem_edge t.graph v u) || v = u then
        raise
          (Congestion_violation
             (Printf.sprintf "vertex %d: %d is not a neighbor" (orig t v) (orig t u)));
      if Hashtbl.mem seen u then
        raise
          (Congestion_violation
             (Printf.sprintf "vertex %d: two messages on edge to %d in one round" (orig t v)
                (orig t u)));
      Hashtbl.replace seen u ())
    outbox

(* per-round tracing accumulators; allocated only when a trace is
   attached, so disabled tracing costs one match per delivery *)
type round_stats = {
  tr : Trace.t;
  loads : (int * int, int) Hashtbl.t; (* local undirected edge -> deliveries *)
  touched : bool array;
}

let exec_round t ~round states inboxes step =
  let n = Graph.num_vertices t.graph in
  let next_inboxes = Array.make n [] in
  let stats =
    match t.trace with
    | None -> None
    | Some tr -> Some { tr; loads = Hashtbl.create 64; touched = Array.make n false }
  in
  let messages_before = t.messages and words_before = t.words in
  let deliver src dst msg =
    t.messages <- t.messages + 1;
    t.words <- t.words + Array.length msg;
    (match stats with
    | Some { loads; touched; _ } ->
      touched.(src) <- true;
      touched.(dst) <- true;
      let e = (min src dst, max src dst) in
      let prev = try Hashtbl.find loads e with Not_found -> 0 in
      Hashtbl.replace loads e (prev + 1)
    | None -> ());
    (* dex-lint: allow C002 relays messages validate_outbox already checked against the budget *)
    next_inboxes.(dst) <- (src, msg) :: next_inboxes.(dst)
  in
  for v = 0 to n - 1 do
    let crashed =
      match t.faults with
      | Some f -> Faults.crashed f ~round ~vertex:(Vertex.local v)
      | None -> false
    in
    (* a crashed vertex executes no step, sends nothing and its inbox
       is lost (crash-stop) *)
    if not crashed then begin
      let state', outbox = step ~round ~vertex:(Vertex.local v) states.(v) inboxes.(v) in
      states.(v) <- state';
      validate_outbox t v outbox;
      List.iter
        (fun (u, msg) ->
          match t.faults with
          | None -> deliver v u msg
          | Some f ->
            (match Faults.verdict f ~round ~src:(Vertex.local v) ~dst:(Vertex.local u) with
            | `Deliver -> deliver v u msg
            | `Drop -> ()
            | `Duplicate ->
              deliver v u msg;
              deliver v u msg))
        outbox
    end
  done;
  (match stats with
  | Some { tr; loads; touched } ->
    let map v = orig t v in
    let max_load = ref 0 in
    Dex_util.Table.iter_sorted
      (fun (u, v) c ->
        if c > !max_load then max_load := c;
        Trace.count_edge tr (map u) (map v) ~by:c)
      loads;
    let active = ref 0 in
    Array.iter (fun b -> if b then incr active) touched;
    Trace.round_tick tr ~round
      ~messages:(t.messages - messages_before)
      ~words:(t.words - words_before)
      ~max_edge_load:!max_load ~active:!active
  | None -> ());
  next_inboxes

let run t ~label ~init ~step ~finished ?(max_rounds = 1_000_000) () =
  let n = Graph.num_vertices t.graph in
  let states = Array.init n init in
  let inboxes = ref (Array.make n []) in
  let executed = ref 0 in
  (* a protocol is complete only when its predicate holds AND no
     message is still in flight — otherwise the wave it just sent
     would be lost *)
  let in_flight () = Array.exists (fun inbox -> inbox <> []) !inboxes in
  while (not (finished states && not (in_flight ()))) && !executed < max_rounds do
    incr executed;
    inboxes := exec_round t ~round:!executed states !inboxes step
  done;
  if not (finished states) then begin
    (* the rounds were really executed: charge them before raising so
       the ledger stays truthful on failure *)
    Rounds.charge t.ledger ~label !executed;
    raise
      (Round_limit_exceeded
         { label; max_rounds; executed = !executed; states = Packed states })
  end;
  Rounds.charge t.ledger ~label !executed;
  (states, !executed)

let run_rounds t ~label ~init ~step n_rounds =
  let n = Graph.num_vertices t.graph in
  let states = Array.init n init in
  let inboxes = ref (Array.make n []) in
  for round = 1 to n_rounds do
    inboxes := exec_round t ~round states !inboxes step
  done;
  Rounds.charge t.ledger ~label n_rounds;
  states

module Graph = Dex_graph.Graph

exception Congestion_violation of string

type packed_states = Packed : 'a array -> packed_states

exception
  Round_limit_exceeded of {
    label : string;
    max_rounds : int;
    executed : int;
    states : packed_states;
  }

type message = int array

type t = {
  graph : Graph.t;
  ledger : Rounds.t;
  word_size : int;
  faults : Faults.t option;
  mutable messages : int;
}

type 's step = round:int -> vertex:int -> 's -> (int * message) list -> 's * (int * message) list

let create ?(word_size = 1) ?faults graph ledger =
  if word_size < 1 then invalid_arg "Network.create: word_size must be >= 1";
  { graph; ledger; word_size; faults; messages = 0 }

let graph t = t.graph
let messages_sent t = t.messages
let rounds t = t.ledger
let faults t = t.faults
let charge t ~label k = Rounds.charge t.ledger ~label k

let validate_outbox t v outbox =
  (* one message per incident edge: with simple graphs this is one per
     distinct neighbor; detect duplicates and non-neighbors. *)
  let seen = Hashtbl.create 8 in
  List.iter
    (fun (u, (msg : message)) ->
      if Array.length msg > t.word_size then
        raise
          (Congestion_violation
             (Printf.sprintf "vertex %d: message of %d words exceeds budget %d" v
                (Array.length msg) t.word_size));
      if not (Graph.mem_edge t.graph v u) || v = u then
        raise
          (Congestion_violation (Printf.sprintf "vertex %d: %d is not a neighbor" v u));
      if Hashtbl.mem seen u then
        raise
          (Congestion_violation
             (Printf.sprintf "vertex %d: two messages on edge to %d in one round" v u));
      Hashtbl.replace seen u ())
    outbox

let exec_round t ~round states inboxes step =
  let n = Graph.num_vertices t.graph in
  let next_inboxes = Array.make n [] in
  let deliver src dst msg =
    t.messages <- t.messages + 1;
    next_inboxes.(dst) <- (src, msg) :: next_inboxes.(dst)
  in
  for v = 0 to n - 1 do
    let crashed =
      match t.faults with
      | Some f -> Faults.crashed f ~round ~vertex:v
      | None -> false
    in
    (* a crashed vertex executes no step, sends nothing and its inbox
       is lost (crash-stop) *)
    if not crashed then begin
      let state', outbox = step ~round ~vertex:v states.(v) inboxes.(v) in
      states.(v) <- state';
      validate_outbox t v outbox;
      List.iter
        (fun (u, msg) ->
          match t.faults with
          | None -> deliver v u msg
          | Some f ->
            (match Faults.verdict f ~round ~src:v ~dst:u with
            | `Deliver -> deliver v u msg
            | `Drop -> ()
            | `Duplicate ->
              deliver v u msg;
              deliver v u msg))
        outbox
    end
  done;
  next_inboxes

let run t ~label ~init ~step ~finished ?(max_rounds = 1_000_000) () =
  let n = Graph.num_vertices t.graph in
  let states = Array.init n init in
  let inboxes = ref (Array.make n []) in
  let executed = ref 0 in
  (* a protocol is complete only when its predicate holds AND no
     message is still in flight — otherwise the wave it just sent
     would be lost *)
  let in_flight () = Array.exists (fun inbox -> inbox <> []) !inboxes in
  while (not (finished states && not (in_flight ()))) && !executed < max_rounds do
    incr executed;
    inboxes := exec_round t ~round:!executed states !inboxes step
  done;
  if not (finished states) then begin
    (* the rounds were really executed: charge them before raising so
       the ledger stays truthful on failure *)
    Rounds.charge t.ledger ~label !executed;
    raise
      (Round_limit_exceeded
         { label; max_rounds; executed = !executed; states = Packed states })
  end;
  Rounds.charge t.ledger ~label !executed;
  (states, !executed)

let run_rounds t ~label ~init ~step n_rounds =
  let n = Graph.num_vertices t.graph in
  let states = Array.init n init in
  let inboxes = ref (Array.make n []) in
  for round = 1 to n_rounds do
    inboxes := exec_round t ~round states !inboxes step
  done;
  Rounds.charge t.ledger ~label n_rounds;
  states

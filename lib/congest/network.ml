module Graph = Dex_graph.Graph

exception Congestion_violation of string

type message = int array

type t = {
  graph : Graph.t;
  ledger : Rounds.t;
  word_size : int;
  mutable messages : int;
}

type 's step = round:int -> vertex:int -> 's -> (int * message) list -> 's * (int * message) list

let create ?(word_size = 1) graph ledger =
  if word_size < 1 then invalid_arg "Network.create: word_size must be >= 1";
  { graph; ledger; word_size; messages = 0 }

let graph t = t.graph
let messages_sent t = t.messages
let rounds t = t.ledger
let charge t ~label k = Rounds.charge t.ledger ~label k

let validate_outbox t v outbox =
  (* one message per incident edge: with simple graphs this is one per
     distinct neighbor; detect duplicates and non-neighbors. *)
  let seen = Hashtbl.create 8 in
  List.iter
    (fun (u, (msg : message)) ->
      if Array.length msg > t.word_size then
        raise
          (Congestion_violation
             (Printf.sprintf "vertex %d: message of %d words exceeds budget %d" v
                (Array.length msg) t.word_size));
      if not (Graph.mem_edge t.graph v u) || v = u then
        raise
          (Congestion_violation (Printf.sprintf "vertex %d: %d is not a neighbor" v u));
      if Hashtbl.mem seen u then
        raise
          (Congestion_violation
             (Printf.sprintf "vertex %d: two messages on edge to %d in one round" v u));
      Hashtbl.replace seen u ())
    outbox

let exec_round t ~round states inboxes step =
  let n = Graph.num_vertices t.graph in
  let next_inboxes = Array.make n [] in
  for v = 0 to n - 1 do
    let state', outbox = step ~round ~vertex:v states.(v) inboxes.(v) in
    states.(v) <- state';
    validate_outbox t v outbox;
    List.iter
      (fun (u, msg) ->
        t.messages <- t.messages + 1;
        next_inboxes.(u) <- (v, msg) :: next_inboxes.(u))
      outbox
  done;
  next_inboxes

let run t ~label ~init ~step ~finished ?(max_rounds = 1_000_000) () =
  let n = Graph.num_vertices t.graph in
  let states = Array.init n init in
  let inboxes = ref (Array.make n []) in
  let executed = ref 0 in
  (* a protocol is complete only when its predicate holds AND no
     message is still in flight — otherwise the wave it just sent
     would be lost *)
  let in_flight () = Array.exists (fun inbox -> inbox <> []) !inboxes in
  while (not (finished states && not (in_flight ()))) && !executed < max_rounds do
    incr executed;
    inboxes := exec_round t ~round:!executed states !inboxes step
  done;
  if not (finished states) then
    failwith (Printf.sprintf "Network.run(%s): exceeded %d rounds" label max_rounds);
  Rounds.charge t.ledger ~label !executed;
  (states, !executed)

let run_rounds t ~label ~init ~step n_rounds =
  let n = Graph.num_vertices t.graph in
  let states = Array.init n init in
  let inboxes = ref (Array.make n []) in
  for round = 1 to n_rounds do
    inboxes := exec_round t ~round states !inboxes step
  done;
  Rounds.charge t.ledger ~label n_rounds;
  states

(** Simulated CONGESTED-CLIQUE.

    The variant of CONGEST where the communication graph is complete:
    in every round each of the n vertices may send one O(log n)-bit
    word-bounded message to {e every other} vertex (n-1 messages out,
    n-1 in). The input graph lives on top as knowledge: vertex v
    initially knows its incident edges.

    The kernel mirrors {!Network}: per-vertex state machines, a round
    ledger and congestion checks (at most one message per ordered pair
    per round). It exists so the Dolev–Lenzen–Peled triangle
    enumeration baseline can be {e executed} rather than charged from
    a formula. *)

exception Congestion_violation of string

type t

type message = int array

(** [create ?word_size ~n ledger] makes an n-vertex clique machine. *)
val create : ?word_size:int -> n:int -> Rounds.t -> t

(** [messages_sent t]. *)
val messages_sent : t -> int

(** Same shape as {!Network.step}; [vertex] is phantom-typed as an id
    of this clique machine ({!Dex_graph.Vertex.local}). *)
type 's step =
  round:int ->
  vertex:Dex_graph.Vertex.local ->
  's ->
  (int * message) list ->
  's * (int * message) list

(** [run_rounds t ~label ~init ~step k] executes exactly [k] rounds.
    A vertex may address any other vertex; sending to itself or twice
    to the same destination in a round raises {!Congestion_violation}. *)
val run_rounds : t -> label:string -> init:(int -> 's) -> step:'s step -> int -> 's array

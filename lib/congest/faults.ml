type fault =
  | Drop of { round : int; src : int; dst : int }
  | Duplicate of { round : int; src : int; dst : int }
  | Link_down of { round : int; u : int; v : int }
  | Crash of { round : int; vertex : int }

type spec = {
  drop : float;
  duplicate : float;
  link_failures : ((int * int) * int) list;
  crashes : (int * int) list;
  seed : int;
}

let none = { drop = 0.0; duplicate = 0.0; link_failures = []; crashes = []; seed = 0 }

let lossy ?(duplicate = 0.0) ?(seed = 0) ~drop () =
  { none with drop; duplicate; seed }

type t = {
  spec : spec;
  dead_links : (int * int, int) Hashtbl.t; (* normalized edge -> death round *)
  crash_round : (int, int) Hashtbl.t; (* vertex -> crash round *)
  announced_links : (int * int, unit) Hashtbl.t;
  announced_crashes : (int, unit) Hashtbl.t;
  mutable events : fault list; (* reversed *)
  mutable drops : int;
  mutable duplicates : int;
  mutable observer : (fault -> unit) option;
}

let check_prob name p =
  if p < 0.0 || p > 1.0 || Float.is_nan p then
    Dex_util.Invariant.failf ~where:"Faults.create" "%s must be in [0, 1]" name

let create spec =
  check_prob "drop" spec.drop;
  check_prob "duplicate" spec.duplicate;
  let dead_links = Hashtbl.create 8 in
  List.iter
    (fun ((u, v), r) ->
      let e = (min u v, max u v) in
      match Hashtbl.find_opt dead_links e with
      | Some r' when r' <= r -> ()
      | _ -> Hashtbl.replace dead_links e r)
    spec.link_failures;
  let crash_round = Hashtbl.create 8 in
  List.iter
    (fun (v, r) ->
      match Hashtbl.find_opt crash_round v with
      | Some r' when r' <= r -> ()
      | _ -> Hashtbl.replace crash_round v r)
    spec.crashes;
  { spec;
    dead_links;
    crash_round;
    announced_links = Hashtbl.create 8;
    announced_crashes = Hashtbl.create 8;
    events = [];
    drops = 0;
    duplicates = 0;
    observer = None }

let trace t = List.rev t.events
let drops t = t.drops
let duplicates t = t.duplicates
let set_observer t obs = t.observer <- obs

let record t e =
  t.events <- e :: t.events;
  match t.observer with Some f -> f e | None -> ()

(* splitmix64 finalizer (as in Dex_util.Rng): the fault coin for a
   message is a pure hash of (seed, round, src, dst, salt), never a
   stateful draw, so decisions are independent of evaluation order. *)
let mix64 z =
  let z = Int64.add z 0x9e3779b97f4a7c15L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xbf58476d1ce4e5b9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94d049bb133111ebL in
  Int64.logxor z (Int64.shift_right_logical z 31)

let uniform t ~round ~src ~dst ~salt =
  let step h x = mix64 (Int64.add (Int64.mul h 0x100000001b3L) (Int64.of_int x)) in
  let h = mix64 (Int64.of_int t.spec.seed) in
  let h = step h round in
  let h = step h src in
  let h = step h dst in
  let h = step h salt in
  (* top 53 bits -> [0, 1) *)
  Int64.to_float (Int64.shift_right_logical h 11) /. 9007199254740992.0

let crashed_int t ~round ~vertex =
  match Hashtbl.find_opt t.crash_round vertex with
  | Some r when r <= round ->
    if not (Hashtbl.mem t.announced_crashes vertex) then begin
      Hashtbl.replace t.announced_crashes vertex ();
      record t (Crash { round = r; vertex })
    end;
    true
  | _ -> false

let link_dead t ~round ~src ~dst =
  let e = (min src dst, max src dst) in
  match Hashtbl.find_opt t.dead_links e with
  | Some r when r <= round ->
    if not (Hashtbl.mem t.announced_links e) then begin
      Hashtbl.replace t.announced_links e ();
      record t (Link_down { round = r; u = fst e; v = snd e })
    end;
    true
  | _ -> false

let drop t ~round ~src ~dst =
  t.drops <- t.drops + 1;
  record t (Drop { round; src; dst });
  `Drop

let crashed t ~round ~vertex =
  crashed_int t ~round ~vertex:(Dex_graph.Vertex.local_int vertex)

let is_crashed t ~round ~vertex =
  (* pure read: no event recording, no table mutation. The staged
     executors call this from the (possibly domain-parallel) step
     phase and leave the recording [crashed] call to the sequential
     delivery phase, which replays the legacy event order. *)
  match Hashtbl.find_opt t.crash_round (Dex_graph.Vertex.local_int vertex) with
  | Some r -> r <= round
  | None -> false

let verdict t ~round ~src ~dst =
  let src = Dex_graph.Vertex.local_int src and dst = Dex_graph.Vertex.local_int dst in
  if link_dead t ~round ~src ~dst then drop t ~round ~src ~dst
  else if crashed_int t ~round ~vertex:dst then drop t ~round ~src ~dst
  else if t.spec.drop > 0.0 && uniform t ~round ~src ~dst ~salt:0 < t.spec.drop then
    drop t ~round ~src ~dst
  else if t.spec.duplicate > 0.0 && uniform t ~round ~src ~dst ~salt:1 < t.spec.duplicate
  then begin
    t.duplicates <- t.duplicates + 1;
    record t (Duplicate { round; src; dst });
    `Duplicate
  end
  else `Deliver

module Graph = Dex_graph.Graph
module Invariant = Dex_util.Invariant

type config = { max_retries : int; give_up : bool }

let default_config = { max_retries = 64; give_up = false }

exception
  Delivery_failed of {
    label : string;
    vertex : int;
    neighbor : int;
    value : int;
    attempts : int;
  }

(* single-word codec: | has_data:1 | data:30 | has_ack:1 | ack:30 |.
   A word stands for O(log n) bits, so packing two O(log n)-bit values
   plus presence flags stays within the model's word budget. *)
let value_bits = 30
let value_limit = 1 lsl value_bits

let pack = function
  | None -> 0
  | Some v ->
    Invariant.require (v >= 0 && v < value_limit) ~where:"Reliable" "value out of range";
    (v lsl 1) lor 1

let unpack f = if f land 1 = 1 then Some (f lsr 1) else None

let encode ~data ~ack = (pack data lsl (value_bits + 1)) lor pack ack

let decode w = (unpack (w lsr (value_bits + 1)), unpack (w land ((value_limit lsl 1) - 1)))

let infinity_value = value_limit - 1

(* per-neighbor delivery state: [outstanding] is the value still to be
   acknowledged (-1 = none), [ack_due] the just-received value to ack
   next round (-1 = none) *)
type peer = {
  nbr : int;
  mutable outstanding : int;
  mutable attempts : int;
  mutable ack_due : int;
  mutable abandoned : bool;
}

type vstate = { mutable value : int; mutable parent : int; peers : peer array }

let peer_of st sender =
  let rec go i =
    if i >= Array.length st.peers then
      Invariant.fail ~where:"Reliable" "message from non-peer"
    else if st.peers.(i).nbr = sender then st.peers.(i)
    else go (i + 1)
  in
  go 0

(* Reliable monotone flooding: each vertex holds a value improving via
   min; adopting a better candidate (received value + delta) re-arms
   delivery of the new value to every neighbor. Quiescence = every
   live vertex has no outstanding value and no pending ack. *)
let flood net ~label ~config ~delta ~init_value ~init_parent ~announce ?max_rounds () =
  Invariant.require (config.max_retries >= 1) ~where:"Reliable" "max_retries must be >= 1";
  let g = Network.graph net in
  let failure = ref None in
  let cur_round = ref 0 in
  let init v =
    let value = init_value v in
    let peers =
      Array.map
        (fun u ->
          { nbr = u;
            outstanding = (if announce v then value else -1);
            attempts = 0;
            ack_due = -1;
            abandoned = false })
        (Graph.neighbors g v)
    in
    { value; parent = init_parent v; peers }
  in
  let step ~round ~vertex:v st inbox =
    let v = Dex_graph.Vertex.local_int v in
    cur_round := round;
    List.iter
      (fun (sender, (msg : Network.message)) ->
        let data, ack = decode msg.(0) in
        let peer = peer_of st sender in
        (match data with
        | Some x ->
          peer.ack_due <- x;
          let candidate = x + delta in
          if candidate < st.value then begin
            st.value <- candidate;
            st.parent <- sender;
            Array.iter
              (fun p ->
                p.outstanding <- st.value;
                p.attempts <- 0;
                p.abandoned <- false)
              st.peers
          end
        | None -> ());
        match ack with
        | Some y ->
          if peer.outstanding = y then begin
            peer.outstanding <- -1;
            peer.attempts <- 0
          end
        | None -> ())
      inbox;
    let outbox = ref [] in
    Array.iter
      (fun p ->
        let data =
          if p.outstanding >= 0 && not p.abandoned then
            if p.attempts >= config.max_retries then begin
              (* retry budget exhausted: stop retransmitting so the
                 protocol can quiesce; the failure (if fatal) is
                 raised after the run, once rounds are charged *)
              if (not config.give_up) && !failure = None then
                failure := Some (v, p.nbr, p.outstanding, p.attempts);
              p.abandoned <- true;
              None
            end
            else begin
              p.attempts <- p.attempts + 1;
              Some p.outstanding
            end
          else None
        in
        let ack = if p.ack_due >= 0 then Some p.ack_due else None in
        p.ack_due <- -1;
        if data <> None || ack <> None then
          outbox := (p.nbr, [| encode ~data ~ack |]) :: !outbox)
      st.peers;
    (st, !outbox)
  in
  let live v =
    match Network.faults net with
    | None -> true
    | Some f ->
      not (Faults.crashed f ~round:(!cur_round + 1) ~vertex:(Dex_graph.Vertex.local v))
  in
  let finished states =
    let quiet st =
      Array.for_all (fun p -> (p.outstanding < 0 || p.abandoned) && p.ack_due < 0) st.peers
    in
    let ok = ref true in
    Array.iteri (fun v st -> if live v && not (quiet st) then ok := false) states;
    !ok
  in
  let states, rounds = Network.run net ~label ~init ~step ~finished ?max_rounds () in
  (match !failure with
  | Some (vertex, neighbor, value, attempts) ->
    raise (Delivery_failed { label; vertex; neighbor; value; attempts })
  | None -> ());
  (states, rounds)

let bfs_tree ?(config = default_config) ?max_rounds net ~root =
  let root = Dex_graph.Vertex.local_int root in
  let g = Network.graph net in
  let n = Graph.num_vertices g in
  Invariant.require (root >= 0 && root < n) ~where:"Reliable.bfs_tree" "root out of range";
  let states, _rounds =
    flood net ~label:"bfs-reliable" ~config ~delta:1
      ~init_value:(fun v -> if v = root then 0 else infinity_value)
      ~init_parent:(fun v -> if v = root then root else -1)
      ~announce:(fun v -> v = root)
      ?max_rounds ()
  in
  let depth =
    Array.map (fun st -> if st.value >= infinity_value then max_int else st.value) states
  in
  let parent = Array.mapi (fun v st -> if depth.(v) = max_int then -1 else st.parent) states in
  let height = Array.fold_left (fun acc d -> if d = max_int then acc else max acc d) 0 depth in
  let members =
    let acc = ref [] in
    for v = n - 1 downto 0 do
      if depth.(v) <> max_int then acc := v :: !acc
    done;
    Array.of_list !acc
  in
  { Primitives.root; parent; depth; height; members }

let elect_leader ?(config = default_config) ?max_rounds net =
  let states, _rounds =
    flood net ~label:"leader-reliable" ~config ~delta:0
      ~init_value:(fun v -> v)
      ~init_parent:(fun v -> v)
      ~announce:(fun _ -> true)
      ?max_rounds ()
  in
  Array.map (fun st -> st.value) states

(** Synchronous message-passing simulation of the CONGEST model.

    A network wraps a communication graph. A protocol is a per-vertex
    state machine: in every round each vertex reads its inbox (the
    messages its neighbors sent in the previous round), updates its
    state and emits at most one message per incident edge. The kernel
    enforces the CONGEST discipline:

    - a message may only be sent to a neighbor;
    - at most one message per (vertex, incident edge) per round;
    - each message carries at most [word_size] machine words, a word
      standing for O(log n) bits.

    Violations raise {!Congestion_violation} — this is how tests do
    failure injection. Rounds and message words are charged to a
    {!Rounds.t} ledger so protocol compositions have one cost ledger.

    A network may additionally carry a {!Faults.t} schedule: message
    drops/duplications, permanent link failures and crash-stop vertex
    faults are then applied inside every executed round, with each
    fault event recorded in the schedule's trace. Congestion validation
    happens {e before} fault application — a protocol may not excuse an
    oversized message by hoping the adversary drops it.

    When the ledger has a {!Dex_obs.Trace.t} attached
    ({!Rounds.attach_trace}, before the network is created), every
    executed round additionally emits a structured round tick (messages
    delivered, words, max per-edge congestion, active vertices), edge
    delivery counts accumulate into the trace's per-edge load histogram,
    and fault events are bridged into the trace. Networks over induced
    subgraphs carry a [vertex_map] so those metrics are reported in
    original-graph coordinates. Without an attached trace the kernel
    skips all of this — tracing off costs one pointer test per round. *)

(** Same exception as {!Arena.Congestion_violation} (re-exported):
    handlers written against either name catch violations raised by
    any executor, list-based or cursor-based. *)
exception Congestion_violation of string

(** How rounds are executed. All three are observationally identical
    on the list API (states, round counts, message/word ledgers, fault
    traces, conformance digests) — the equivalence suite in
    [test_kernel_equiv.ml] asserts this.

    - [Legacy]: the seed kernel — interleaved step + delivery, one
      pass over all vertices per round.
    - [Staged]: two-phase rounds (step everything, then deliver in
      canonical order) with reusable validation scratch; the basis
      for the arena-backed cursor driver {!run_active}.
    - [Parallel k]: [Staged] with Phase A sharded across [k] OCaml
      domains ([k] total, including the caller's). Phase B stays
      sequential, which is where all shared mutation lives. *)
type executor = Legacy | Staged | Parallel of int

(** [set_default_executor e] sets the executor used by every
    subsequently created network that does not pass [?executor].
    Initial default: [Staged]. *)
val set_default_executor : executor -> unit

(** Final states of a protocol that hit its round limit, with the
    element type hidden (protocol state types differ per caller). *)
type packed_states = Packed : 'a array -> packed_states

(** Raised by {!run} when [max_rounds] is exhausted before the
    [finished] predicate holds. The executed rounds have already been
    charged to the ledger when this is raised. *)
exception
  Round_limit_exceeded of {
    label : string;
    max_rounds : int;
    executed : int;
    states : packed_states;
  }

type t

(** [create ?word_size ?faults ?vertex_map graph rounds] wraps [graph];
    [word_size] (default 1) is the per-message word budget. When
    [faults] is given, every executed round applies the schedule to
    deliveries and step execution. [vertex_map] translates local vertex
    ids to original-graph ids for trace and error reporting (it must
    have exactly one entry per vertex); {!Primitives.subnetwork}
    threads it automatically. The trace handle, if any, is read from
    the ledger at creation time — attach it first. [executor] defaults
    to the process-global setting ({!set_default_executor}).

    [shard_min] (default 512) is the smallest per-round stepped-vertex
    count the [Parallel] executor will spawn domains for; narrower
    rounds run Phase A sequentially, since a domain spawn costs far
    more than stepping a handful of vertices. The choice only affects
    wall-clock time, never results — the equivalence suite pins
    [shard_min] to 0 so the sharded path is exercised even on small
    test graphs. *)
val create :
  ?word_size:int ->
  ?faults:Faults.t ->
  ?vertex_map:Dex_graph.Vertex.Map.t ->
  ?executor:executor ->
  ?shard_min:int ->
  Dex_graph.Graph.t ->
  Rounds.t ->
  t

(** [executor t] is the executor this network runs on. *)
val executor : t -> executor

(** [graph t] is the underlying communication graph. *)
val graph : t -> Dex_graph.Graph.t

(** [messages_sent t] is the cumulative number of messages delivered:
    under a fault schedule, dropped messages are excluded and
    duplicated ones count twice. *)
val messages_sent : t -> int

(** [words_sent t] is the cumulative number of machine words delivered,
    fault-aware in the same way as {!messages_sent}: dropped messages
    contribute nothing, duplicated ones contribute twice. *)
val words_sent : t -> int

(** [faults t] is the fault schedule, if any. *)
val faults : t -> Faults.t option

(** [vertex_map t] is the local-to-original vertex translation, if this
    network simulates an induced subgraph of a larger instance. *)
val vertex_map : t -> Dex_graph.Vertex.Map.t option

(** [top_edges t k] is the [k] most-loaded edges (original-graph
    coordinates, cumulative deliveries, descending) from the attached
    trace's histogram; [[]] when no trace is attached. Note the
    histogram belongs to the trace, so it aggregates across every
    network sharing it — which is exactly what hot-edge reporting over
    a recursive decomposition wants. *)
val top_edges : t -> int -> ((int * int) * int) list

(** A message is an int array of at most [word_size] words. *)
type message = int array

(** Per-round behaviour of one vertex. Receives the current round
    number (starting at 1), the vertex id (phantom-typed: it lives in
    {e this} network's coordinate space — see {!Dex_graph.Vertex}), its
    state and its inbox [(sender, message) list]; returns the new state
    and the outbox [(neighbor, message) list]. *)
type 's step =
  round:int ->
  vertex:Dex_graph.Vertex.local ->
  's ->
  (int * message) list ->
  's * (int * message) list

(** [run t ~label ~init ~step ~finished ?max_rounds ?on_round ()]
    executes the protocol synchronously until [finished state_array]
    holds at a round boundary with no message still in flight, or
    [max_rounds] (default 1_000_000) is exhausted — raising
    {!Round_limit_exceeded} in the latter case, after charging the
    partial rounds to the ledger. Returns the final states and the
    number of rounds executed; the rounds are also charged to the
    ledger under [label]. [on_round] is called after every executed
    round with the round number and the (mutable) state array — the
    equivalence suite uses it to digest per-round states. *)
val run :
  t ->
  label:string ->
  init:(int -> 's) ->
  step:'s step ->
  finished:('s array -> bool) ->
  ?max_rounds:int ->
  ?on_round:(int -> 's array -> unit) ->
  unit ->
  's array * int

(** [run_rounds t ~label ~init ~step n] runs exactly [n] rounds. *)
val run_rounds :
  t ->
  label:string ->
  init:(int -> 's) ->
  step:'s step ->
  ?on_round:(int -> 's array -> unit) ->
  int ->
  's array

(** {1 Cursor API}

    The zero-allocation face of the kernel: inboxes and outboxes are
    {!Arena} cursors over preallocated per-edge slots instead of
    lists, and only {e active} vertices — those with a non-empty inbox
    or an explicit [Arena.Outbox.wake] — are stepped each round. *)

(** Per-round behaviour of one vertex, cursor form. Read the inbox
    with [Arena.Inbox.iter1]/[iter], send with [Arena.Outbox.send1]/
    [send]; the cursors are only valid for the duration of the call. *)
type 's active_step =
  round:int ->
  vertex:Dex_graph.Vertex.local ->
  's ->
  Arena.inbox ->
  Arena.outbox ->
  's

(** [run_active t ~label ~init ~step ?max_rounds ?on_round ()] drives
    an {!active_step} protocol to quiescence: round 1 steps every
    vertex; afterwards only vertices that received a message or woke
    themselves are stepped, and the protocol terminates when the
    active set empties — so termination costs O(active), not O(n),
    and a protocol that needs stepping without traffic must [wake].
    Rounds are charged as in {!run}; {!Round_limit_exceeded} is raised
    when [max_rounds] (default 1_000_000) is exhausted before
    quiescence. The arena is built lazily on first use and reused
    across runs on the same network; under [Parallel k] the active
    set is sharded across [k] domains with delivery merged in
    canonical edge order, so results and traces are bit-identical to
    the sequential executors. *)
val run_active :
  t ->
  label:string ->
  init:(int -> 's) ->
  step:'s active_step ->
  ?max_rounds:int ->
  ?on_round:(int -> 's array -> unit) ->
  unit ->
  's array * int

(** [charge t ~label k] charges [k] rounds for an accounted (not
    message-level executed) protocol phase. *)
val charge : t -> label:string -> int -> unit

(** [rounds t] is the ledger. *)
val rounds : t -> Rounds.t

module Graph = Dex_graph.Graph
module Vertex = Dex_graph.Vertex
module Invariant = Dex_util.Invariant

type tree = {
  root : int;
  parent : int array;
  depth : int array;
  height : int;
  members : int array;
}

type bfs_state = { dist : int; par : int; pending : bool }

let bfs_tree net ~root =
  let root = Vertex.local_int root in
  let g = Network.graph net in
  let n = Graph.num_vertices g in
  Invariant.require (root >= 0 && root < n) ~where:"Primitives.bfs_tree" "root out of range";
  let init v =
    if v = root then { dist = 0; par = root; pending = true }
    else { dist = max_int; par = -1; pending = false }
  in
  let step ~round:_ ~vertex:v st ib ob =
    let v = Vertex.local_int v in
    (* adopt the smallest advertised distance on first contact *)
    let st =
      if st.dist = max_int then begin
        let best = ref st in
        Arena.Inbox.iter1 ib (fun sender w ->
            let d = w + 1 in
            if d < !best.dist then best := { dist = d; par = sender; pending = true });
        !best
      end
      else st
    in
    if st.pending then begin
      Graph.iter_neighbors g v (fun u ->
          Arena.Outbox.send1 ob ~dst:(Vertex.local u) st.dist);
      { st with pending = false }
    end
    else st
  in
  (* active-set quiescence: the wave visits each vertex once, and a
     vertex that receives without improving sends nothing — exactly
     the in-flight-empty termination of the legacy driver *)
  let states, _rounds = Network.run_active net ~label:"bfs" ~init ~step () in
  let parent = Array.map (fun st -> st.par) states in
  let depth = Array.map (fun st -> st.dist) states in
  let height = Array.fold_left (fun acc d -> if d = max_int then acc else max acc d) 0 depth in
  let members =
    let acc = ref [] in
    for v = n - 1 downto 0 do
      if depth.(v) <> max_int then acc := v :: !acc
    done;
    Array.of_list !acc
  in
  { root; parent; depth; height; members }

type leader_state = { best : int; fresh : bool }

let elect_leader net =
  let g = Network.graph net in
  let init v = { best = v; fresh = true } in
  let step ~round:_ ~vertex:v st ib ob =
    let v = Vertex.local_int v in
    let best = ref st.best in
    Arena.Inbox.iter1 ib (fun _ w -> if w < !best then best := w);
    let best = !best in
    let improved = best < st.best || st.fresh in
    if improved then
      Graph.iter_neighbors g v (fun u ->
          Arena.Outbox.send1 ob ~dst:(Vertex.local u) best);
    { best; fresh = false }
  in
  (* a vertex re-announces only when its view improves, so active-set
     quiescence means the minimum has flooded each component *)
  let states, _ = Network.run_active net ~label:"leader" ~init ~step () in
  Array.map (fun st -> st.best) states

let broadcast net tree ~label = Network.charge net ~label tree.height

let convergecast_sum net tree ~label values =
  Network.charge net ~label tree.height;
  Array.fold_left (fun acc v -> acc + values.(v)) 0 tree.members

let convergecast_min net tree ~label values =
  Network.charge net ~label tree.height;
  Array.fold_left (fun acc v -> min acc values.(v)) max_int tree.members

let pipelined_broadcast net tree ~label ~words =
  Invariant.require (words >= 0) ~where:"Primitives.pipelined_broadcast" "negative words";
  Network.charge net ~label (tree.height + words)

let subnetwork net members =
  let g = Network.graph net in
  let sub, mapping = Graph.induced_subgraph g members in
  let mapping = Vertex.Map.of_array mapping in
  (* compose vertex maps so nested subnetworks still report trace
     metrics (hot edges, fault events) in original-graph coordinates *)
  let vertex_map =
    match Network.vertex_map net with
    | None -> mapping
    | Some outer -> Vertex.Map.compose ~outer mapping
  in
  (Network.create ~vertex_map sub (Network.rounds net), mapping)

(** Round-cost ledger with hierarchical spans.

    Every simulated CONGEST computation charges its rounds here, under
    a phase label, so that benchmark tables can report both the total
    round count and its breakdown (e.g. how many rounds Phase 1 of the
    expander decomposition spent in low-diameter decomposition versus
    sparse-cut computation). Executed message-passing protocols charge
    their actual round loop; accounted phases charge the measured cost
    of the primitive they stand for (see DESIGN.md §2).

    Two views of the same charges coexist:

    - the {e flat} view ({!by_phase}): per-label totals, unchanged from
      the original ledger — every existing caller keeps working;
    - the {e tree} view ({!tree}): components may wrap work in
      {!with_span}, and every charge is then attributed to a leaf named
      by its label under the innermost open span, so the nested
      Phase-1/Phase-2 structure of a decomposition becomes visible.
      Leaf round totals always sum to {!total} by construction.

    Spans also self-profile the simulator: each span accumulates the
    wall-clock nanoseconds spent inside its body, and when a
    {!Dex_obs.Trace.t} is attached ({!attach_trace}) each span
    open/close is mirrored as a structured trace event. *)

type t

(** [create ()] is an empty ledger with no trace attached. *)
val create : unit -> t

(** [attach_trace t trace] mirrors span open/close events to [trace];
    networks created over this ledger also emit per-round ticks there.
    Attach before creating networks — {!Network.create} caches the
    handle. [None] detaches. *)
val attach_trace : t -> Dex_obs.Trace.t option -> unit

(** [trace t] is the attached trace, if any. *)
val trace : t -> Dex_obs.Trace.t option

(** [charge t ~label k] adds [k] rounds under [label], both to the flat
    per-label table and to the leaf [label] under the innermost open
    span. Raises [Dex_util.Invariant.Violation] on negative [k]. *)
val charge : t -> label:string -> int -> unit

(** [with_span t name f] runs [f ()] inside a span [name] nested under
    the innermost open span. Re-entering the same name under the same
    parent accumulates into one node (the tree stays compact and
    deterministic). The span records the rounds charged and the
    wall-clock spent during [f]; the span is closed even if [f]
    raises. *)
val with_span : t -> string -> (unit -> 'a) -> 'a

(** [total t] is the number of rounds charged so far. *)
val total : t -> int

(** [by_phase t] aggregates charges per label, descending by cost;
    equal costs are ordered by label, so the listing is deterministic. *)
val by_phase : t -> (string * int) list

(** One node of the span tree: [rounds] = [self] + sum of children's
    [rounds]; [self] is non-zero only on charge leaves (or on nodes
    whose name was used both as a span and as a charge label);
    [wall_ns] is the simulator wall-clock accumulated by {!with_span}.
    Children appear in first-creation order. *)
type tree = { span : string; rounds : int; self : int; wall_ns : int; children : tree list }

(** [tree t] is the hierarchical view of every charge, rooted at a
    synthetic ["total"] node with [rounds = total t]. *)
val tree : t -> tree

(** [merge ~into src] adds all of [src]'s flat charges into [into]
    (under [into]'s currently open span; [src]'s span structure is not
    copied). *)
val merge : into:t -> t -> unit

(** [reset t] zeroes the ledger, including the span tree. Open spans
    are abandoned; the attached trace, if any, is kept. *)
val reset : t -> unit

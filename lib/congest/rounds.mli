(** Round-cost ledger.

    Every simulated CONGEST computation charges its rounds here, under
    a phase label, so that benchmark tables can report both the total
    round count and its breakdown (e.g. how many rounds Phase 1 of the
    expander decomposition spent in low-diameter decomposition versus
    sparse-cut computation). Executed message-passing protocols charge
    their actual round loop; accounted phases charge the measured cost
    of the primitive they stand for (see DESIGN.md §2). *)

type t

(** [create ()] is an empty ledger. *)
val create : unit -> t

(** [charge t ~label k] adds [k] rounds under [label].
    Raises [Invalid_argument] on negative [k]. *)
val charge : t -> label:string -> int -> unit

(** [total t] is the number of rounds charged so far. *)
val total : t -> int

(** [by_phase t] aggregates charges per label, descending by cost;
    equal costs are ordered by label, so the listing is deterministic. *)
val by_phase : t -> (string * int) list

(** [merge ~into src] adds all of [src]'s charges into [into]. *)
val merge : into:t -> t -> unit

(** [reset t] zeroes the ledger. *)
val reset : t -> unit

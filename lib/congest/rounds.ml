module Trace = Dex_obs.Trace

type node = {
  name : string;
  mutable self : int; (* rounds charged directly at this node *)
  mutable wall_ns : int; (* simulator wall-clock spent while this span was innermost-opened *)
  mutable sub : node list; (* reversed creation order *)
}

type t = {
  mutable total : int;
  phases : (string, int) Hashtbl.t;
  root : node;
  mutable stack : node list; (* innermost open span first *)
  mutable trace : Trace.t option;
}

type tree = { span : string; rounds : int; self : int; wall_ns : int; children : tree list }

let fresh_node name = { name; self = 0; wall_ns = 0; sub = [] }

let create () =
  { total = 0;
    phases = Hashtbl.create 16;
    root = fresh_node "total";
    stack = [];
    trace = None }

let attach_trace t trace = t.trace <- trace
let trace t = t.trace

let current t = match t.stack with n :: _ -> n | [] -> t.root

let child_named parent name =
  match List.find_opt (fun n -> n.name = name) parent.sub with
  | Some n -> n
  | None ->
    let n = fresh_node name in
    parent.sub <- n :: parent.sub;
    n

let charge t ~label k =
  Dex_util.Invariant.require (k >= 0) ~where:"Rounds.charge" "negative round count";
  t.total <- t.total + k;
  let prev = try Hashtbl.find t.phases label with Not_found -> 0 in
  Hashtbl.replace t.phases label (prev + k);
  let leaf = child_named (current t) label in
  leaf.self <- leaf.self + k

let with_span t name f =
  let node = child_named (current t) name in
  t.stack <- node :: t.stack;
  let before = t.total in
  let id =
    match t.trace with
    | Some tr -> Trace.span_open tr ~name ~rounds_before:before
    | None -> -1
  in
  let t0 = Dex_obs.Clock.now_ns () in
  Fun.protect
    ~finally:(fun () ->
      let wall = Dex_obs.Clock.now_ns () - t0 in
      node.wall_ns <- node.wall_ns + wall;
      (match t.stack with
      | top :: rest when top == node -> t.stack <- rest
      | stack ->
        (* an exception may have skipped inner pops: unwind past [node] *)
        let rec unwind = function
          | top :: rest -> if top == node then rest else unwind rest
          | [] -> []
        in
        t.stack <- unwind stack);
      match t.trace with
      | Some tr -> Trace.span_close tr ~id ~name ~rounds:(t.total - before) ~wall_ns:wall
      | None -> ())
    f

let total t = t.total

let by_phase t =
  (* descending by cost, ties broken on label: iteration is already
     key-sorted, and bench tables must be stable across runs *)
  Dex_util.Table.fold_sorted (fun label k acc -> (label, k) :: acc) t.phases []
  |> List.sort (fun (la, a) (lb, b) ->
         if a <> b then Int.compare b a else String.compare la lb)

let tree t =
  let rec freeze node =
    let children = List.rev_map freeze node.sub in
    let rounds =
      List.fold_left (fun acc (c : tree) -> acc + c.rounds) node.self children
    in
    { span = node.name; rounds; self = node.self; wall_ns = node.wall_ns; children }
  in
  freeze t.root

let merge ~into src =
  Dex_util.Table.iter_sorted (fun label k -> charge into ~label k) src.phases

let reset t =
  t.total <- 0;
  Hashtbl.reset t.phases;
  t.root.self <- 0;
  t.root.wall_ns <- 0;
  t.root.sub <- [];
  t.stack <- []

type t = { mutable total : int; phases : (string, int) Hashtbl.t }

let create () = { total = 0; phases = Hashtbl.create 16 }

let charge t ~label k =
  if k < 0 then invalid_arg "Rounds.charge: negative round count";
  t.total <- t.total + k;
  let prev = try Hashtbl.find t.phases label with Not_found -> 0 in
  Hashtbl.replace t.phases label (prev + k)

let total t = t.total

let by_phase t =
  (* descending by cost, ties broken on label: Hashtbl.fold order is
     unspecified, and bench tables must be stable across runs *)
  Hashtbl.fold (fun label k acc -> (label, k) :: acc) t.phases []
  |> List.sort (fun (la, a) (lb, b) -> if a <> b then compare b a else compare la lb)

let merge ~into src =
  Hashtbl.iter (fun label k -> charge into ~label k) src.phases

let reset t =
  t.total <- 0;
  Hashtbl.reset t.phases

(** Standard CONGEST building blocks over {!Network.t}.

    [bfs_tree] and [elect_leader] are executed as real message-passing
    protocols (they exercise the kernel and their round counts are
    measured from the execution). Tree aggregation helpers charge the
    measured tree height — the textbook cost of a pipelined
    broadcast / convergecast — and evaluate the aggregate centrally. *)

(** A rooted BFS spanning tree of (one component of) the network. *)
type tree = {
  root : int;
  parent : int array; (** [parent.(root) = root]; [-1] for vertices outside the component *)
  depth : int array; (** hop depth; [max_int] outside the component *)
  height : int; (** max finite depth *)
  members : int array; (** vertices of the component, sorted *)
}

(** [bfs_tree net ~root] floods from [root] (executed protocol;
    rounds measured and charged under ["bfs"]). [root] is a vertex of
    {e this} network's coordinate space ({!Dex_graph.Vertex.local}). *)
val bfs_tree : Network.t -> root:Dex_graph.Vertex.local -> tree

(** [elect_leader net] floods minimum vertex id (executed protocol,
    charged under ["leader"]); returns per-vertex leader array —
    one leader per connected component. *)
val elect_leader : Network.t -> int array

(** [broadcast net tree ~label] charges the cost of sending one
    O(log n)-bit value from the root to all members: [tree.height]
    rounds. *)
val broadcast : Network.t -> tree -> label:string -> unit

(** [convergecast_sum net tree ~label values] charges [tree.height]
    rounds and returns the sum of [values] over the tree members —
    the standard aggregation used by the paper's implementation
    lemmas (Lemma 9's volume queries, Lemma 10's token counts). *)
val convergecast_sum : Network.t -> tree -> label:string -> int array -> int

(** [convergecast_min net tree ~label values] as above with min. *)
val convergecast_min : Network.t -> tree -> label:string -> int array -> int

(** [pipelined_broadcast net tree ~label ~words] charges
    [tree.height + words] rounds — k values broadcast down a tree
    pipeline in height + k rounds. *)
val pipelined_broadcast : Network.t -> tree -> label:string -> words:int -> unit

(** [subnetwork net members] is a network on the induced subgraph
    [G\[members\]] sharing [net]'s ledger; returns the new network and
    the typed map from sub-vertex ids to [net] ids. The subnetwork's
    own [vertex_map] (used for trace and violation reporting) is the
    composition with [net]'s map, so metrics stay in original-instance
    coordinates however deep the recursion. Communication inside a
    cluster of a decomposition runs on such subnetworks. *)
val subnetwork : Network.t -> int array -> Network.t * Dex_graph.Vertex.Map.t

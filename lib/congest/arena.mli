(** CSR slot-addressed message arena — the zero-allocation data plane
    behind {!Network}'s arena and parallel executors.

    Every directed edge [(v, i)] of the graph owns one preallocated
    message slot at the dense CSR index [off(v) + i] (see
    {!Dex_graph.Graph.csr_offsets}). Slots live on two flat planes —
    a src-side staging plane written during the step phase and a
    dst-side inbox plane written during delivery — and occupancy is
    tracked by monotonic tick stamps, so steady-state rounds neither
    allocate nor clear.

    The module also owns the active-set worklist: vertices with a
    stamped inbox slot or an explicit self-wake, kept deduplicated and
    sorted ascending so every executor activates vertices in the same
    canonical order.

    Protocols normally go through {!Network}; this interface is what
    the executors and the throughput benchmarks program against. *)

(** Same meaning as [Network.Congestion_violation] — [Network]
    re-exports this very exception, so handlers written against either
    name catch both. *)
exception Congestion_violation of string

type t

(** [create ?word_size ?to_orig g] allocates all planes for [g]
    (O(m·word_size) ints, once). [to_orig] translates local vertex ids
    into the coordinates violation messages should use (subnetworks
    report original ids). *)
val create : ?word_size:int -> ?to_orig:(int -> int) -> Dex_graph.Graph.t -> t

(** [word_size a] is the per-message word budget the arena validates
    against. *)
val word_size : t -> int

(** [slot_count a] is the number of directed-edge slots (twice the
    plain edge count). *)
val slot_count : t -> int

(** {1 Cursors}

    A cursor is a reusable window onto one vertex's slots. Executors
    allocate one inbox/outbox pair per domain per run and re-aim them
    with {!set_inbox}/{!set_outbox} for every step — the step callback
    itself allocates nothing. *)

type inbox
type outbox

val make_inbox : t -> inbox
val make_outbox : t -> outbox

(** [set_inbox ib v] aims the cursor at vertex [v]'s dst-side slots. *)
val set_inbox : inbox -> int -> unit

(** [set_outbox ob v] aims the cursor at vertex [v]'s src-side slots;
    subsequent sends are validated and staged as coming from [v]. *)
val set_outbox : outbox -> int -> unit

module Inbox : sig
  (** [is_empty ib] — no message was delivered to this vertex for the
      current round. *)
  val is_empty : inbox -> bool

  (** [count ib] — number of deliveries this round (a duplicated
      message counts twice). *)
  val count : inbox -> int

  (** [iter1 ib f] calls [f src word] per delivery, in ascending
      sender order (duplicates are adjacent). Reads only the first
      word of each message: the fast path for one-word protocols. *)
  val iter1 : inbox -> (int -> int -> unit) -> unit

  (** [iter ib f] calls [f src msg] per delivery in ascending sender
      order, materializing each message array. *)
  val iter : inbox -> (int -> int array -> unit) -> unit

  (** [to_list ib] rebuilds the legacy inbox list: senders descending,
      duplicates adjacent — exactly the list the list-based executor
      hands to its steps. Compatibility shim; allocates. *)
  val to_list : inbox -> (int * int array) list
end

module Outbox : sig
  (** [send1 ob ~dst w] stages the one-word message [w] to [dst].
      Raises {!Congestion_violation} exactly as the legacy validator
      would: over-budget first, then non-neighbor, then duplicate
      edge use. *)
  val send1 : outbox -> dst:Dex_graph.Vertex.local -> int -> unit

  (** [send ob ~dst msg] stages an arbitrary message of at most
      [word_size] words ([msg] is copied into the arena). *)
  val send : outbox -> dst:Dex_graph.Vertex.local -> int array -> unit

  (** [wake ob] self-wakes the cursor's vertex: it stays on the next
      round's worklist even if it receives nothing. *)
  val wake : outbox -> unit
end

(** {1 Round lifecycle}

    Driven by [Network]'s executors. A round is: read the sorted
    worklist ([active_count]/[active_get]), step each active vertex
    through its cursors, then for each vertex in ascending order apply
    {!deliver_staged} (and {!push_active} for {!woke} vertices), and
    {!finish_round}. *)

(** [begin_run a] puts every vertex on the worklist — round 1 steps
    all vertices, matching the legacy executor. *)
val begin_run : t -> unit

(** Number of vertices on the current round's worklist. *)
val active_count : t -> int

(** [active_get a i] — the [i]-th active vertex, ascending in [i]. *)
val active_get : t -> int -> int

(** [woke a v] — vertex [v] called [Outbox.wake] this round. *)
val woke : t -> int -> bool

(** [push_active a v] schedules [v] for the next round (deduplicated;
    delivery does this automatically for receivers). *)
val push_active : t -> int -> unit

(** [deliver_staged a src verdict] walks [src]'s staged sends in slot
    (= ascending destination) order; [verdict dst words] decides each
    message's fate, exactly like [Faults.verdict], and delivered
    messages land in the destination's inbox slots for the next round.
    The caller's verdict callback is where message/word counters and
    fault recording happen, so the legacy event order is preserved by
    calling this for each source in ascending order. *)
val deliver_staged :
  t -> int -> (int -> int -> [ `Deliver | `Drop | `Duplicate ]) -> unit

(** [finish_round a] advances the tick (retiring all current-round
    slots at once) and swaps in the next worklist, sorted ascending. *)
val finish_round : t -> unit

(** Reliable-delivery primitives over a (possibly faulty) {!Network.t}.

    The executed protocols in {!Primitives} assume perfect delivery:
    one lost message silently truncates a BFS tree or elects the wrong
    leader. This module reimplements the flooding primitives on top of
    a per-edge ack/retransmit discipline with bounded retries:

    - a vertex that must deliver a value to a neighbor retransmits it
      every round until the neighbor acknowledges that exact value or
      the retry budget is exhausted;
    - acknowledgements are self-clocking: a lost ack triggers a
      retransmission, which triggers a fresh ack;
    - data and ack ride in a single word per edge per round (two
      O(log n)-bit fields packed into one word), so the CONGEST
      discipline is respected without widening the word budget.

    The extra rounds a lossy run needs are charged honestly to the
    network's ledger under the protocol's label ("bfs-reliable",
    "leader-reliable") — the overhead versus {!Primitives} is exactly
    the measured price of reliability.

    On retry exhaustion the behaviour is configurable: with
    [give_up = false] (the default) the run completes and then raises
    {!Delivery_failed} identifying the dead edge; with
    [give_up = true] the edge is abandoned and the protocol proceeds
    without it — the right semantics when the peer has crash-stopped
    or the link has failed permanently. *)

type config = {
  max_retries : int; (** transmissions attempted per (neighbor, value) *)
  give_up : bool; (** abandon an unacknowledged edge instead of failing *)
}

(** [{ max_retries = 64; give_up = false }] — with drop probability p,
    64 retries fail with probability p^64 per edge. *)
val default_config : config

(** Raised after the run completes (rounds charged) when a value could
    not be delivered within [max_retries] transmissions and
    [give_up = false]. *)
exception
  Delivery_failed of {
    label : string;
    vertex : int;
    neighbor : int;
    value : int;
    attempts : int;
  }

(** Payload values must be in [0, 2^30): two packed per word. *)
val value_limit : int

(** [bfs_tree ?config ?max_rounds net ~root] is {!Primitives.bfs_tree}
    with reliable delivery: distances adopt monotonically, every
    improvement is re-announced until acknowledged, so the final
    depths equal true BFS distances under arbitrary message loss
    (rounds charged under ["bfs-reliable"]). Vertices unreachable
    through surviving edges keep depth [max_int]. *)
val bfs_tree :
  ?config:config -> ?max_rounds:int -> Network.t -> root:Dex_graph.Vertex.local ->
  Primitives.tree

(** [elect_leader ?config ?max_rounds net] floods the minimum vertex id
    with reliable delivery (charged under ["leader-reliable"]);
    returns the per-vertex leader array, one leader per connected
    component of the surviving network. *)
val elect_leader : ?config:config -> ?max_rounds:int -> Network.t -> int array

(** Deterministic fault injection for the CONGEST kernel.

    A fault schedule is a pure function of a seed and the message
    coordinates [(round, src, dst)]: the same spec replayed against the
    same protocol produces bit-identical fault decisions, so lossy runs
    stay reproducible from a single integer seed. The schedule models:

    - per-message loss: each delivery is dropped with probability
      [drop];
    - per-message duplication: each surviving delivery is delivered
      twice with probability [duplicate] (retransmission artifacts);
    - permanent link failures: an edge dies at a given round and stays
      dead — every later message on it is lost;
    - crash-stop vertex faults: from its crash round on, a vertex
      executes no steps, sends nothing and loses its inbox.

    Every decision is recorded in a chronological trace alongside the
    round/message ledger so tests and benches can assert exactly what
    the adversary did. *)

(** One recorded fault event. [Link_down] and [Crash] are emitted once,
    when the failure first takes effect; each lost or duplicated
    message additionally emits its own event. *)
type fault =
  | Drop of { round : int; src : int; dst : int }
  | Duplicate of { round : int; src : int; dst : int }
  | Link_down of { round : int; u : int; v : int }
  | Crash of { round : int; vertex : int }

(** The fault schedule description. Probabilities are per message. *)
type spec = {
  drop : float; (** P[a delivery is lost] *)
  duplicate : float; (** P[a surviving delivery arrives twice] *)
  link_failures : ((int * int) * int) list;
      (** [((u, v), r)]: the edge dies permanently at round [r] *)
  crashes : (int * int) list; (** [(v, r)]: vertex [v] crash-stops at round [r] *)
  seed : int; (** drives every probabilistic decision *)
}

(** The fault-free schedule (all probabilities 0, no failures). *)
val none : spec

(** [lossy ?duplicate ?seed ~drop ()] is a pure message-loss schedule.
    Defaults: [duplicate = 0.], [seed = 0]. *)
val lossy : ?duplicate:float -> ?seed:int -> drop:float -> unit -> spec

type t

(** [create spec] instantiates a schedule with an empty trace.
    Raises [Dex_util.Invariant.Violation] if a probability is outside [0, 1]. *)
val create : spec -> t

(** [trace t] is every fault event recorded so far, in the order the
    kernel encountered them. *)
val trace : t -> fault list

(** [drops t] counts lost deliveries (including losses caused by dead
    links and crashed destinations). *)
val drops : t -> int

(** [duplicates t] counts duplicated deliveries. *)
val duplicates : t -> int

(** [set_observer t obs] installs a callback invoked on every recorded
    fault event, in addition to the trace. The structured-tracing
    bridge uses this: {!Network.create} registers an observer that
    mirrors each event into the attached {!Dex_obs.Trace.t} (replacing
    any previous observer — a schedule shared between networks reports
    to the network created last). [None] uninstalls. *)
val set_observer : t -> (fault -> unit) option -> unit

(** [crashed t ~round ~vertex] is [true] when [vertex] has crash-stopped
    by [round]. Records the [Crash] event on first observation. The
    vertex is phantom-typed: it must be an id of the network this
    schedule is attached to ({!Dex_graph.Vertex.local}). *)
val crashed : t -> round:int -> vertex:Dex_graph.Vertex.local -> bool

(** [is_crashed t ~round ~vertex] is {!crashed} without the recording
    side effect: a pure read of the crash schedule. Safe to call
    concurrently from parallel step execution; the kernel's sequential
    delivery phase performs the recording {!crashed} calls so the
    event trace keeps the legacy order. *)
val is_crashed : t -> round:int -> vertex:Dex_graph.Vertex.local -> bool

(** [verdict t ~round ~src ~dst] decides the fate of the message sent
    from [src] to [dst] in [round], recording the corresponding event.
    The CONGEST discipline guarantees at most one message per
    [(round, src, dst)], so the decision is well-defined and depends
    only on the seed and those coordinates. *)
val verdict :
  t ->
  round:int ->
  src:Dex_graph.Vertex.local ->
  dst:Dex_graph.Vertex.local ->
  [ `Deliver | `Drop | `Duplicate ]

type local = int
type orig = int

let local v = v
let orig v = v
let local_int v = v
let orig_int v = v

module Map = struct
  type t = int array

  let of_array a = a
  let to_array a = a
  let length = Array.length
  let apply m v = m.(v)
  let get m v = m.(v)

  let compose ~outer inner = Array.map (fun v -> outer.(v)) inner

  let translate m vs = Array.map (fun v -> m.(v)) vs

  let translate_edge m (u, v) =
    let a = m.(u) and b = m.(v) in
    (min a b, max a b)
end

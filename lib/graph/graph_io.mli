(** Plain-text graph serialization, so the CLI and examples can run on
    real edge lists as well as generated families.

    The format is a whitespace edge list:

    {v
    # comment lines start with '#'
    n <vertex-count>        (optional; inferred as 1 + max id if absent)
    <u> <v>                 (one undirected edge per line; u = v is a self-loop)
    v}

    Vertex ids are non-negative integers. *)

(** [parse string] reads a graph from the textual format.
    Raises [Failure] with a line-numbered message on malformed input. *)
val parse : string -> Graph.t

(** [to_string g] serializes; [parse (to_string g)] reconstructs an
    isomorphic (identical ids) graph. *)
val to_string : Graph.t -> string

(** [load path] / [save path g] are the file versions. *)
val load : string -> Graph.t

val save : string -> Graph.t -> unit

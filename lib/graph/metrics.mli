(** Cut, conductance and distance metrics over {!Graph.t}.

    Terminology follows Section 1 of the paper: for a vertex set [S],
    [∂(S)] is the set of edges with exactly one endpoint in [S],
    [Vol(S) = Σ_{v∈S} deg(v)] (self-loops count 1 each),
    [Φ(S) = |∂(S)| / min(Vol(S), Vol(S̄))], and
    [bal(S) = min(Vol(S), Vol(S̄)) / Vol(V)]. *)

(** [mask_of g s] is the boolean membership mask of [s]. *)
val mask_of : Graph.t -> int array -> bool array

(** [vertices_of_mask mask] lists the set bits, ascending. *)
val vertices_of_mask : bool array -> int array

(** [complement g s] is [V \ S] as a sorted array. *)
val complement : Graph.t -> int array -> int array

(** [cut_size g s] = [|∂(S)|], the number of edges crossing [S].
    Self-loops never cross. *)
val cut_size : Graph.t -> int array -> int

(** [conductance g s] = Φ(S). Returns [infinity] when either side has
    zero volume (the cut is degenerate). *)
val conductance : Graph.t -> int array -> float

(** [balance g s] = bal(S) ∈ [0, 1/2]. *)
val balance : Graph.t -> int array -> float

(** [is_sparse_cut g ~phi s] tests Φ(S) ≤ phi with both sides
    non-degenerate. *)
val is_sparse_cut : Graph.t -> phi:float -> int array -> bool

(** {1 Connectivity and distances} *)

(** [connected_components g] lists components as sorted vertex arrays,
    largest first. *)
val connected_components : Graph.t -> int array list

(** [is_connected g]. The empty graph is connected. *)
val is_connected : Graph.t -> bool

(** [bfs_distances g src] is the array of hop distances from [src];
    unreachable vertices get [max_int]. *)
val bfs_distances : Graph.t -> int -> int array

(** [bfs_multi_distances g srcs] is distance to the nearest source. *)
val bfs_multi_distances : Graph.t -> int array -> int array

(** [eccentricity g v] is the maximum finite distance from [v];
    raises [Failure] if some vertex is unreachable. *)
val eccentricity : Graph.t -> int -> int

(** [diameter g] is the exact diameter via all-pairs BFS — O(nm); use
    on small or sparse graphs. Raises [Failure] if disconnected.
    Returns 0 for graphs with fewer than 2 vertices. *)
val diameter : Graph.t -> int

(** [diameter_2sweep g] is the classic double-sweep lower bound on the
    diameter, O(m). Raises [Failure] if disconnected. *)
val diameter_2sweep : Graph.t -> int

(** [subset_diameter g s] is the diameter of [G\[S\]] (hop distance
    inside the induced subgraph); raises [Failure] if [G\[S\]] is
    disconnected or [s] is empty. *)
val subset_diameter : Graph.t -> int array -> int

(** {1 Density} *)

(** [degeneracy g] is the graph degeneracy (max over the removal
    order of the minimum remaining plain degree); the arboricity lies
    in [ceil(degeneracy/2), degeneracy]. Self-loops are ignored. *)
val degeneracy : Graph.t -> int

(** [arboricity_upper_bound g] = degeneracy: a forest-partition count
    achievable greedily. *)
val arboricity_upper_bound : Graph.t -> int

(** {1 Partitions} *)

(** [inter_component_edges g parts] counts edges of [g] whose
    endpoints lie in different parts. [parts] must partition the
    vertex set; raises [Invalid_argument] otherwise. *)
val inter_component_edges : Graph.t -> int array list -> int

(** [check_partition g parts] verifies that [parts] is a partition of
    the vertices of [g]; raises [Invalid_argument] otherwise. *)
val check_partition : Graph.t -> int array list -> unit

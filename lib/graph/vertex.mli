(** Phantom-typed vertex identifiers.

    Every recursive algorithm in this project runs protocols on induced
    subgraphs whose vertices are renumbered [0..n'-1], and translates
    results back through a [vertex_map]. Mixing up the two coordinate
    spaces — indexing a parent-graph array with a subgraph id, or
    reporting a subgraph id in an original-coordinate trace — is a
    silent, often off-by-one-looking corruption. These types make the
    compiler reject such confusion.

    - {!local} is a vertex id in the coordinate space of the network or
      subgraph currently executing a protocol;
    - {!orig} is a vertex id in the coordinate space of the original
      (outermost) instance, the space traces and results report in.

    Both are [private int]: construction is explicit ({!local},
    {!orig}), projection is an identity-function call ({!local_int},
    {!orig_int}) or a type coercion [(v :> int)] — there is no boxing
    and no runtime cost. The typed-AST lint rule C003 (see
    [tools/lint]) forbids raw [int] vertex parameters in the [.mli]s of
    the protocol layers, so the discipline is machine-checked.

    Decidability limit: vertex {e arrays} ([parent], [members], part
    lists…) remain [int array] — lifting them would force a copy or an
    unsafe cast at every [Array] operation. The typed boundary is the
    scalar parameters and the {!Map} translation table; see DESIGN.md
    §10. *)

type local = private int
(** A vertex id local to the executing (sub)network. *)

type orig = private int
(** A vertex id in original-instance coordinates. *)

val local : int -> local
(** [local v] asserts that [v] is a local-coordinate id. *)

val orig : int -> orig
(** [orig v] asserts that [v] is an original-coordinate id. *)

val local_int : local -> int
(** [local_int v] is [(v :> int)]. *)

val orig_int : orig -> int
(** [orig_int v] is [(v :> int)]. *)

(** Local-to-original translation tables (the [vertex_map] threaded by
    {!Dex_congest.Network.create} and [Ldd.run_graph]). Entry [i] is
    the original-coordinate id of local vertex [i]. *)
module Map : sig
  type t = private int array

  val of_array : int array -> t
  (** [of_array a] asserts that [a.(i)] is the original id of local
      vertex [i]. The array is not copied; callers must not mutate it
      afterwards. *)

  val to_array : t -> int array

  val length : t -> int

  val apply : t -> local -> orig
  (** [apply m v] translates one id. *)

  val get : t -> int -> orig
  (** [get m v] is [apply m (local v)] — for callers iterating raw
      subgraph indices. *)

  val compose : outer:t -> t -> t
  (** [compose ~outer inner] translates [inner]'s images through
      [outer]: the map for a subnetwork of a subnetwork. Raises
      [Invalid_argument] if an image of [inner] is outside [outer]. *)

  val translate : t -> int array -> int array
  (** [translate m vs] maps an array of local ids to original ids
      (fresh array). *)

  val translate_edge : t -> int * int -> int * int
  (** [translate_edge m (u, v)] translates both endpoints and
      normalizes the result to [u' <= v']. *)
end

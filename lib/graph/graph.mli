(** Compact undirected graphs with self-loops.

    This is the graph object every algorithm in the project works on.
    It matches the paper's conventions:

    - graphs are undirected and may carry self-loops;
    - each self-loop contributes exactly 1 to the degree of its vertex
      (as in Spielman–Srivastava and the paper's Section 1);
    - [G{S}] — written [saturated_subgraph] here — is the induced
      subgraph on [S] where every vertex keeps its original degree by
      gaining [deg_G(v) - deg_S(v)] self-loops.

    The structure is immutable once built; adjacency is stored as
    per-vertex sorted arrays, so neighbor iteration is cache-friendly
    and membership tests are logarithmic. *)

type t

(** {1 Construction} *)

(** [of_edges ~n edges] builds a graph on vertices [0..n-1] from an
    undirected edge list. Pairs [(u, v)] with [u = v] become
    self-loops. Duplicate pairs produce parallel edges (the paper's
    algorithms never create parallel non-loop edges, but the
    representation allows them). Raises [Invalid_argument] if an
    endpoint is out of range. *)
val of_edges : n:int -> (int * int) list -> t

(** [of_edge_array ~n edges] is [of_edges] on an array (no copy of the
    input is kept). *)
val of_edge_array : n:int -> (int * int) array -> t

(** [with_self_loops g loops] returns [g] with [loops.(v)] extra
    self-loops added at each vertex [v]. *)
val with_self_loops : t -> int array -> t

(** [empty n] is the edgeless graph on [n] vertices. *)
val empty : int -> t

(** {1 Size} *)

(** [num_vertices g]. *)
val num_vertices : t -> int

(** [num_edges g] counts undirected edges; each self-loop counts 1. *)
val num_edges : t -> int

(** [num_plain_edges g] counts non-loop undirected edges. *)
val num_plain_edges : t -> int

(** {1 Local structure} *)

(** [degree g v] = number of incident non-loop edge endpoints plus the
    number of self-loops at [v] (each loop contributes 1). *)
val degree : t -> int -> int

(** [plain_degree g v] ignores self-loops. *)
val plain_degree : t -> int -> int

(** [self_loops g v] is the number of self-loops at [v]. *)
val self_loops : t -> int -> int

(** [neighbors g v] is the sorted array of non-loop neighbors of [v],
    with multiplicity for parallel edges. The array is owned by the
    graph: callers must not mutate it. *)
val neighbors : t -> int -> int array

(** [iter_neighbors g v f] calls [f u] for every non-loop neighbor. *)
val iter_neighbors : t -> int -> (int -> unit) -> unit

(** [mem_edge g u v] tests for a non-loop edge between distinct [u],
    [v], or a self-loop when [u = v]. *)
val mem_edge : t -> int -> int -> bool

(** {1 CSR addressing}

    The per-vertex sorted neighbor arrays, concatenated in vertex
    order, enumerate the [2 * num_plain_edges g] directed edges of the
    graph. This gives every directed edge [(v, adj(v).(i))] a unique
    dense index — its {e slot} — which the CONGEST kernel's message
    arena uses to address one preallocated message buffer per directed
    edge. *)

(** [csr_offsets g] is the length-[n + 1] prefix-sum array of plain
    degrees: slot [csr_offsets g .(v) + i] is the i-th directed edge
    out of [v], and [csr_offsets g .(n)] is the total directed edge
    count. Each call builds a fresh array in O(n); callers that need
    it repeatedly should keep it. *)
val csr_offsets : t -> int array

(** [neighbor_rank g v u] is the index of [u] in [neighbors g v]
    (the leftmost one, under parallel edges), or [-1] when [u] is not
    a non-loop neighbor of [v]. Logarithmic, like {!mem_edge}; the
    returned rank is exactly the slot offset of the directed edge
    [(v, u)] relative to [csr_offsets g .(v)]. *)
val neighbor_rank : t -> int -> int -> int

(** {1 Global iteration} *)

(** [iter_edges g f] calls [f u v] once per undirected edge with
    [u <= v]; self-loops appear as [f v v]. *)
val iter_edges : t -> (int -> int -> unit) -> unit

(** [edges g] materializes the edge list ([u <= v] per pair). *)
val edges : t -> (int * int) list

(** [fold_vertices g init f] folds [f acc v] over vertices in order. *)
val fold_vertices : t -> 'a -> ('a -> int -> 'a) -> 'a

(** {1 Volumes} *)

(** [volume g vs] = sum of [degree g v] over [vs]; the paper's Vol. *)
val volume : t -> int array -> int

(** [total_volume g] = Vol(V) = sum of all degrees. *)
val total_volume : t -> int

(** {1 Derived graphs} *)

(** [induced_subgraph g s] is [G\[S\]]: the plain induced subgraph,
    together with the mapping from new vertex ids to original ids.
    Self-loops of members are preserved. *)
val induced_subgraph : t -> int array -> t * int array

(** [saturated_subgraph g s] is [G{S}]: induced subgraph where each
    kept vertex gains one self-loop per lost edge endpoint, so degrees
    match the parent graph. Returns the graph and the id mapping. *)
val saturated_subgraph : t -> int array -> t * int array

(** [remove_edges g dead] removes every non-loop edge [(u, v)]
    (normalized [u <= v]) present in [dead], replacing each with one
    self-loop at [u] and one at [v] — the paper's edge-removal
    convention ("whenever we remove an edge {u,v} we add a self loop
    at both u and v, so the degree never changes"). *)
val remove_edges : t -> (int * int) list -> t

(** {1 Invariants} *)

(** [check g] verifies internal invariants (adjacency symmetry, sorted
    neighbor arrays, degree bookkeeping); raises [Failure] with a
    description on violation. Intended for tests. *)
val check : t -> unit

module Rng = Dex_util.Rng

let complete n =
  let edges = ref [] in
  for u = 0 to n - 1 do
    for v = u + 1 to n - 1 do
      edges := (u, v) :: !edges
    done
  done;
  Graph.of_edges ~n !edges

let cycle n =
  if n < 3 then invalid_arg "Generators.cycle: need n >= 3";
  Graph.of_edges ~n (List.init n (fun i -> (i, (i + 1) mod n)))

let path n =
  if n < 1 then invalid_arg "Generators.path: need n >= 1";
  Graph.of_edges ~n (List.init (max 0 (n - 1)) (fun i -> (i, i + 1)))

let star n =
  if n < 1 then invalid_arg "Generators.star: need n >= 1";
  Graph.of_edges ~n (List.init (n - 1) (fun i -> (0, i + 1)))

let grid rows cols =
  if rows < 1 || cols < 1 then invalid_arg "Generators.grid";
  let id r c = (r * cols) + c in
  let edges = ref [] in
  for r = 0 to rows - 1 do
    for c = 0 to cols - 1 do
      if c + 1 < cols then edges := (id r c, id r (c + 1)) :: !edges;
      if r + 1 < rows then edges := (id r c, id (r + 1) c) :: !edges
    done
  done;
  Graph.of_edges ~n:(rows * cols) !edges

let gnp rng ~n ~p =
  if p < 0.0 || p > 1.0 then invalid_arg "Generators.gnp: p out of range";
  let edges = ref [] in
  if p > 0.2 then
    (* dense regime: direct Bernoulli per pair *)
    for u = 0 to n - 1 do
      for v = u + 1 to n - 1 do
        if Rng.bernoulli rng p then edges := (u, v) :: !edges
      done
    done
  else if p > 0.0 then begin
    (* sparse regime: geometric skipping over the pair enumeration *)
    let total = n * (n - 1) / 2 in
    let pos = ref (Rng.geometric rng p) in
    let unrank k =
      (* pair index k (0-based, row-major over u < v) -> (u, v) *)
      let rec row u k =
        let row_len = n - 1 - u in
        if k < row_len then (u, u + 1 + k) else row (u + 1) (k - row_len)
      in
      row 0 k
    in
    while !pos < total do
      edges := unrank !pos :: !edges;
      pos := !pos + 1 + Rng.geometric rng p
    done
  end;
  Graph.of_edges ~n !edges

let gnm rng ~n ~m =
  let max_m = n * (n - 1) / 2 in
  if m < 0 || m > max_m then invalid_arg "Generators.gnm: m out of range";
  let chosen = Hashtbl.create (2 * m) in
  let edges = ref [] in
  while Hashtbl.length chosen < m do
    let u = Rng.int rng n and v = Rng.int rng n in
    if u <> v then begin
      let key = (min u v, max u v) in
      if not (Hashtbl.mem chosen key) then begin
        Hashtbl.replace chosen key ();
        edges := key :: !edges
      end
    end
  done;
  Graph.of_edges ~n !edges

let random_regular rng ~n ~d =
  if d < 0 || d >= n then invalid_arg "Generators.random_regular: need 0 <= d < n";
  if n * d mod 2 = 1 then invalid_arg "Generators.random_regular: n*d must be even";
  (* pairing model with bounded restarts; drop conflicting stubs on the
     final attempt so we always terminate with a near-regular graph *)
  let attempt ~strict =
    let stubs = Array.make (n * d) 0 in
    for i = 0 to (n * d) - 1 do
      stubs.(i) <- i / d
    done;
    Rng.shuffle rng stubs;
    let seen = Hashtbl.create (n * d) in
    let edges = ref [] in
    let ok = ref true in
    let i = ref 0 in
    while !ok && !i + 1 < n * d do
      let u = stubs.(!i) and v = stubs.(!i + 1) in
      let key = (min u v, max u v) in
      if u = v || Hashtbl.mem seen key then begin
        if strict then ok := false
      end
      else begin
        Hashtbl.replace seen key ();
        edges := key :: !edges
      end;
      i := !i + 2
    done;
    if !ok then Some !edges else None
  in
  let rec go tries =
    if tries = 0 then
      match attempt ~strict:false with
      | Some edges -> Graph.of_edges ~n edges
      | None -> assert false
    else
      match attempt ~strict:true with
      | Some edges -> Graph.of_edges ~n edges
      | None -> go (tries - 1)
  in
  go 20

let barbell ~clique ~bridge =
  if clique < 2 then invalid_arg "Generators.barbell: clique size >= 2";
  let n = (2 * clique) + bridge in
  let edges = ref [] in
  let add_clique offset =
    for u = 0 to clique - 1 do
      for v = u + 1 to clique - 1 do
        edges := (offset + u, offset + v) :: !edges
      done
    done
  in
  add_clique 0;
  add_clique (clique + bridge);
  (* path through the bridge vertices (possibly zero of them) *)
  let left_anchor = clique - 1 and right_anchor = clique + bridge in
  let prev = ref left_anchor in
  for i = 0 to bridge - 1 do
    edges := (!prev, clique + i) :: !edges;
    prev := clique + i
  done;
  edges := (!prev, right_anchor) :: !edges;
  Graph.of_edges ~n !edges

let dumbbell rng ~n1 ~n2 ~d ~bridges =
  if bridges < 1 then invalid_arg "Generators.dumbbell: need >= 1 bridge";
  let fix_parity n = if n * d mod 2 = 1 then n + 1 else n in
  let n1 = fix_parity n1 and n2 = fix_parity n2 in
  let g1 = random_regular rng ~n:n1 ~d in
  let g2 = random_regular rng ~n:n2 ~d in
  let edges = ref [] in
  Graph.iter_edges g1 (fun u v -> edges := (u, v) :: !edges);
  Graph.iter_edges g2 (fun u v -> edges := (n1 + u, n1 + v) :: !edges);
  let used = Hashtbl.create (2 * bridges) in
  let planted = ref 0 in
  while !planted < bridges do
    let u = Rng.int rng n1 and v = n1 + Rng.int rng n2 in
    if not (Hashtbl.mem used (u, v)) then begin
      Hashtbl.replace used (u, v) ();
      edges := (u, v) :: !edges;
      incr planted
    end
  done;
  Graph.of_edges ~n:(n1 + n2) !edges

let planted_partition rng ~parts ~size ~p_in ~p_out =
  if parts < 1 || size < 1 then invalid_arg "Generators.planted_partition";
  let n = parts * size in
  let block v = v / size in
  let edges = ref [] in
  for u = 0 to n - 1 do
    for v = u + 1 to n - 1 do
      let p = if block u = block v then p_in else p_out in
      if Rng.bernoulli rng p then edges := (u, v) :: !edges
    done
  done;
  Graph.of_edges ~n !edges

let chung_lu rng ~n ~exponent ~avg_degree =
  if exponent <= 2.0 then invalid_arg "Generators.chung_lu: exponent must exceed 2";
  let i0 = 10.0 in
  let w = Array.init n (fun i -> (float_of_int i +. i0) ** (-1.0 /. (exponent -. 1.0))) in
  let total = Array.fold_left ( +. ) 0.0 w in
  let scale = avg_degree *. float_of_int n /. total in
  let w = Array.map (fun x -> x *. scale) w in
  let total = Array.fold_left ( +. ) 0.0 w in
  let edges = ref [] in
  for u = 0 to n - 1 do
    for v = u + 1 to n - 1 do
      let p = Float.min 1.0 (w.(u) *. w.(v) /. total) in
      if p >= 1e-7 && Rng.bernoulli rng p then edges := (u, v) :: !edges
    done
  done;
  Graph.of_edges ~n !edges

let cliques_chain ~cliques ~size =
  if cliques < 1 || size < 2 then invalid_arg "Generators.cliques_chain";
  let n = cliques * size in
  let edges = ref [] in
  for c = 0 to cliques - 1 do
    let offset = c * size in
    for u = 0 to size - 1 do
      for v = u + 1 to size - 1 do
        edges := (offset + u, offset + v) :: !edges
      done
    done;
    if c + 1 < cliques then edges := (offset + size - 1, offset + size) :: !edges
  done;
  Graph.of_edges ~n !edges

let binary_tree depth =
  if depth < 0 then invalid_arg "Generators.binary_tree";
  let n = (1 lsl (depth + 1)) - 1 in
  let edges = ref [] in
  for v = 1 to n - 1 do
    edges := (v, (v - 1) / 2) :: !edges
  done;
  Graph.of_edges ~n !edges

let attach_warts rng g ~warts ~size =
  if warts < 0 || size < 2 then invalid_arg "Generators.attach_warts";
  let n = Graph.num_vertices g in
  let edges = ref (Graph.edges g) in
  for w = 0 to warts - 1 do
    let offset = n + (w * size) in
    for u = 0 to size - 1 do
      for v = u + 1 to size - 1 do
        edges := (offset + u, offset + v) :: !edges
      done
    done;
    edges := (Rng.int rng n, offset) :: !edges
  done;
  Graph.of_edges ~n:(n + (warts * size)) !edges

let connectivize rng g =
  let comps = Metrics.connected_components g in
  match comps with
  | [] | [ _ ] -> g
  | first :: rest ->
    let extra =
      List.map
        (fun comp -> (Rng.choose rng first, Rng.choose rng comp))
        rest
    in
    let all = List.rev_append (Graph.edges g) extra in
    Graph.of_edges ~n:(Graph.num_vertices g) all

type t = {
  n : int;
  adj : int array array; (* sorted neighbor lists, self-loops excluded *)
  loops : int array; (* self-loop count per vertex *)
  plain_m : int; (* number of non-loop undirected edges *)
  loop_m : int; (* number of self-loops *)
}

let num_vertices g = g.n
let num_plain_edges g = g.plain_m
let num_edges g = g.plain_m + g.loop_m
let plain_degree g v = Array.length g.adj.(v)
let self_loops g v = g.loops.(v)
let degree g v = Array.length g.adj.(v) + g.loops.(v)
let neighbors g v = g.adj.(v)

let iter_neighbors g v f =
  let a = g.adj.(v) in
  for i = 0 to Array.length a - 1 do
    f a.(i)
  done

let build ~n ~count_edge =
  (* two passes over the edge source: degree count then fill *)
  let deg = Array.make n 0 in
  let loops = Array.make n 0 in
  let loop_m = ref 0 in
  let plain_m = ref 0 in
  count_edge (fun u v ->
      if u < 0 || u >= n || v < 0 || v >= n then
        invalid_arg "Graph.of_edges: endpoint out of range";
      if u = v then begin
        loops.(u) <- loops.(u) + 1;
        incr loop_m
      end
      else begin
        deg.(u) <- deg.(u) + 1;
        deg.(v) <- deg.(v) + 1;
        incr plain_m
      end);
  let adj = Array.init n (fun v -> Array.make deg.(v) 0) in
  let fill = Array.make n 0 in
  count_edge (fun u v ->
      if u <> v then begin
        adj.(u).(fill.(u)) <- v;
        fill.(u) <- fill.(u) + 1;
        adj.(v).(fill.(v)) <- u;
        fill.(v) <- fill.(v) + 1
      end);
  Array.iter (fun a -> Array.sort Int.compare a) adj;
  { n; adj; loops; plain_m = !plain_m; loop_m = !loop_m }

let of_edges ~n edges = build ~n ~count_edge:(fun f -> List.iter (fun (u, v) -> f u v) edges)

let of_edge_array ~n edges =
  build ~n ~count_edge:(fun f -> Array.iter (fun (u, v) -> f u v) edges)

let empty n = of_edges ~n []

let with_self_loops g extra =
  if Array.length extra <> g.n then invalid_arg "Graph.with_self_loops: length mismatch";
  let loops = Array.mapi (fun v k -> g.loops.(v) + k) extra in
  Array.iteri
    (fun v k -> if k < 0 then invalid_arg (Printf.sprintf "Graph.with_self_loops: negative at %d" v))
    extra;
  let loop_m = Array.fold_left ( + ) 0 loops in
  { g with loops; loop_m }

let mem_edge g u v =
  if u = v then g.loops.(u) > 0
  else begin
    let a = g.adj.(u) in
    let lo = ref 0 and hi = ref (Array.length a) in
    let found = ref false in
    while (not !found) && !lo < !hi do
      let mid = (!lo + !hi) / 2 in
      if a.(mid) = v then found := true
      else if a.(mid) < v then lo := mid + 1
      else hi := mid
    done;
    !found
  end

(* CSR addressing: the concatenation of the per-vertex sorted neighbor
   arrays is the canonical enumeration of the 2*plain_m directed edges,
   and [off.(v) + i] is the global index ("slot") of the i-th directed
   edge out of [v]. The CONGEST kernel's message arena allocates one
   message slot per directed edge at exactly these indices. *)
let csr_offsets g =
  let off = Array.make (g.n + 1) 0 in
  for v = 0 to g.n - 1 do
    off.(v + 1) <- off.(v) + Array.length g.adj.(v)
  done;
  off

let neighbor_rank g v u =
  (* leftmost occurrence, so parallel edges map to one canonical rank *)
  let a = g.adj.(v) in
  let lo = ref 0 and hi = ref (Array.length a) in
  while !lo < !hi do
    let mid = (!lo + !hi) / 2 in
    if a.(mid) < u then lo := mid + 1 else hi := mid
  done;
  if !lo < Array.length a && a.(!lo) = u then !lo else -1

let iter_edges g f =
  for u = 0 to g.n - 1 do
    for _ = 1 to g.loops.(u) do
      f u u
    done;
    let a = g.adj.(u) in
    for i = 0 to Array.length a - 1 do
      if a.(i) >= u then f u a.(i)
    done
  done

let edges g =
  let acc = ref [] in
  iter_edges g (fun u v -> acc := (u, v) :: !acc);
  List.rev !acc

let fold_vertices g init f =
  let acc = ref init in
  for v = 0 to g.n - 1 do
    acc := f !acc v
  done;
  !acc

let volume g vs = Array.fold_left (fun acc v -> acc + degree g v) 0 vs
let total_volume g = (2 * g.plain_m) + g.loop_m

let member_mask g s =
  let mask = Array.make g.n false in
  Array.iter
    (fun v ->
      if v < 0 || v >= g.n then invalid_arg "Graph: subset vertex out of range";
      mask.(v) <- true)
    s;
  mask

let subgraph_generic g s ~saturate =
  let mask = member_mask g s in
  let id_of = Array.make g.n (-1) in
  Array.iteri (fun i v -> id_of.(v) <- i) s;
  let k = Array.length s in
  let edge_acc = ref [] in
  Array.iter
    (fun v ->
      iter_neighbors g v (fun u ->
          if mask.(u) && (u > v || (u = v && false)) then
            edge_acc := (id_of.(v), id_of.(u)) :: !edge_acc))
    s;
  let base = of_edges ~n:k !edge_acc in
  let extra = Array.make k 0 in
  Array.iteri
    (fun i v ->
      let kept = Array.length base.adj.(i) in
      let lost = plain_degree g v - kept in
      extra.(i) <- g.loops.(v) + (if saturate then lost else 0))
    s;
  (with_self_loops base extra, Array.copy s)

let induced_subgraph g s = subgraph_generic g s ~saturate:false
let saturated_subgraph g s = subgraph_generic g s ~saturate:true

let remove_edges g dead =
  let tbl = Hashtbl.create (2 * List.length dead) in
  List.iter
    (fun (u, v) ->
      let key = if u <= v then (u, v) else (v, u) in
      if u <> v then Hashtbl.replace tbl key ())
    dead;
  let extra = Array.make g.n 0 in
  let keep = ref [] in
  iter_edges g (fun u v ->
      if u = v then keep := (u, v) :: !keep
      else if Hashtbl.mem tbl (u, v) then begin
        extra.(u) <- extra.(u) + 1;
        extra.(v) <- extra.(v) + 1
      end
      else keep := (u, v) :: !keep);
  let base = of_edges ~n:g.n !keep in
  with_self_loops base extra

let check g =
  let fail fmt = Printf.ksprintf failwith fmt in
  if g.n < 0 then fail "negative vertex count";
  let plain = ref 0 in
  for v = 0 to g.n - 1 do
    let a = g.adj.(v) in
    for i = 0 to Array.length a - 1 do
      let u = a.(i) in
      if u < 0 || u >= g.n then fail "neighbor out of range at %d" v;
      if u = v then fail "self-loop stored in adjacency at %d" v;
      if i > 0 && a.(i - 1) > u then fail "unsorted adjacency at %d" v;
      if not (Array.exists (fun w -> w = v) g.adj.(u)) then
        fail "asymmetric edge %d-%d" v u
    done;
    plain := !plain + Array.length a
  done;
  if !plain <> 2 * g.plain_m then fail "plain edge count mismatch";
  if Array.fold_left ( + ) 0 g.loops <> g.loop_m then fail "loop count mismatch"

let parse text =
  let edges = ref [] in
  let declared_n = ref None in
  let max_id = ref (-1) in
  let lines = String.split_on_char '\n' text in
  List.iteri
    (fun idx line ->
      let lineno = idx + 1 in
      let fail fmt = Printf.ksprintf (fun s -> failwith (Printf.sprintf "line %d: %s" lineno s)) fmt in
      let line = String.trim line in
      if line <> "" && line.[0] <> '#' then begin
        let fields =
          String.split_on_char ' ' line
          |> List.concat_map (String.split_on_char '\t')
          |> List.filter (fun s -> s <> "")
        in
        match fields with
        | [ "n"; count ] -> (
          match int_of_string_opt count with
          | Some n when n >= 0 -> declared_n := Some n
          | _ -> fail "invalid vertex count %S" count)
        | [ a; b ] -> (
          match (int_of_string_opt a, int_of_string_opt b) with
          | Some u, Some v when u >= 0 && v >= 0 ->
            edges := (u, v) :: !edges;
            max_id := max !max_id (max u v)
          | _ -> fail "invalid edge %S" line)
        | _ -> fail "expected 'u v' or 'n count', got %S" line
      end)
    lines;
  let n =
    match !declared_n with
    | Some n ->
      if !max_id >= n then
        failwith (Printf.sprintf "edge endpoint %d exceeds declared n = %d" !max_id n);
      n
    | None -> !max_id + 1
  in
  Graph.of_edges ~n (List.rev !edges)

let to_string g =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf (Printf.sprintf "# dexpander edge list\nn %d\n" (Graph.num_vertices g));
  Graph.iter_edges g (fun u v -> Buffer.add_string buf (Printf.sprintf "%d %d\n" u v));
  Buffer.contents buf

let load path =
  let ic = open_in path in
  let len = in_channel_length ic in
  let text = really_input_string ic len in
  close_in ic;
  parse text

let save path g =
  let oc = open_out path in
  output_string oc (to_string g);
  close_out oc

(** Graph generators used by tests, examples and the benchmark
    harness. All are deterministic given the {!Dex_util.Rng.t}. *)

(** [complete n] is K_n. *)
val complete : int -> Graph.t

(** [cycle n] is C_n ([n >= 3]). *)
val cycle : int -> Graph.t

(** [path n] is P_n. *)
val path : int -> Graph.t

(** [star n] is K_{1,n-1} with center 0. *)
val star : int -> Graph.t

(** [grid rows cols] is the rows×cols grid graph. *)
val grid : int -> int -> Graph.t

(** [gnp rng ~n ~p] is Erdős–Rényi G(n, p). The paper's triangle
    lower-bound family is [gnp ~p:0.5]. *)
val gnp : Dex_util.Rng.t -> n:int -> p:float -> Graph.t

(** [gnm rng ~n ~m] is a uniform simple graph with [m] edges. *)
val gnm : Dex_util.Rng.t -> n:int -> m:int -> Graph.t

(** [random_regular rng ~n ~d] is a (near-)d-regular simple graph by
    the pairing model with retries; w.h.p. an expander for d ≥ 3.
    [n * d] must be even. *)
val random_regular : Dex_util.Rng.t -> n:int -> d:int -> Graph.t

(** [barbell ~clique ~bridge] joins two K_{clique} by a path with
    [bridge] interior vertices — the canonical most-balanced sparse
    cut instance (b = 1/2, Φ ≈ 1/clique²). *)
val barbell : clique:int -> bridge:int -> Graph.t

(** [dumbbell rng ~n1 ~n2 ~d ~bridges] joins a d-regular expander on
    [n1] vertices to one on [n2] vertices by [bridges] random edges:
    planted sparse cut with balance ≈ min(n1,n2)·d / ((n1+n2)·d). *)
val dumbbell :
  Dex_util.Rng.t -> n1:int -> n2:int -> d:int -> bridges:int -> Graph.t

(** [planted_partition rng ~parts ~size ~p_in ~p_out] is the
    stochastic block model with [parts] blocks of [size] vertices:
    intra-block edge probability [p_in], inter-block [p_out]. The
    ground-truth blocks are [fun i -> i / size]. *)
val planted_partition :
  Dex_util.Rng.t -> parts:int -> size:int -> p_in:float -> p_out:float -> Graph.t

(** [chung_lu rng ~n ~exponent ~avg_degree] is a power-law
    (Chung–Lu) graph with weight w_i ∝ (i + i0)^{-1/(exponent-1)}
    scaled to the requested average degree — a triangle-rich,
    skew-degree "social network" instance. *)
val chung_lu : Dex_util.Rng.t -> n:int -> exponent:float -> avg_degree:float -> Graph.t

(** [cliques_chain ~cliques ~size] is [cliques] copies of K_{size}
    connected in a chain by single edges: many balanced sparse cuts at
    different scales. *)
val cliques_chain : cliques:int -> size:int -> Graph.t

(** [binary_tree depth] is the complete binary tree with 2^{depth+1}-1
    vertices: high diameter, conductance Θ(1/n). *)
val binary_tree : int -> Graph.t

(** [attach_warts rng g ~warts ~size] attaches [warts] cliques of
    [size] vertices to [g], each by a single edge to a random vertex
    of [g] — "warts": very sparse, very unbalanced cuts. Wart [i]
    occupies vertices [n + i·size .. n + (i+1)·size - 1]. The
    sparsest cut of the result is typically a wart, while the most
    balanced sparse cut is whatever [g] had — the instance class that
    separates Theorem 3 from plain sparsest-cut algorithms, and the
    unbalanced-cut trigger for Phase 2 of Theorem 1. *)
val attach_warts : Dex_util.Rng.t -> Graph.t -> warts:int -> size:int -> Graph.t

(** [connectivize rng g] adds the minimum number of random edges
    joining the components of [g] so the result is connected. *)
val connectivize : Dex_util.Rng.t -> Graph.t -> Graph.t

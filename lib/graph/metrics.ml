let mask_of g s =
  let mask = Array.make (Graph.num_vertices g) false in
  Array.iter
    (fun v ->
      if v < 0 || v >= Graph.num_vertices g then
        invalid_arg "Metrics: vertex out of range";
      mask.(v) <- true)
    s;
  mask

let vertices_of_mask mask =
  let count = Array.fold_left (fun acc b -> if b then acc + 1 else acc) 0 mask in
  let out = Array.make count 0 in
  let i = ref 0 in
  Array.iteri
    (fun v b ->
      if b then begin
        out.(!i) <- v;
        incr i
      end)
    mask;
  out

let complement g s =
  let mask = mask_of g s in
  let out = Array.make (Graph.num_vertices g - Array.length s) 0 in
  let i = ref 0 in
  for v = 0 to Graph.num_vertices g - 1 do
    if not mask.(v) then begin
      out.(!i) <- v;
      incr i
    end
  done;
  out

let cut_size_mask g mask =
  let crossing = ref 0 in
  Graph.iter_edges g (fun u v -> if u <> v && mask.(u) <> mask.(v) then incr crossing);
  !crossing

let cut_size g s = cut_size_mask g (mask_of g s)

let conductance g s =
  let vol_s = Graph.volume g s in
  let vol_rest = Graph.total_volume g - vol_s in
  let small = min vol_s vol_rest in
  if small <= 0 then Float.infinity
  else float_of_int (cut_size g s) /. float_of_int small

let balance g s =
  let total = Graph.total_volume g in
  if total = 0 then 0.0
  else begin
    let vol_s = Graph.volume g s in
    float_of_int (min vol_s (total - vol_s)) /. float_of_int total
  end

let is_sparse_cut g ~phi s =
  let c = conductance g s in
  Float.is_finite c && c <= phi

let connected_components g =
  let n = Graph.num_vertices g in
  let seen = Array.make n false in
  let comps = ref [] in
  let queue = Queue.create () in
  for src = 0 to n - 1 do
    if not seen.(src) then begin
      seen.(src) <- true;
      Queue.clear queue;
      Queue.add src queue;
      let members = ref [ src ] in
      while not (Queue.is_empty queue) do
        let v = Queue.take queue in
        Graph.iter_neighbors g v (fun u ->
            if not seen.(u) then begin
              seen.(u) <- true;
              members := u :: !members;
              Queue.add u queue
            end)
      done;
      let arr = Array.of_list !members in
      Array.sort Int.compare arr;
      comps := arr :: !comps
    end
  done;
  List.sort (fun a b -> Int.compare (Array.length b) (Array.length a)) !comps

let is_connected g =
  match connected_components g with [] | [ _ ] -> true | _ -> false

let bfs_multi_distances g srcs =
  let n = Graph.num_vertices g in
  let dist = Array.make n max_int in
  let queue = Queue.create () in
  Array.iter
    (fun s ->
      if dist.(s) = max_int then begin
        dist.(s) <- 0;
        Queue.add s queue
      end)
    srcs;
  while not (Queue.is_empty queue) do
    let v = Queue.take queue in
    Graph.iter_neighbors g v (fun u ->
        if dist.(u) = max_int then begin
          dist.(u) <- dist.(v) + 1;
          Queue.add u queue
        end)
  done;
  dist

let bfs_distances g src = bfs_multi_distances g [| src |]

let eccentricity g v =
  let dist = bfs_distances g v in
  Array.fold_left
    (fun acc d ->
      if d = max_int then failwith "Metrics.eccentricity: disconnected graph"
      else max acc d)
    0 dist

let diameter g =
  let n = Graph.num_vertices g in
  if n <= 1 then 0
  else begin
    let best = ref 0 in
    for v = 0 to n - 1 do
      best := max !best (eccentricity g v)
    done;
    !best
  end

let diameter_2sweep g =
  let n = Graph.num_vertices g in
  if n <= 1 then 0
  else begin
    let far dist =
      let best = ref 0 in
      Array.iteri
        (fun v d ->
          if d = max_int then failwith "Metrics.diameter_2sweep: disconnected graph";
          if d > dist.(!best) then best := v)
        dist;
      !best
    in
    let d0 = bfs_distances g 0 in
    let a = far d0 in
    let da = bfs_distances g a in
    let b = far da in
    da.(b)
  end

let subset_diameter g s =
  if Array.length s = 0 then failwith "Metrics.subset_diameter: empty subset";
  let sub, _ = Graph.induced_subgraph g s in
  diameter sub

let degeneracy g =
  let n = Graph.num_vertices g in
  if n = 0 then 0
  else begin
    (* standard bucket-queue core decomposition, O(n + m) *)
    let deg = Array.init n (fun v -> Graph.plain_degree g v) in
    let maxdeg = Array.fold_left max 0 deg in
    let buckets = Array.make (maxdeg + 1) [] in
    Array.iteri (fun v d -> buckets.(d) <- v :: buckets.(d)) deg;
    let removed = Array.make n false in
    let result = ref 0 in
    let cursor = ref 0 in
    for _ = 1 to n do
      while !cursor <= maxdeg && buckets.(!cursor) = [] do
        incr cursor
      done;
      (* buckets may hold stale entries; skip them *)
      let rec take () =
        match buckets.(!cursor) with
        | [] ->
          incr cursor;
          while !cursor <= maxdeg && buckets.(!cursor) = [] do
            incr cursor
          done;
          take ()
        | v :: rest ->
          buckets.(!cursor) <- rest;
          if removed.(v) || deg.(v) <> !cursor then take () else v
      in
      let v = take () in
      removed.(v) <- true;
      result := max !result deg.(v);
      Graph.iter_neighbors g v (fun u ->
          if not removed.(u) then begin
            deg.(u) <- deg.(u) - 1;
            buckets.(deg.(u)) <- u :: buckets.(deg.(u));
            if deg.(u) < !cursor then cursor := deg.(u)
          end)
    done;
    !result
  end

let arboricity_upper_bound = degeneracy

let check_partition g parts =
  let n = Graph.num_vertices g in
  let seen = Array.make n false in
  List.iter
    (fun part ->
      Array.iter
        (fun v ->
          if v < 0 || v >= n then invalid_arg "Metrics.check_partition: vertex out of range";
          if seen.(v) then invalid_arg "Metrics.check_partition: vertex appears twice";
          seen.(v) <- true)
        part)
    parts;
  Array.iteri
    (fun v covered ->
      if not covered then
        invalid_arg (Printf.sprintf "Metrics.check_partition: vertex %d uncovered" v))
    seen

let inter_component_edges g parts =
  check_partition g parts;
  let label = Array.make (Graph.num_vertices g) (-1) in
  List.iteri (fun i part -> Array.iter (fun v -> label.(v) <- i) part) parts;
  let crossing = ref 0 in
  Graph.iter_edges g (fun u v -> if u <> v && label.(u) <> label.(v) then incr crossing);
  !crossing

let check_nonempty name = function
  | [] -> invalid_arg (name ^ ": empty list")
  | _ :: _ -> ()

let mean xs =
  check_nonempty "Stats.mean" xs;
  List.fold_left ( +. ) 0.0 xs /. float_of_int (List.length xs)

let stddev xs =
  check_nonempty "Stats.stddev" xs;
  let m = mean xs in
  let var =
    List.fold_left (fun acc x -> acc +. ((x -. m) *. (x -. m))) 0.0 xs
    /. float_of_int (List.length xs)
  in
  sqrt var

let sorted xs = List.sort compare xs

let median xs =
  check_nonempty "Stats.median" xs;
  let a = Array.of_list (sorted xs) in
  let n = Array.length a in
  if n mod 2 = 1 then a.(n / 2) else (a.((n / 2) - 1) +. a.(n / 2)) /. 2.0

let percentile p xs =
  check_nonempty "Stats.percentile" xs;
  if p < 0.0 || p > 100.0 then invalid_arg "Stats.percentile: p out of range";
  let a = Array.of_list (sorted xs) in
  let n = Array.length a in
  let rank = int_of_float (Float.ceil (p /. 100.0 *. float_of_int n)) in
  a.(max 0 (min (n - 1) (rank - 1)))

let minimum xs =
  check_nonempty "Stats.minimum" xs;
  List.fold_left min Float.infinity xs

let maximum xs =
  check_nonempty "Stats.maximum" xs;
  List.fold_left max Float.neg_infinity xs

let linear_fit pts =
  match pts with
  | [] | [ _ ] -> invalid_arg "Stats.linear_fit: need at least two points"
  | _ ->
    let n = float_of_int (List.length pts) in
    let sx = List.fold_left (fun a (x, _) -> a +. x) 0.0 pts in
    let sy = List.fold_left (fun a (_, y) -> a +. y) 0.0 pts in
    let sxx = List.fold_left (fun a (x, _) -> a +. (x *. x)) 0.0 pts in
    let sxy = List.fold_left (fun a (x, y) -> a +. (x *. y)) 0.0 pts in
    let denom = (n *. sxx) -. (sx *. sx) in
    if Float.abs denom < 1e-12 then invalid_arg "Stats.linear_fit: degenerate x";
    let slope = ((n *. sxy) -. (sx *. sy)) /. denom in
    let intercept = (sy -. (slope *. sx)) /. n in
    (slope, intercept)

let log_log_slope pts =
  let pts =
    List.filter_map
      (fun (x, y) -> if x > 0.0 && y > 0.0 then Some (log x, log y) else None)
      pts
  in
  fst (linear_fit pts)

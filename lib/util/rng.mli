(** Deterministic, splittable pseudo-random number generation.

    Every randomized algorithm in this project threads an explicit
    [Rng.t] so that runs are reproducible from a single integer seed.
    Splitting derives an independent stream, which lets "each vertex
    generates unlimited local random bits" (the CONGEST assumption) be
    simulated without the streams interfering. *)

type t

(** [create seed] makes a generator from an integer seed. *)
val create : int -> t

(** [split t i] derives an independent generator from [t]'s current
    stream state and the index [i] (advancing [t] by one draw — two
    successive [split t i] calls give different streams). Used to hand
    each simulated vertex its own local randomness. *)
val split : t -> int -> t

(** [int t bound] is uniform in [0, bound). Raises [Invalid_argument]
    if [bound <= 0]. *)
val int : t -> int -> int

(** [float t bound] is uniform in [0, bound). *)
val float : t -> float -> float

(** [bool t] is a fair coin. *)
val bool : t -> bool

(** [bernoulli t p] is [true] with probability [p]. *)
val bernoulli : t -> float -> bool

(** [exponential t ~rate] samples Exponential(rate): mean [1/rate].
    Used by the Miller–Peng–Xu clustering shifts. *)
val exponential : t -> rate:float -> float

(** [geometric t p] is the number of failures before the first success
    of a Bernoulli(p); [p] must be in (0, 1]. *)
val geometric : t -> float -> int

(** [shuffle t a] permutes [a] in place (Fisher–Yates). *)
val shuffle : t -> 'a array -> unit

(** [choose t a] is a uniformly random element of [a].
    Raises [Invalid_argument] on an empty array. *)
val choose : t -> 'a array -> 'a

(** [weighted_index t w] samples index [i] with probability
    [w.(i) / sum w]; weights must be non-negative with positive sum. *)
val weighted_index : t -> float array -> int

(** [sample_without_replacement t ~n ~k] is [k] distinct values drawn
    uniformly from [0, n). *)
val sample_without_replacement : t -> n:int -> k:int -> int array

(** Binary min-heap over [(priority, value)] pairs, with float
    priorities. Used by Dijkstra-style sweeps and the clustering
    start-time queue. *)

type 'a t

(** [create ()] is an empty heap. *)
val create : unit -> 'a t

(** [push h priority value] inserts. *)
val push : 'a t -> float -> 'a -> unit

(** [pop h] removes and returns the minimum pair; [None] when empty. *)
val pop : 'a t -> (float * 'a) option

(** [peek h] returns the minimum pair without removing it. *)
val peek : 'a t -> (float * 'a) option

(** [size h] is the number of stored elements. *)
val size : 'a t -> int

(** [is_empty h]. *)
val is_empty : 'a t -> bool

(** Disjoint-set forest with union by rank and path compression.
    Used to extract connected components when edges are removed from a
    graph during the decomposition. *)

type t

(** [create n] makes [n] singleton sets [{0}, ..., {n-1}]. *)
val create : int -> t

(** [find t x] is the canonical representative of [x]'s set. *)
val find : t -> int -> int

(** [union t x y] merges the sets of [x] and [y]; returns [true] iff
    they were previously distinct. *)
val union : t -> int -> int -> bool

(** [same t x y] tests whether [x] and [y] share a set. *)
val same : t -> int -> int -> bool

(** [count t] is the current number of disjoint sets. *)
val count : t -> int

(** [size t x] is the cardinality of [x]'s set. *)
val size : t -> int -> int

(** [groups t] lists the sets, each as a sorted array of members. *)
val groups : t -> int array list

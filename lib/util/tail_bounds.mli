(** Concentration bounds used by the paper's analyses.

    Lemma 13 bounds the number of inter-cluster edges with a Chernoff
    bound for random variables of bounded dependence (Pemmaraju,
    "Equitable coloring extends Chernoff–Hoeffding bounds"): if each
    X_e depends on at most [d] others, then

    Pr[X ≥ (1+δ)μ] ≤ O(d)·exp(-Ω(δ²μ/d)).

    These helpers evaluate the bounds so benches can print the
    certified failure probability next to the measured quantity. *)

(** [chernoff_upper ~mu ~delta] is the classic independent-case bound
    exp(-δ²μ/3) on Pr[X ≥ (1+δ)μ], for δ in (0, 1]. *)
val chernoff_upper : mu:float -> delta:float -> float

(** [chernoff_lower ~mu ~delta] bounds Pr[X ≤ (1-δ)μ] by exp(-δ²μ/2). *)
val chernoff_lower : mu:float -> delta:float -> float

(** [bounded_dependence_upper ~mu ~delta ~d] is Pemmaraju's bound
    with dependence degree [d ≥ 1]: d·exp(-δ²μ/(3d)). *)
val bounded_dependence_upper : mu:float -> delta:float -> d:float -> float

(** [ldd_failure_probability ~m ~beta ~k_ln] evaluates the Lemma 13
    certificate for a graph with [m] edges at parameter [beta], where
    the dependence degree is d = β·m/(K·ln n) with [k_ln] = K·ln n:
    the probability that more than 3β·m edges are cut. *)
val ldd_failure_probability : m:int -> beta:float -> k_ln:float -> float

(** Aligned plain-text tables for the benchmark harness, plus the
    sorted hashtable iteration helpers mandated by lint rule D001. *)

(** {1 Deterministic hashtable iteration}

    [Hashtbl.iter]/[Hashtbl.fold] visit bindings in hash-bucket order,
    which depends on the table's insertion history — two tables with
    identical bindings can iterate differently, leaking
    nondeterminism into round schedules, RNG consumption and float
    accumulation. Algorithm libraries must use these instead (enforced
    by [dex_lint] rule D001). *)

(** [keys_sorted ?compare tbl] is the distinct keys of [tbl] in
    ascending order ([compare] defaults to the polymorphic compare —
    fine for the int and int-pair keys used throughout). *)
val keys_sorted : ?compare:('a -> 'a -> int) -> ('a, 'b) Hashtbl.t -> 'a list

(** [iter_sorted ?compare f tbl] applies [f k v] in ascending key
    order. For keys with multiple bindings only the most recent
    binding is visited. *)
val iter_sorted : ?compare:('a -> 'a -> int) -> ('a -> 'b -> unit) -> ('a, 'b) Hashtbl.t -> unit

(** [fold_sorted ?compare f tbl init] folds [f k v acc] in ascending
    key order. *)
val fold_sorted :
  ?compare:('a -> 'a -> int) -> ('a -> 'b -> 'c -> 'c) -> ('a, 'b) Hashtbl.t -> 'c -> 'c

(** {1 Aligned text tables} *)

type t

(** [create ~title headers] starts a table. *)
val create : title:string -> string list -> t

(** [add_row t cells] appends a row; short rows are padded. *)
val add_row : t -> string list -> unit

(** Accessors (the bench snapshot exporter reads tables back). *)

val title : t -> string
val headers : t -> string list

(** [rows t] is every row added so far, in insertion order. *)
val rows : t -> string list list

(** [render t] is the aligned textual rendering (with title and rule). *)
val render : t -> string

(** [print t] writes [render t] to stdout. *)
val print : t -> unit

(** Formatting helpers shared by the bench harness. *)

val fmt_float : float -> string
val fmt_pct : float -> string

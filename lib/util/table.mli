(** Aligned plain-text tables for the benchmark harness. *)

type t

(** [create ~title headers] starts a table. *)
val create : title:string -> string list -> t

(** [add_row t cells] appends a row; short rows are padded. *)
val add_row : t -> string list -> unit

(** Accessors (the bench snapshot exporter reads tables back). *)

val title : t -> string
val headers : t -> string list

(** [rows t] is every row added so far, in insertion order. *)
val rows : t -> string list list

(** [render t] is the aligned textual rendering (with title and rule). *)
val render : t -> string

(** [print t] writes [render t] to stdout. *)
val print : t -> unit

(** Formatting helpers shared by the bench harness. *)

val fmt_float : float -> string
val fmt_int : int -> string
val fmt_pct : float -> string

(* ---------------- deterministic hashtable iteration ---------------- *)

(* The only sanctioned way to iterate a Hashtbl in algorithm libraries:
   hash-order iteration leaks the table's insertion history into round
   schedules, RNG consumption and float accumulation order, breaking
   the (graph, seed) -> run determinism the simulation promises (lint
   rule D001). These helpers materialise the key set, sort it, and
   visit bindings in ascending key order. *)

let keys_sorted ?(compare = Stdlib.compare) tbl =
  (* dex-lint: allow D001 the sorted-iteration helper itself *)
  let keys = Hashtbl.fold (fun k _ acc -> k :: acc) tbl [] in
  List.sort_uniq compare keys

let iter_sorted ?compare f tbl =
  List.iter (fun k -> f k (Hashtbl.find tbl k)) (keys_sorted ?compare tbl)

let fold_sorted ?compare f tbl init =
  List.fold_left (fun acc k -> f k (Hashtbl.find tbl k) acc) init (keys_sorted ?compare tbl)

(* ---------------- aligned text tables ---------------- *)

type t = { title : string; headers : string list; mutable rows : string list list }

let create ~title headers = { title; headers; rows = [] }
let add_row t cells = t.rows <- cells :: t.rows
let title t = t.title
let headers t = t.headers
let rows t = List.rev t.rows

let pad s width =
  let n = String.length s in
  if n >= width then s else s ^ String.make (width - n) ' '

let render t =
  let rows = List.rev t.rows in
  let ncols =
    List.fold_left (fun acc r -> max acc (List.length r)) (List.length t.headers) rows
  in
  let normalize r =
    let len = List.length r in
    if len >= ncols then r else r @ List.init (ncols - len) (fun _ -> "")
  in
  let headers = normalize t.headers in
  let rows = List.map normalize rows in
  let widths = Array.make ncols 0 in
  let account r = List.iteri (fun i c -> widths.(i) <- max widths.(i) (String.length c)) r in
  account headers;
  List.iter account rows;
  let line r =
    String.concat "  " (List.mapi (fun i c -> pad c widths.(i)) r)
  in
  let rule =
    String.concat "  " (Array.to_list (Array.map (fun w -> String.make w '-') widths))
  in
  let buf = Buffer.create 256 in
  Buffer.add_string buf ("== " ^ t.title ^ " ==\n");
  Buffer.add_string buf (line headers ^ "\n");
  Buffer.add_string buf (rule ^ "\n");
  List.iter (fun r -> Buffer.add_string buf (line r ^ "\n")) rows;
  Buffer.contents buf

let print t = print_string (render t)

let fmt_float x =
  if Float.is_integer x && Float.abs x < 1e15 then Printf.sprintf "%.0f" x
  else if Float.abs x >= 100.0 then Printf.sprintf "%.1f" x
  else if Float.abs x >= 1.0 then Printf.sprintf "%.3f" x
  else Printf.sprintf "%.5f" x

let fmt_pct x = Printf.sprintf "%.2f%%" (100.0 *. x)

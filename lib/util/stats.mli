(** Small statistics helpers for the benchmark harness and tests. *)

(** [mean xs] is the arithmetic mean. Raises [Invalid_argument] on []. *)
val mean : float list -> float

(** [stddev xs] is the population standard deviation. *)
val stddev : float list -> float

(** [median xs] is the median (average of middle two for even length). *)
val median : float list -> float

(** [percentile p xs] for [p] in [0,100], nearest-rank. *)
val percentile : float -> float list -> float

(** [minimum xs] / [maximum xs]. *)
val minimum : float list -> float

val maximum : float list -> float

(** [log_log_slope pts] fits a least-squares line to
    [(log x, log y)] pairs and returns the slope — the empirical
    scaling exponent of [y ~ x^slope]. Points with non-positive
    coordinates are dropped. *)
val log_log_slope : (float * float) list -> float

(** [linear_fit pts] is [(slope, intercept)] of the least-squares line. *)
val linear_fit : (float * float) list -> float * float

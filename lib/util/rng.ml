type t = Random.State.t

(* splitmix64 finalizer: decorrelates nearby seeds before feeding
   Random.State, so that [split t i] and [split t (i+1)] behave as
   independent streams. *)
let mix64 z =
  let z = Int64.add z 0x9e3779b97f4a7c15L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xbf58476d1ce4e5b9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94d049bb133111ebL in
  Int64.logxor z (Int64.shift_right_logical z 31)

let state_of_int64 z =
  let a = Int64.to_int (Int64.logand z 0x3fffffffL) in
  let b = Int64.to_int (Int64.logand (Int64.shift_right_logical z 30) 0x3fffffffL) in
  Random.State.make [| a; b |]

let create seed = state_of_int64 (mix64 (Int64.of_int seed))

let split t i =
  let hi = Random.State.bits t land 0 in
  (* deterministic in the seed only: derive from a fresh draw would make
     order-of-split matter; instead hash the stream position proxy. *)
  ignore hi;
  let x = Random.State.int64 t Int64.max_int in
  state_of_int64 (mix64 (Int64.add x (Int64.of_int ((i * 2654435761) lxor 0x5851f42d))))

let int t bound =
  if bound <= 0 then invalid_arg "Rng.int: bound must be positive";
  Random.State.int t bound

let float t bound = Random.State.float t bound
let bool t = Random.State.bool t
let bernoulli t p = Random.State.float t 1.0 < p

let exponential t ~rate =
  if rate <= 0.0 then invalid_arg "Rng.exponential: rate must be positive";
  let u = 1.0 -. Random.State.float t 1.0 in
  -.log u /. rate

let geometric t p =
  if p <= 0.0 || p > 1.0 then invalid_arg "Rng.geometric: p must be in (0,1]";
  if p = 1.0 then 0
  else
    let u = 1.0 -. Random.State.float t 1.0 in
    int_of_float (Float.floor (log u /. log (1.0 -. p)))

let shuffle t a =
  for i = Array.length a - 1 downto 1 do
    let j = Random.State.int t (i + 1) in
    let tmp = a.(i) in
    a.(i) <- a.(j);
    a.(j) <- tmp
  done

let choose t a =
  if Array.length a = 0 then invalid_arg "Rng.choose: empty array";
  a.(Random.State.int t (Array.length a))

let weighted_index t w =
  let total = Array.fold_left ( +. ) 0.0 w in
  if total <= 0.0 then invalid_arg "Rng.weighted_index: weights must have positive sum";
  let x = Random.State.float t total in
  let n = Array.length w in
  let rec go i acc =
    if i = n - 1 then i
    else
      let acc = acc +. w.(i) in
      if x < acc then i else go (i + 1) acc
  in
  go 0 0.0

let sample_without_replacement t ~n ~k =
  if k < 0 || k > n then invalid_arg "Rng.sample_without_replacement";
  (* Floyd's algorithm: O(k) expected, no O(n) scratch for small k. *)
  let seen = Hashtbl.create (2 * k) in
  let out = Array.make k 0 in
  let idx = ref 0 in
  for j = n - k to n - 1 do
    let r = Random.State.int t (j + 1) in
    let v = if Hashtbl.mem seen r then j else r in
    Hashtbl.replace seen v ();
    out.(!idx) <- v;
    incr idx
  done;
  out

(** Typed precondition and invariant failures.

    The model-conformance lint (rule D003, see [tools/lint]) forbids
    [failwith], [invalid_arg] and [assert false] inside the strict
    algorithm libraries ([lib/congest], [lib/routing], [lib/expander]):
    an untyped [Failure]/[Invalid_argument] cannot be matched precisely
    by callers, so retry wrappers and test harnesses end up matching on
    message strings. Precondition failures in those libraries raise
    {!Violation} instead — a structured exception in the style of
    [Network.Round_limit_exceeded] that carries {e where} (the
    violated function) and {e what} (the broken precondition) as
    separate fields. *)

exception Violation of { where : string; what : string }

(** [fail ~where what] raises {!Violation}. [where] names the function
    whose precondition broke (e.g. ["Hierarchy.build"]), [what] states
    the precondition (e.g. ["k >= 1"]). *)
val fail : where:string -> string -> 'a

(** [failf ~where fmt ...] is {!fail} with a format string. *)
val failf : where:string -> ('a, unit, string, 'b) format4 -> 'a

(** [require cond ~where what] raises {!Violation} when [cond] is
    false. *)
val require : bool -> where:string -> string -> unit

(** [words ~budget ~where msg] certifies that the message [msg] fits in
    [budget] machine words, returning it unchanged; raises {!Violation}
    otherwise. This is the runtime length guard the typed-AST lint
    (rule C002, see [tools/lint]) recognizes: a message whose length is
    not statically decidable must flow through [words] before it is
    handed to the CONGEST kernel. *)
val words : budget:int -> where:string -> int array -> int array

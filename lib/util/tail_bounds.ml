let check_delta delta =
  if delta <= 0.0 || delta > 1.0 then invalid_arg "Tail_bounds: delta in (0, 1]"

let chernoff_upper ~mu ~delta =
  check_delta delta;
  if mu < 0.0 then invalid_arg "Tail_bounds: mu >= 0";
  Float.min 1.0 (exp (-.(delta *. delta *. mu) /. 3.0))

let chernoff_lower ~mu ~delta =
  check_delta delta;
  if mu < 0.0 then invalid_arg "Tail_bounds: mu >= 0";
  Float.min 1.0 (exp (-.(delta *. delta *. mu) /. 2.0))

let bounded_dependence_upper ~mu ~delta ~d =
  check_delta delta;
  if d < 1.0 then invalid_arg "Tail_bounds: d >= 1";
  Float.min 1.0 (d *. exp (-.(delta *. delta *. mu) /. (3.0 *. d)))

let ldd_failure_probability ~m ~beta ~k_ln =
  if m < 1 then invalid_arg "Tail_bounds: m >= 1";
  if beta <= 0.0 || beta >= 1.0 then invalid_arg "Tail_bounds: beta in (0,1)";
  if k_ln <= 0.0 then invalid_arg "Tail_bounds: k_ln > 0";
  (* Lemma 13: μ = 2βm, δ = 1/2, dependence d = βm/(K ln n) *)
  let mu = 2.0 *. beta *. float_of_int m in
  let d = Float.max 1.0 (beta *. float_of_int m /. k_ln) in
  bounded_dependence_upper ~mu ~delta:0.5 ~d

exception Violation of { where : string; what : string }

let () =
  Printexc.register_printer (function
    | Violation { where; what } ->
      Some (Printf.sprintf "Dex_util.Invariant.Violation(%s: %s)" where what)
    | _ -> None)

let fail ~where what = raise (Violation { where; what })
let failf ~where fmt = Printf.ksprintf (fail ~where) fmt
let require cond ~where what = if not cond then fail ~where what

let words ~budget ~where msg =
  if Array.length msg > budget then
    failf ~where "message of %d words exceeds the %d-word budget" (Array.length msg) budget;
  msg

type t = { parent : int array; rank : int array; size : int array; mutable sets : int }

let create n =
  { parent = Array.init n (fun i -> i);
    rank = Array.make n 0;
    size = Array.make n 1;
    sets = n }

let rec find t x =
  let p = t.parent.(x) in
  if p = x then x
  else begin
    let root = find t p in
    t.parent.(x) <- root;
    root
  end

let union t x y =
  let rx = find t x and ry = find t y in
  if rx = ry then false
  else begin
    let rx, ry = if t.rank.(rx) < t.rank.(ry) then (ry, rx) else (rx, ry) in
    t.parent.(ry) <- rx;
    t.size.(rx) <- t.size.(rx) + t.size.(ry);
    if t.rank.(rx) = t.rank.(ry) then t.rank.(rx) <- t.rank.(rx) + 1;
    t.sets <- t.sets - 1;
    true
  end

let same t x y = find t x = find t y
let count t = t.sets
let size t x = t.size.(find t x)

let groups t =
  let n = Array.length t.parent in
  let tbl = Hashtbl.create 16 in
  for v = n - 1 downto 0 do
    let r = find t v in
    let members = try Hashtbl.find tbl r with Not_found -> [] in
    Hashtbl.replace tbl r (v :: members)
  done;
  Table.fold_sorted (fun _ members acc -> Array.of_list members :: acc) tbl []

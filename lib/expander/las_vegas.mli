(** Las Vegas retry wrapper around the Theorem-1 decomposition.

    {!Decomposition.run} is Monte Carlo: its (ε, φ) guarantees hold
    w.h.p. over the algorithm's randomness, and a bad run returns a
    decomposition that silently misses them. Wrapping each attempt
    with the {!Verify.check} self-certification and re-running with
    fresh randomness on failure turns it into a verified-output
    algorithm: an [Ok] outcome {e provably} satisfies the partition,
    ε and φ conditions of its own report, and the only remaining
    randomness is in the running time (the summed rounds across
    attempts, charged honestly in [total_rounds]).

    Failure is reported as typed data, never as [failwith]: after the
    attempt budget is exhausted the caller receives the last result
    and its report to inspect or salvage. *)

(** Attempt budget exhausted: the last attempt and why it failed. *)
type failure = {
  attempts : int; (** attempts performed (= the budget) *)
  last_result : Decomposition.result;
  last_report : Verify.report;
  total_rounds : int; (** simulated rounds summed over every attempt *)
}

(** A certified decomposition. *)
type outcome = {
  result : Decomposition.result;
  report : Verify.report; (** the certificate: [report_ok report] holds *)
  attempts : int; (** attempts used, including the successful one *)
  total_rounds : int; (** simulated rounds summed over every attempt *)
}

(** [report_ok r] is the acceptance predicate: [r] certifies a
    partition within the ε budget whose parts all meet the φ target. *)
val report_ok : Verify.report -> bool

(** [decompose ?preset ?ledger ?attempts ~epsilon ~k g rng] runs
    {!Decomposition.run} up to [attempts] times (default 5), each with
    an independent stream split off [rng], verifying each result with
    {!Verify.check}. With a [ledger], the whole run sits in a
    ["las-vegas"] span, each attempt in an ["attempt-<i>"] span, and
    (when a trace is attached) each verification verdict is emitted as
    a retry event labeled ["decompose"]. Raises [Dex_util.Invariant.Violation]
    when [attempts < 1]. *)
val decompose :
  ?preset:Dex_sparsecut.Params.preset ->
  ?ledger:Dex_congest.Rounds.t ->
  ?attempts:int ->
  epsilon:float ->
  k:int ->
  Dex_graph.Graph.t ->
  Dex_util.Rng.t ->
  (outcome, failure) result

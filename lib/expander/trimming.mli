(** Saranurak–Wang-style expander trimming (SODA 2019), the technique
    the paper discusses in Section 1.1 and deliberately does {e not}
    use ("their trimming step seems to be inherently sequential and
    very challenging to parallelize or make distributed").

    This module implements the sequential degree-based core of
    trimming so the comparison is concrete: given a vertex set A whose
    induced subgraph was a φ-expander before some incident edges were
    removed, repeatedly discard vertices that retain less than half of
    their original degree inside A. SW prove the surviving core A' is
    still a Θ(φ)-expander and only O(cut/φ) volume is pruned; the
    discard loop is a sequential cascade — each removal can trigger
    the next — which is exactly the distributed-unfriendliness the
    paper points at.

    Used by tests and by downstream users who run the decomposition
    and then want to repair a part after deleting edges, without
    re-running Partition. *)

type t = {
  core : int array; (** surviving vertices, sorted *)
  pruned : int array; (** discarded vertices, in removal order *)
  pruned_volume : int; (** volume (original degrees) discarded *)
  cascade_length : int; (** longest dependency chain of removals —
                            a lower bound on the rounds a naive
                            distributed version would need *)
}

(** [trim g members] trims [G\[members\]] against the full-graph
    degrees: a vertex survives while 2·deg_A(v) ≥ deg_G(v). *)
val trim : Dex_graph.Graph.t -> int array -> t

(** [trim_after_removal g members ~removed] first deletes the given
    edges, then trims — the repair workflow. *)
val trim_after_removal :
  Dex_graph.Graph.t -> int array -> removed:(int * int) list -> t

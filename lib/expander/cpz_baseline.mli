(** The Chang–Pettie–Zhang SODA'19 style decomposition the paper
    improves on: it may dump part of the graph into an extra
    low-arboricity leftover.

    The CPZ algorithm keeps the minimum degree above n^δ by repeatedly
    peeling low-degree vertices into the leftover set R (whose induced
    subgraph then has degeneracy — hence arboricity — at most n^δ),
    and alternates the peeling with sparse-cut recursion on the dense
    remainder. Any φ-sparse cut of a min-degree-n^δ simple graph has
    Ω(n^δ) vertices, which caps the recursion depth at O(n^{1-δ}).

    This module reproduces that structure (with the same Partition
    primitive for cut finding) so benches can compare: fraction of
    edges stranded in the leftover, measured arboricity of the
    leftover, rounds, and the quality of the expander parts. *)

(** Raised when the cut/peel worklist exceeds the [4·n] component
    budget — the degree-threshold argument bounding the recursion has
    been violated (numerical pathology), with the guard counter and
    the still-pending component count as context. *)
exception
  Runaway_recursion of {
    n : int;
    guard : int;
    pending_components : int;
  }

type result = {
  parts : int array list; (** expander components of the dense remainder *)
  leftover : int array; (** the extra part R *)
  leftover_arboricity : int; (** degeneracy of G\[R\] (arboricity ≤ this) *)
  leftover_edge_fraction : float; (** \|E(R)\| / \|E\| *)
  removed_edge_fraction : float; (** inter-part removed edges / \|E\| *)
  rounds : int;
  delta : float;
}

(** [run ?preset ~delta ~epsilon g rng] runs the baseline with degree
    threshold n^delta and the same ε-driven cut acceptance as the
    main decomposition. *)
val run :
  ?preset:Dex_sparsecut.Params.preset ->
  delta:float -> epsilon:float ->
  Dex_graph.Graph.t -> Dex_util.Rng.t -> result

module Graph = Dex_graph.Graph
module Vertex = Dex_graph.Vertex
module Metrics = Dex_graph.Metrics
module Params = Dex_sparsecut.Params
module Partition = Dex_sparsecut.Partition
module Rounds = Dex_congest.Rounds
module Ldd = Dex_ldd.Ldd
module Rng = Dex_util.Rng

type removal_ledger = { remove1 : int; remove2 : int; remove3 : int }

type stats = {
  removals : removal_ledger;
  rounds : int;
  messages : int;
  words : int;
  phase1_depth : int;
  phase2_components : int;
  phase2_max_iterations : int;
  partition_calls : int;
  discarded_cuts : int;
}

type result = {
  parts : int array list;
  part_of : int array;
  removed_edges : (int * int) list;
  edge_fraction_removed : float;
  phi_target : float;
  schedule : Schedule.t;
  stats : stats;
}

(* mutable driver state shared by both phases *)
type driver = {
  mutable current : Graph.t; (* remaining graph; removed edges became self-loops *)
  schedule : Schedule.t;
  preset : Params.preset;
  rng : Rng.t;
  ledger : Rounds.t option; (* observability ledger, when the caller passed one *)
  mutable remove1 : int;
  mutable remove2 : int;
  mutable remove3 : int;
  mutable removed : (int * int) list;
  mutable rounds : int;
  mutable messages : int;
  mutable words : int;
  mutable partition_calls : int;
  mutable discarded : int;
  mutable phase2_components : int;
  mutable phase2_max_iterations : int;
}

(* runs [f] in a named ledger span when observability is on *)
let in_span d name f =
  match d.ledger with Some l -> Rounds.with_span l name f | None -> f ()

let remove_edges_tracked d kind edges =
  let plain = List.filter (fun (u, v) -> u <> v) edges in
  let count = List.length plain in
  if count > 0 then begin
    d.current <- Graph.remove_edges d.current plain;
    d.removed <- List.rev_append plain d.removed;
    match kind with
    | `Remove1 -> d.remove1 <- d.remove1 + count
    | `Remove2 -> d.remove2 <- d.remove2 + count
    | `Remove3 -> d.remove3 <- d.remove3 + count
  end

(* run Partition on G{U} of the current graph; returns the cut in
   original vertex ids together with its measured conductance inside
   G{U}, applying the h(φ) acceptance filter *)
let sparse_cut_on d ~phi members =
  let gu, mapping = Graph.saturated_subgraph d.current members in
  let m = max 1 (Graph.num_edges gu) in
  let params = Schedule.params_for ~preset:d.preset ~phi ~m () in
  let res = Partition.run ?ledger:d.ledger params gu d.rng in
  d.partition_calls <- d.partition_calls + 1;
  let cut = res.Partition.cut in
  let rounds = res.Partition.rounds in
  if Array.length cut = 0 then (`Empty, rounds)
  else begin
    let bound = Schedule.h_of ~preset:d.preset ~n:d.schedule.Schedule.n phi in
    if res.Partition.conductance > bound then begin
      d.discarded <- d.discarded + 1;
      (`Empty, rounds)
    end
    else begin
      let original = Vertex.Map.translate (Vertex.Map.of_array mapping) cut in
      Array.sort compare original;
      (* conductance is min-side normalized, so the returned set may be
         the large side of the cut; the removal/recursion logic always
         wants the smaller-volume side *)
      let vol_cut = Graph.volume gu cut in
      let original =
        if 2 * vol_cut > Graph.total_volume gu then begin
          let mask = Hashtbl.create (2 * Array.length original) in
          Array.iter (fun v -> Hashtbl.replace mask v ()) original;
          Array.of_list
            (List.filter (fun v -> not (Hashtbl.mem mask v)) (Array.to_list members))
        end
        else original
      in
      (`Cut (original, res.Partition.conductance), rounds)
    end
  end

let volume_of d members = Graph.volume d.current members
(* degrees never change (removals add self-loops), so this equals the
   original-graph volume of [members] *)

(* monomorphic normalized-edge comparator: these sorts run once per
   carved cluster on edge lists proportional to cut volume, so the
   polymorphic-compare dispatch overhead is measurable *)
let compare_edge (a1, b1) (a2, b2) =
  match Int.compare a1 a2 with 0 -> Int.compare b1 b2 | c -> c

let cut_edges_between d inside =
  let mask = Hashtbl.create (2 * Array.length inside) in
  Array.iter (fun v -> Hashtbl.replace mask v ()) inside;
  let acc = ref [] in
  Array.iter
    (fun v ->
      Graph.iter_neighbors d.current v (fun u ->
          if not (Hashtbl.mem mask u) then acc := (min u v, max u v) :: !acc))
    inside;
  List.sort_uniq compare_edge !acc

(* every non-loop edge with at least one endpoint inside — Remove-3
   isolates the carved set completely *)
let incident_edges d inside =
  let mask = Hashtbl.create (2 * Array.length inside) in
  Array.iter (fun v -> Hashtbl.replace mask v ()) inside;
  let acc = ref [] in
  Array.iter
    (fun v -> Graph.iter_neighbors d.current v (fun u -> acc := (min u v, max u v) :: !acc))
    inside;
  List.sort_uniq compare_edge !acc

let set_difference universe subset =
  let mask = Hashtbl.create (2 * Array.length subset) in
  Array.iter (fun v -> Hashtbl.replace mask v ()) subset;
  Array.of_list (List.filter (fun v -> not (Hashtbl.mem mask v)) (Array.to_list universe))

(* ---- Phase 2 (one component): returns (rounds, iterations) ---- *)
let phase2 d members =
  let sched = d.schedule in
  let eps = sched.Schedule.epsilon in
  let k = sched.Schedule.k in
  let vol_u = float_of_int (volume_of d members) in
  let m1 = eps /. 6.0 *. vol_u in
  let tau = Float.max 1.0000001 (m1 ** (1.0 /. float_of_int k)) in
  let m_level l = m1 /. (tau ** float_of_int (l - 1)) in
  let level = ref 1 in
  let remaining = ref (Array.copy members) in
  let rounds = ref 0 in
  let iterations = ref 0 in
  let finished = ref false in
  (* the paper bounds the per-level iteration count by 2τ; the cap
     below is a numerical backstop for the practical preset *)
  let iteration_cap = 64 + (4 * k) in
  while (not !finished) && Array.length !remaining > 0 && !iterations < iteration_cap do
    incr iterations;
    let phi = sched.Schedule.phi.(min k !level) in
    let verdict, cost = sparse_cut_on d ~phi !remaining in
    rounds := !rounds + cost;
    (match verdict with
    | `Empty -> finished := true
    | `Cut (cut, _cond) ->
      let vol_c = float_of_int (volume_of d cut) in
      if vol_c <= m_level !level /. (2.0 *. tau) && !level < k then incr level
      else begin
        (* Remove-3: carve the cut out entirely; its vertices become
           singleton parts of the final decomposition *)
        remove_edges_tracked d `Remove3 (incident_edges d cut);
        remaining := set_difference !remaining cut
      end)
  done;
  (!rounds, !iterations)

(* ---- Phase 1 (level-synchronous recursion) ---- *)
let run ?(preset = Params.Practical) ?ledger ~epsilon ~k g rng =
  let schedule = Schedule.make ~preset ~epsilon ~k g in
  let d =
    { current = g;
      schedule;
      preset;
      rng;
      ledger;
      remove1 = 0;
      remove2 = 0;
      remove3 = 0;
      removed = [];
      rounds = 0;
      messages = 0;
      words = 0;
      partition_calls = 0;
      discarded = 0;
      phase2_components = 0;
      phase2_max_iterations = 0 }
  in
  let phase2_queue = ref [] in
  let depth_reached = ref 0 in
  (* initial active set: connected components of the input *)
  let active = ref (Metrics.connected_components g) in
  let depth = ref 0 in
  in_span d "decompose" (fun () ->
      in_span d "phase1" (fun () ->
          while !active <> [] && !depth < schedule.Schedule.d do
            incr depth;
            depth_reached := !depth;
            let next = ref [] in
            let level_cost = ref 0 in
            in_span d (Printf.sprintf "level-%d" !depth) (fun () ->
                List.iter
                  (fun members ->
                    if Array.length members > 1 then begin
                      (* Step 1: low-diameter decomposition of G{U}; Remove-1 *)
                      let gu, mapping = Graph.saturated_subgraph d.current members in
                      let mapping = Vertex.Map.of_array mapping in
                      let ldd =
                        Ldd.run_graph ?ledger:d.ledger ~vertex_map:mapping gu
                          ~beta:schedule.Schedule.beta d.rng
                      in
                      d.messages <- d.messages + ldd.Ldd.messages;
                      d.words <- d.words + ldd.Ldd.words;
                      let ldd_cut =
                        List.map (Vertex.Map.translate_edge mapping) ldd.Ldd.cut_edges
                      in
                      remove_edges_tracked d `Remove1 ldd_cut;
                      let clusters =
                        List.map (Vertex.Map.translate mapping) ldd.Ldd.parts
                      in
                      (* Step 2: sparse cut per cluster; clusters run concurrently *)
                      let cluster_cost = ref 0 in
                      List.iter
                        (fun cluster ->
                          if Array.length cluster > 1 then begin
                            let verdict, cost =
                              sparse_cut_on d ~phi:schedule.Schedule.phi.(0) cluster
                            in
                            cluster_cost := max !cluster_cost cost;
                            match verdict with
                            | `Empty -> () (* finished component *)
                            | `Cut (cut, _) ->
                              let vol_c = volume_of d cut in
                              let vol_u = volume_of d cluster in
                              if
                                float_of_int (12 * vol_c)
                                <= epsilon *. float_of_int vol_u
                              then begin
                                (* Step 2b: small cut — enter Phase 2, keep edges *)
                                phase2_queue := cluster :: !phase2_queue
                              end
                              else begin
                                (* Step 2c: remove the cut and recurse on both sides *)
                                remove_edges_tracked d `Remove2 (cut_edges_between d cut);
                                let rest = set_difference cluster cut in
                                next := cut :: rest :: !next
                              end
                          end)
                        clusters;
                      level_cost := max !level_cost (ldd.Ldd.rounds + !cluster_cost)
                    end)
                  !active);
            d.rounds <- d.rounds + !level_cost;
            active := !next
          done);
      (* Phase 2: all queued components run concurrently *)
      in_span d "phase2" (fun () ->
          let phase2_cost = ref 0 in
          List.iter
            (fun members ->
              d.phase2_components <- d.phase2_components + 1;
              let cost, iters =
                in_span d
                  (Printf.sprintf "component-%d" d.phase2_components)
                  (fun () -> phase2 d members)
              in
              if iters > d.phase2_max_iterations then d.phase2_max_iterations <- iters;
              if cost > !phase2_cost then phase2_cost := cost)
            !phase2_queue;
          d.rounds <- d.rounds + !phase2_cost));
  (* final parts = connected components of the remaining graph *)
  let parts = Metrics.connected_components d.current in
  let part_of = Array.make (Graph.num_vertices g) (-1) in
  List.iteri (fun i part -> Array.iter (fun v -> part_of.(v) <- i) part) parts;
  let m = max 1 (Graph.num_edges g) in
  let removed_count = d.remove1 + d.remove2 + d.remove3 in
  { parts;
    part_of;
    removed_edges = d.removed;
    edge_fraction_removed = float_of_int removed_count /. float_of_int m;
    phi_target = Schedule.phi_final schedule;
    schedule;
    stats =
      { removals = { remove1 = d.remove1; remove2 = d.remove2; remove3 = d.remove3 };
        rounds = d.rounds;
        messages = d.messages;
        words = d.words;
        phase1_depth = !depth_reached;
        phase2_components = d.phase2_components;
        phase2_max_iterations = d.phase2_max_iterations;
        partition_calls = d.partition_calls;
        discarded_cuts = d.discarded } }

let part_members result v =
  match List.nth_opt result.parts result.part_of.(v) with
  | Some part -> part
  | None -> Dex_util.Invariant.fail ~where:"Decomposition.part_members" "vertex out of range"

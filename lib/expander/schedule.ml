module Graph = Dex_graph.Graph
module Params = Dex_sparsecut.Params

type t = {
  epsilon : float;
  k : int;
  n : int;
  m : int;
  phi : float array;
  d : int;
  beta : float;
}

let phi_floor = 2e-3
(* practical lower cutoff: below this the walk length t₀ ~ 1/φ²
   exceeds what the simulation can step through *)

(* practical contraction: h(θ) = 3θ, so a Partition run at parameter θ
   is accepted only when the measured cut conductance is ≤ 3θ; the
   theory ladder uses the paper's h(θ) = θ^{1/3}·log^{5/3} n *)
let practical_h theta = 3.0 *. theta

let make ?(preset = Params.Practical) ~epsilon ~k g =
  Dex_util.Invariant.require
    (epsilon > 0.0 && epsilon < 1.0)
    ~where:"Schedule.make" "epsilon in (0,1)";
  Dex_util.Invariant.require (k >= 1) ~where:"Schedule.make" "k >= 1";
  let n = Graph.num_vertices g in
  let m = max 1 (Graph.num_edges g) in
  let ln_n = log (Float.max 2.0 (float_of_int n)) in
  let phi = Array.make (k + 1) 0.0 in
  (match preset with
  | Params.Theory ->
    let target0 = epsilon /. (6.0 *. (2.0 *. ln_n)) in
    phi.(0) <- Params.h_inverse ~n target0;
    for i = 1 to k do
      phi.(i) <- Params.h_inverse ~n phi.(i - 1)
    done
  | Params.Practical ->
    (* φ₀ = ε/8 (capped at 1/24): the acceptance bound is then
       h(φ₀) = 3ε/8 and the removed-edge fraction is verified by
       measurement rather than the worst-case Remove-2 charging *)
    ignore ln_n;
    phi.(0) <- Float.max phi_floor (Float.min (1.0 /. 24.0) (epsilon /. 8.0));
    for i = 1 to k do
      phi.(i) <- Float.max phi_floor (phi.(i - 1) /. 3.0)
    done);
  let d =
    (* smallest d with (1 - ε/12)^d · 2·C(n,2) < 1 *)
    let shrink = -.log (1.0 -. (epsilon /. 12.0)) in
    let pairs = Float.max 1.0 (float_of_int n *. float_of_int (max 1 (n - 1))) in
    max 1 (int_of_float (Float.ceil (log pairs /. shrink)))
  in
  let beta = epsilon /. 3.0 /. float_of_int d in
  { epsilon; k; n; m; phi; d; beta }

let phi_final t = t.phi.(t.k)

let h_of ~preset ~n theta =
  match preset with
  | Params.Theory -> Params.h ~n theta
  | Params.Practical -> practical_h theta

let params_for ?(preset = Params.Practical) ~phi ~m () =
  (* clamp into the Lemma 5 precondition range *)
  let phi = Float.min (1.0 /. 12.0) (Float.max 1e-9 phi) in
  Params.make ~preset ~phi ~m ()

module Graph = Dex_graph.Graph

type t = {
  core : int array;
  pruned : int array;
  pruned_volume : int;
  cascade_length : int;
}

let trim g members =
  let n = Graph.num_vertices g in
  let in_set = Array.make n false in
  Array.iter
    (fun v ->
      if v < 0 || v >= n then
        Dex_util.Invariant.fail ~where:"Trimming.trim" "vertex out of range";
      in_set.(v) <- true)
    members;
  (* within-set plain degree, maintained incrementally *)
  let inner = Array.make n 0 in
  Array.iter
    (fun v -> Graph.iter_neighbors g v (fun u -> if in_set.(u) then inner.(v) <- inner.(v) + 1))
    members;
  let violates v = 2 * inner.(v) < Graph.degree g v in
  (* BFS-like cascade: the wave number of each removal measures the
     sequential dependency depth *)
  let queue = Queue.create () in
  Array.iter (fun v -> if violates v then Queue.add (v, 1) queue) members;
  let removed_order = ref [] in
  let pruned_volume = ref 0 in
  let cascade = ref 0 in
  let gone = Array.make n false in
  while not (Queue.is_empty queue) do
    let v, wave = Queue.take queue in
    if in_set.(v) && not gone.(v) then begin
      gone.(v) <- true;
      in_set.(v) <- false;
      removed_order := v :: !removed_order;
      pruned_volume := !pruned_volume + Graph.degree g v;
      if wave > !cascade then cascade := wave;
      Graph.iter_neighbors g v (fun u ->
          if in_set.(u) then begin
            inner.(u) <- inner.(u) - 1;
            if violates u then Queue.add (u, wave + 1) queue
          end)
    end
  done;
  let core = Array.of_list (List.filter (fun v -> in_set.(v)) (Array.to_list members)) in
  Array.sort compare core;
  { core;
    pruned = Array.of_list (List.rev !removed_order);
    pruned_volume = !pruned_volume;
    cascade_length = !cascade }

let trim_after_removal g members ~removed =
  let g' = Graph.remove_edges g removed in
  (* degrees in g' include the compensating self-loops, so deg_G' = deg_G;
     the within-set degree drops where edges were deleted *)
  trim g' members

module Graph = Dex_graph.Graph
module Metrics = Dex_graph.Metrics
module Exact = Dex_spectral.Exact
module Mixing = Dex_spectral.Mixing

type part_report = {
  size : int;
  volume : int;
  conductance_lower : float;
  method_ : string;
}

type report = {
  is_partition : bool;
  edge_fraction_removed : float;
  epsilon_ok : bool;
  parts : part_report list;
  min_conductance_lower : float;
  phi_ok : bool;
}

let part_report g rng part =
  let size = Array.length part in
  let volume = Graph.volume g part in
  if size <= 1 then { size; volume; conductance_lower = Float.infinity; method_ = "singleton" }
  else begin
    let sub, _ = Graph.saturated_subgraph g part in
    if size <= 16 then begin
      let phi, _ = Exact.min_conductance sub in
      { size; volume; conductance_lower = phi; method_ = "exact" }
    end
    else begin
      (* Cheeger: for the lazy-walk gap g_l = (1 - λ₂(M)), the
         normalized Laplacian gap is 2·g_l and Φ ≥ g_l *)
      let gap, _ = Mixing.spectral_gap ~iters:120 sub rng in
      { size; volume; conductance_lower = gap; method_ = "spectral" }
    end
  end

let check g (result : Decomposition.result) rng =
  let is_partition =
    try
      Metrics.check_partition g result.Decomposition.parts;
      true
    with Invalid_argument _ -> false
  in
  let parts = List.map (part_report g rng) result.Decomposition.parts in
  let min_conductance_lower =
    List.fold_left
      (fun acc p -> if p.method_ = "singleton" then acc else Float.min acc p.conductance_lower)
      Float.infinity parts
  in
  let eps = result.Decomposition.schedule.Schedule.epsilon in
  { is_partition;
    edge_fraction_removed = result.Decomposition.edge_fraction_removed;
    epsilon_ok = result.Decomposition.edge_fraction_removed <= eps +. 1e-9;
    parts;
    min_conductance_lower;
    phi_ok = min_conductance_lower >= result.Decomposition.phi_target }

(** Verification of an (ε, φ)-expander decomposition result.

    For each part we measure a conductance figure: exact minimum
    conductance of G{Vi} for tiny parts (≤ 16 vertices), otherwise the
    Cheeger-style lower bound from the lazy spectral gap plus a
    Partition re-certification. The report lets tests and benches
    assert the two Theorem-1 conditions on concrete runs. *)

type part_report = {
  size : int;
  volume : int;
  conductance_lower : float;
  (** certified lower bound on Φ(G{Vi}): exact for tiny parts,
      spectral (gap of the lazy walk) for larger ones; singletons get
      +inf *)
  method_ : string; (** "exact" | "spectral" | "singleton" *)
}

type report = {
  is_partition : bool;
  edge_fraction_removed : float;
  epsilon_ok : bool; (** measured fraction ≤ ε *)
  parts : part_report list;
  min_conductance_lower : float; (** over non-singleton parts; +inf if none *)
  phi_ok : bool; (** min_conductance_lower ≥ φ_target *)
}

(** [check g result] verifies [result] against its own schedule. *)
val check : Dex_graph.Graph.t -> Decomposition.result -> Dex_util.Rng.t -> report

module Graph = Dex_graph.Graph
module Metrics = Dex_graph.Metrics
module Baselines = Dex_sparsecut.Baselines

type t = {
  parts : int array list;
  edge_fraction_removed : float;
  recursion_depth : int;
  cut_calls : int;
}

let run ~phi g rng =
  Dex_util.Invariant.require (phi > 0.0) ~where:"Recursive_baseline.run" "phi > 0";
  let m = max 1 (Graph.num_edges g) in
  let removed = ref 0 in
  let cut_calls = ref 0 in
  let parts = ref [] in
  let max_depth = ref 0 in
  (* worklist of (component, depth); components processed level-free
     but depth tracked per branch *)
  let work = Queue.create () in
  List.iter
    (fun comp -> Queue.add (comp, 1) work)
    (Metrics.connected_components g);
  while not (Queue.is_empty work) do
    let members, depth = Queue.take work in
    if depth > !max_depth then max_depth := depth;
    if Array.length members <= 1 then parts := members :: !parts
    else begin
      let sub, mapping = Graph.saturated_subgraph g members in
      incr cut_calls;
      match Baselines.spectral sub rng with
      | Some c when c.Baselines.conductance <= phi ->
        removed :=
          !removed + Metrics.cut_size sub c.Baselines.vertices;
        let mask = Hashtbl.create (2 * Array.length c.Baselines.vertices) in
        Array.iter (fun v -> Hashtbl.replace mask v ()) c.Baselines.vertices;
        let side = Array.map (fun v -> mapping.(v)) c.Baselines.vertices in
        let rest =
          Array.of_list
            (List.filteri
               (fun i _ -> not (Hashtbl.mem mask i))
               (Array.to_list mapping))
        in
        Queue.add (side, depth + 1) work;
        Queue.add (rest, depth + 1) work
      | Some _ | None -> parts := members :: !parts
    end
  done;
  { parts = !parts;
    edge_fraction_removed = float_of_int !removed /. float_of_int m;
    recursion_depth = !max_depth;
    cut_calls = !cut_calls }

(** The "most straightforward algorithm" of Section 1.2: find a
    φ-sparse cut; if none exists the component is done; otherwise
    recurse on both sides.

    This is the strawman whose two efficiency problems motivate the
    whole paper: (1) exact sparse-cut checking is NP-hard (we
    substitute the spectral sweep, as every practical instantiation
    does), and (2) nothing bounds the balance of the cut, so the
    recursion depth — the parallel running time — can reach Ω(n).
    Bench E11 measures exactly that depth against the Theorem-1
    driver's d = O(ε⁻¹ log n) bound. *)

type t = {
  parts : int array list;
  edge_fraction_removed : float;
  recursion_depth : int; (** the parallel-time proxy *)
  cut_calls : int;
}

(** [run ~phi g rng] decomposes until every part's spectral sweep
    finds no cut of conductance ≤ phi. *)
val run : phi:float -> Dex_graph.Graph.t -> Dex_util.Rng.t -> t

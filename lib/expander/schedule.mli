(** Parameter schedule of Theorem 1 (Section 2).

    Given ε and the level count k, the decomposition runs the nearly
    most balanced sparse cut with a decreasing ladder of conductance
    parameters φ₀ > φ₁ > … > φ_k:

    - φ₀ is chosen so every non-empty sparse-cut output has
      Φ(C) ≤ h(φ₀) = ε / (6·log(n²)) — the Remove-2 charging bound;
    - φ_i = h⁻¹(φ_{i-1}) — so cuts found at level i of Phase 2 have
      conductance at most φ_{i-1};
    - d is the Phase-1 recursion depth bound: the smallest integer
      with (1-ε/12)^d·2·(n choose 2) < 1;
    - β = (ε/3)/d drives the low-diameter decomposition.

    The [Theory] ladder uses h(θ) = θ^{1/3}·log^{5/3} n exactly; its
    φ_i collapse doubly-exponentially (that is the (ε/log n)^{2^{O(k)}}
    of the theorem) and are far below what a simulation can run. The
    [Practical] ladder keeps the same structure with a gentle
    contraction h⁻¹(θ) = θ/4, so Phase 2's level mechanics are
    exercised at runnable conductances; quality is then *measured*
    rather than certified a priori (see DESIGN.md §2). *)

type t = {
  epsilon : float;
  k : int; (** Phase-2 level count *)
  n : int;
  m : int;
  phi : float array; (** φ₀ … φ_k (length k+1) *)
  d : int; (** Phase-1 recursion depth bound *)
  beta : float; (** LDD parameter *)
}

(** [make ?preset ~epsilon ~k g] derives the schedule for graph [g].
    [epsilon] in (0, 1), [k ≥ 1]. *)
val make :
  ?preset:Dex_sparsecut.Params.preset ->
  epsilon:float -> k:int -> Dex_graph.Graph.t -> t

(** [phi_final t] = φ_k, the conductance certified for the output
    components. *)
val phi_final : t -> float

(** [h_of ~preset ~n theta] is the acceptance bound h(θ) on the
    conductance of a cut returned by a Partition run with parameter
    θ: the paper's θ^{1/3}·log^{5/3}n under [Theory], 3θ under
    [Practical]. The driver discards sparser-than-claimed cuts. *)
val h_of : preset:Dex_sparsecut.Params.preset -> n:int -> float -> float

(** [params_for t ~phi ~m] builds the Nibble parameter block used at
    conductance [phi] on a subgraph with volume scale [m]. *)
val params_for :
  ?preset:Dex_sparsecut.Params.preset -> phi:float -> m:int -> unit ->
  Dex_sparsecut.Params.t

module Rng = Dex_util.Rng
module Rounds = Dex_congest.Rounds
module Trace = Dex_obs.Trace

type failure = {
  attempts : int;
  last_result : Decomposition.result;
  last_report : Verify.report;
  total_rounds : int;
}

type outcome = {
  result : Decomposition.result;
  report : Verify.report;
  attempts : int;
  total_rounds : int;
}

let report_ok (r : Verify.report) =
  r.Verify.is_partition && r.Verify.epsilon_ok && r.Verify.phi_ok

let decompose ?preset ?ledger ?(attempts = 5) ~epsilon ~k g rng =
  Dex_util.Invariant.require (attempts >= 1) ~where:"Las_vegas.decompose"
    "attempts must be >= 1";
  let in_span name f =
    match ledger with Some l -> Rounds.with_span l name f | None -> f ()
  in
  let retry certified i =
    match ledger with
    | Some l ->
      (match Rounds.trace l with
      | Some tr -> Trace.retry tr ~label:"decompose" ~attempt:i ~certified
      | None -> ())
    | None -> ()
  in
  let total_rounds = ref 0 in
  let rec go i =
    (* fresh randomness per attempt: split both the algorithm's stream
       and the verifier's, so a failed attempt never replays *)
    let attempt_rng = Rng.split rng i in
    let verify_rng = Rng.split rng (attempts + i) in
    let result =
      in_span (Printf.sprintf "attempt-%d" i) @@ fun () ->
      Decomposition.run ?preset ?ledger ~epsilon ~k g attempt_rng
    in
    total_rounds := !total_rounds + result.Decomposition.stats.Decomposition.rounds;
    let report = Verify.check g result verify_rng in
    let ok = report_ok report in
    retry ok i;
    if ok then Ok { result; report; attempts = i; total_rounds = !total_rounds }
    else if i >= attempts then
      Error
        { attempts = i;
          last_result = result;
          last_report = report;
          total_rounds = !total_rounds }
    else go (i + 1)
  in
  in_span "las-vegas" (fun () -> go 1)

module Rng = Dex_util.Rng

type failure = {
  attempts : int;
  last_result : Decomposition.result;
  last_report : Verify.report;
  total_rounds : int;
}

type outcome = {
  result : Decomposition.result;
  report : Verify.report;
  attempts : int;
  total_rounds : int;
}

let report_ok (r : Verify.report) =
  r.Verify.is_partition && r.Verify.epsilon_ok && r.Verify.phi_ok

let decompose ?preset ?(attempts = 5) ~epsilon ~k g rng =
  if attempts < 1 then invalid_arg "Las_vegas.decompose: attempts must be >= 1";
  let total_rounds = ref 0 in
  let rec go i =
    (* fresh randomness per attempt: split both the algorithm's stream
       and the verifier's, so a failed attempt never replays *)
    let attempt_rng = Rng.split rng i in
    let verify_rng = Rng.split rng (attempts + i) in
    let result = Decomposition.run ?preset ~epsilon ~k g attempt_rng in
    total_rounds := !total_rounds + result.Decomposition.stats.Decomposition.rounds;
    let report = Verify.check g result verify_rng in
    if report_ok report then
      Ok { result; report; attempts = i; total_rounds = !total_rounds }
    else if i >= attempts then
      Error
        { attempts = i;
          last_result = result;
          last_report = report;
          total_rounds = !total_rounds }
    else go (i + 1)
  in
  go 1

module Graph = Dex_graph.Graph
module Vertex = Dex_graph.Vertex
module Metrics = Dex_graph.Metrics
module Params = Dex_sparsecut.Params
module Partition = Dex_sparsecut.Partition
module Rng = Dex_util.Rng

exception
  Runaway_recursion of {
    n : int;
    guard : int;
    pending_components : int;
  }

type result = {
  parts : int array list;
  leftover : int array;
  leftover_arboricity : int;
  leftover_edge_fraction : float;
  removed_edge_fraction : float;
  rounds : int;
  delta : float;
}

(* peel vertices of (remaining) degree < threshold into the leftover;
   the classic O(n^δ)-degeneracy peeling *)
let peel g ~threshold ~alive =
  let n = Graph.num_vertices g in
  let deg = Array.make n 0 in
  for v = 0 to n - 1 do
    if alive.(v) then
      Graph.iter_neighbors g v (fun u -> if alive.(u) then deg.(v) <- deg.(v) + 1)
  done;
  let peeled = ref [] in
  let queue = Queue.create () in
  for v = 0 to n - 1 do
    if alive.(v) && deg.(v) < threshold then Queue.add v queue
  done;
  let marked = Array.make n false in
  Array.iteri (fun v a -> if not a then marked.(v) <- true) alive;
  while not (Queue.is_empty queue) do
    let v = Queue.take queue in
    if alive.(v) && not marked.(v) then begin
      marked.(v) <- true;
      peeled := v :: !peeled;
      Graph.iter_neighbors g v (fun u ->
          if alive.(u) && not marked.(u) then begin
            deg.(u) <- deg.(u) - 1;
            if deg.(u) < threshold then Queue.add u queue
          end)
    end
  done;
  List.iter (fun v -> alive.(v) <- false) !peeled;
  !peeled

let run ?(preset = Params.Practical) ~delta ~epsilon g rng =
  Dex_util.Invariant.require
    (delta > 0.0 && delta < 1.0)
    ~where:"Cpz_baseline.run" "delta in (0,1)";
  let n = Graph.num_vertices g in
  let m = max 1 (Graph.num_edges g) in
  let threshold = max 1 (int_of_float (Float.ceil (float_of_int n ** delta))) in
  let schedule = Schedule.make ~preset ~epsilon ~k:1 g in
  let phi = schedule.Schedule.phi.(0) in
  let alive = Array.make n true in
  let leftover = ref [] in
  let rounds = ref 0 in
  let removed = ref 0 in
  let parts = ref [] in
  (* worklist of components of the dense remainder *)
  let initial () =
    leftover := List.rev_append (peel g ~threshold ~alive) !leftover;
    let members = Metrics.vertices_of_mask alive in
    if Array.length members = 0 then []
    else begin
      let sub, mapping = Graph.induced_subgraph g members in
      let mapping = Vertex.Map.of_array mapping in
      Metrics.connected_components sub
      |> List.map (Vertex.Map.translate mapping)
    end
  in
  let work = Queue.create () in
  List.iter (fun c -> Queue.add c work) (initial ());
  let guard = ref 0 in
  while not (Queue.is_empty work) do
    incr guard;
    if !guard > 4 * n then
      raise (Runaway_recursion { n; guard = !guard; pending_components = Queue.length work });
    let members = Queue.take work in
    if Array.length members <= 1 then
      (if Array.length members = 1 then parts := members :: !parts)
    else begin
      (* re-peel inside the component: cutting may have dropped degrees *)
      let local_alive = Array.make n false in
      Array.iter (fun v -> local_alive.(v) <- true) members;
      let sub_peeled = peel g ~threshold:(min threshold (Array.length members)) ~alive:local_alive in
      (* peeling against original adjacency restricted to members *)
      let members =
        if sub_peeled = [] then members
        else begin
          leftover := List.rev_append sub_peeled !leftover;
          Metrics.vertices_of_mask local_alive
        end
      in
      if Array.length members <= 1 then
        (if Array.length members = 1 then parts := members :: !parts)
      else begin
        let sub, mapping = Graph.saturated_subgraph g members in
        let msub = max 1 (Graph.num_edges sub) in
        let params = Schedule.params_for ~preset ~phi ~m:msub () in
        let res = Partition.run params sub rng in
        rounds := !rounds + res.Partition.rounds;
        let bound = Schedule.h_of ~preset ~n phi in
        let cut = res.Partition.cut in
        if Array.length cut = 0 || res.Partition.conductance > bound then
          parts := members :: !parts
        else begin
          removed := !removed + Metrics.cut_size sub cut;
          let cut_orig = Vertex.Map.translate (Vertex.Map.of_array mapping) cut in
          Array.sort compare cut_orig;
          let mask = Hashtbl.create (2 * Array.length cut_orig) in
          Array.iter (fun v -> Hashtbl.replace mask v ()) cut_orig;
          let rest =
            Array.of_list (List.filter (fun v -> not (Hashtbl.mem mask v)) (Array.to_list members))
          in
          Queue.add cut_orig work;
          Queue.add rest work
        end
      end
    end
  done;
  let leftover_arr = Array.of_list !leftover in
  Array.sort compare leftover_arr;
  let leftover_edges =
    let mask = Metrics.mask_of g leftover_arr in
    let c = ref 0 in
    Graph.iter_edges g (fun u v -> if u <> v && mask.(u) && mask.(v) then incr c);
    !c
  in
  let leftover_arboricity =
    if Array.length leftover_arr = 0 then 0
    else begin
      let sub, _ = Graph.induced_subgraph g leftover_arr in
      Metrics.degeneracy sub
    end
  in
  { parts = !parts;
    leftover = leftover_arr;
    leftover_arboricity;
    leftover_edge_fraction = float_of_int leftover_edges /. float_of_int m;
    removed_edge_fraction = float_of_int !removed /. float_of_int m;
    rounds = !rounds;
    delta }

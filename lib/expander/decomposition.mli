(** The (ε, φ)-expander decomposition — Theorem 1, Section 2.

    Phase 1 recursively (depth ≤ d) applies low-diameter decomposition
    (removing inter-cluster edges: Remove-1) and the nearly most
    balanced sparse cut at parameter φ₀ to every component:
    an empty cut finishes the component; a small cut
    (Vol(C) ≤ (ε/12)·Vol(U)) sends it to Phase 2 {e without removing
    the cut edges}; otherwise the cut edges are removed (Remove-2) and
    both sides recurse.

    Phase 2 trims a component through levels L = 1..k with the
    φ_L ladder: a cut of volume ≤ m_L/(2τ) advances the level,
    a larger one is carved out entirely — every edge incident to it
    removed (Remove-3), its vertices becoming singleton parts.

    Components at the same recursion depth run concurrently in
    CONGEST, so the measured round cost of a depth is the {e maximum}
    over its components, and depths accumulate. *)

type removal_ledger = {
  remove1 : int; (** inter-cluster LDD edges *)
  remove2 : int; (** Phase-1 sparse-cut edges *)
  remove3 : int; (** Phase-2 trimmed edges *)
}

type stats = {
  removals : removal_ledger;
  rounds : int; (** simulated CONGEST rounds, parallel-depth accounted *)
  messages : int;
      (** messages delivered by the executed (message-level) protocols
          inside the decomposition — i.e. the LDD clusterings; accounted
          phases move no messages *)
  words : int; (** machine words delivered, same scope as [messages] *)
  phase1_depth : int; (** recursion depth reached *)
  phase2_components : int; (** components that entered Phase 2 *)
  phase2_max_iterations : int;
  partition_calls : int;
  discarded_cuts : int; (** cuts failing the h(φ) acceptance bound *)
}

type result = {
  parts : int array list; (** the decomposition V = V₁ ∪ … ∪ V_x *)
  part_of : int array; (** part index per vertex *)
  removed_edges : (int * int) list; (** all inter-part edges removed *)
  edge_fraction_removed : float; (** measured ε *)
  phi_target : float; (** φ_k: the certification parameter *)
  schedule : Schedule.t;
  stats : stats;
}

(** [run ?preset ?ledger ~epsilon ~k g rng] decomposes [g]. When
    [ledger] is given the run is structured into spans —
    ["decompose"] containing ["phase1"] (with one ["level-<d>"] span
    per recursion depth) and ["phase2"] (one ["component-<i>"] span
    per trimmed component) — and every executed or accounted round is
    charged there. Note the ledger then accumulates the {e sequential
    sum} of all component costs, while [stats.rounds] remains the
    parallel makespan (concurrent components counted at their max). *)
val run :
  ?preset:Dex_sparsecut.Params.preset ->
  ?ledger:Dex_congest.Rounds.t ->
  epsilon:float -> k:int ->
  Dex_graph.Graph.t -> Dex_util.Rng.t -> result

(** [parts_of_mask result v] is the part containing [v]. *)
val part_members : result -> int -> int array

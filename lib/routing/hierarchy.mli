(** The Ghaffari–Kuhn–Su hierarchical routing structure, as the
    distributed data structure of Section 3:

    - parameter k: the depth of the hierarchy; β = m^{1/k};
    - preprocessing: building the hierarchy costs
      O(kβ)·(log n)^{O(k)}·τ_mix rounds (GKS Lemma 3.2) plus portals
      O(kβ²·log n)·τ_mix (GKS Lemma 3.3);
    - each query (a routing task where every vertex sends/receives
      O(deg(v)) messages) costs (log n)^{O(k)}·τ_mix rounds
      (GKS Lemma 3.4).

    The structure here is a cost-faithful simulation: the mixing time
    τ_mix is measured on the actual component, the trade-off formulas
    are evaluated with the measured values, and queries can optionally
    be executed by the {!Token_router} to validate delivery. *)

type t = {
  k : int;
  beta : float; (** m^{1/k} *)
  tau_mix : int; (** measured mixing time of the component *)
  preprocess_rounds : int;
  query_rounds : int;
  n : int;
  m : int;
}

(** [build ?c g rng ~k] measures τ_mix of [g] and instantiates the
    trade-off at depth [k]; [c] is the polylog base constant
    (default 1.0). Raises [Dex_util.Invariant.Violation] if [k < 1] or [g] is
    empty. *)
val build : ?c:float -> Dex_graph.Graph.t -> Dex_util.Rng.t -> k:int -> t

(** [total_rounds t ~queries] = preprocessing + queries·query_rounds. *)
val total_rounds : t -> queries:int -> int

(** [best_k_for g rng ~queries ~k_max] picks the k ∈ [1, k_max]
    minimizing [total_rounds] for the given query load — the
    balancing act behind Theorem 2's "choose k a large enough
    constant". *)
val best_k_for : Dex_graph.Graph.t -> Dex_util.Rng.t -> queries:int -> k_max:int -> t

(** Executed random-walk token routing.

    A concrete, message-level routing scheme used to validate that
    routing on a φ-expander completes in O(τ_mix·polylog) simulated
    rounds: every request (src, dst) is a token performing an
    independent lazy random walk; a token parks once it reaches its
    destination. Each edge forwards at most [capacity] tokens per
    round per direction (excess tokens wait, chosen uniformly),
    which is what makes the cost congestion-sensitive like the real
    GKS routing rather than a free permutation. *)

type request = { src : int; dst : int }

(** Raised when the round budget is exhausted with tokens still in
    flight, carrying the delivery progress at the point of failure. *)
exception
  Undelivered of {
    pending : int;
    delivered : int;
    rounds : int;
    moves : int;
  }

type stats = {
  rounds : int; (** rounds until every token parked *)
  delivered : int;
  moves : int; (** total token moves (message count) *)
  max_queue : int; (** peak tokens waiting at one vertex *)
}

(** [route ?capacity ?max_rounds g rng requests] walks all tokens
    until delivery. Raises {!Undelivered} if [max_rounds] (default
    [64·n·(1+log n)]) is exhausted — disconnected src/dst pairs do
    that. *)
val route :
  ?capacity:int -> ?max_rounds:int ->
  Dex_graph.Graph.t -> Dex_util.Rng.t -> request list -> stats

(** [degree_respecting_requests g rng ~load] builds a random request
    multiset where each vertex appears as source (and roughly as
    destination) about [load·deg(v)] times — the request shape of the
    GKS routing problem. *)
val degree_respecting_requests :
  Dex_graph.Graph.t -> Dex_util.Rng.t -> load:float -> request list

module Graph = Dex_graph.Graph
module Rng = Dex_util.Rng
module Invariant = Dex_util.Invariant

type request = { src : int; dst : int }

exception
  Undelivered of {
    pending : int;
    delivered : int;
    rounds : int;
    moves : int;
  }

type stats = {
  rounds : int;
  delivered : int;
  moves : int;
  max_queue : int;
}

let route ?(capacity = 1) ?max_rounds g rng requests =
  Invariant.require (capacity >= 1) ~where:"Token_router.route" "capacity >= 1";
  let n = Graph.num_vertices g in
  let max_rounds =
    match max_rounds with
    | Some r -> r
    | None ->
      let lf = 1.0 +. log (Float.max 2.0 (float_of_int n)) in
      64 * n * int_of_float lf
  in
  (* tokens at each vertex, still travelling *)
  let queue = Array.make n [] in
  let pending = ref 0 in
  List.iter
    (fun { src; dst } ->
      if src < 0 || src >= n || dst < 0 || dst >= n then
        Invariant.fail ~where:"Token_router.route" "endpoint out of range";
      if src = dst then ()
      else begin
        queue.(src) <- dst :: queue.(src);
        incr pending
      end)
    requests;
  let delivered = List.length requests - !pending in
  let delivered = ref delivered in
  let moves = ref 0 in
  let rounds = ref 0 in
  let max_queue = ref 0 in
  Array.iter (fun q -> max_queue := max !max_queue (List.length q)) queue;
  while !pending > 0 && !rounds < max_rounds do
    incr rounds;
    (* per-round edge budgets: capacity per direction *)
    let next = Array.make n [] in
    for v = 0 to n - 1 do
      match queue.(v) with
      | [] -> ()
      | tokens ->
        let deg = Graph.plain_degree g v in
        if deg = 0 then next.(v) <- List.rev_append tokens next.(v)
        else begin
          let neighbors = Graph.neighbors g v in
          (* each incident edge may carry up to [capacity] tokens *)
          let budget = Array.make deg capacity in
          List.iter
            (fun dst ->
              (* lazy step: stay with prob 1/2, else attempt an edge *)
              if Rng.bool rng then next.(v) <- dst :: next.(v)
              else begin
                let i = Rng.int rng deg in
                if budget.(i) > 0 then begin
                  budget.(i) <- budget.(i) - 1;
                  incr moves;
                  let u = neighbors.(i) in
                  if u = dst then begin
                    incr delivered;
                    decr pending
                  end
                  else next.(u) <- dst :: next.(u)
                end
                else next.(v) <- dst :: next.(v)
              end)
            tokens
        end
    done;
    Array.blit next 0 queue 0 n;
    Array.iter (fun q -> max_queue := max !max_queue (List.length q)) queue
  done;
  if !pending > 0 then
    raise
      (Undelivered
         { pending = !pending; delivered = !delivered; rounds = !rounds; moves = !moves });
  { rounds = !rounds; delivered = !delivered; moves = !moves; max_queue = !max_queue }

let degree_respecting_requests g rng ~load =
  Invariant.require (load > 0.0) ~where:"Token_router.degree_respecting_requests" "load > 0";
  let n = Graph.num_vertices g in
  let degrees = Array.init n (fun v -> float_of_int (Graph.degree g v)) in
  let total = Array.fold_left ( +. ) 0.0 degrees in
  if total <= 0.0 then []
  else begin
    let requests = ref [] in
    for v = 0 to n - 1 do
      let count = int_of_float (Float.round (load *. degrees.(v))) in
      for _ = 1 to count do
        let dst = Rng.weighted_index rng degrees in
        requests := { src = v; dst } :: !requests
      done
    done;
    !requests
  end

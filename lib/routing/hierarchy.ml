module Graph = Dex_graph.Graph
module Mixing = Dex_spectral.Mixing
module Invariant = Dex_util.Invariant

type t = {
  k : int;
  beta : float;
  tau_mix : int;
  preprocess_rounds : int;
  query_rounds : int;
  n : int;
  m : int;
}

let build ?(c = 1.0) g rng ~k =
  Invariant.require (k >= 1) ~where:"Hierarchy.build" "k >= 1";
  let n = Graph.num_vertices g in
  Invariant.require (n > 0) ~where:"Hierarchy.build" "empty graph";
  let m = max 1 (Graph.num_edges g) in
  let tau_mix = max 1 (Mixing.mixing_time g rng) in
  let beta = float_of_int m ** (1.0 /. float_of_int k) in
  let polylog = Float.max 1.0 (c *. log (Float.max 2.0 (float_of_int n)) /. log 2.0) in
  let per_level = polylog ** float_of_int k in
  let pre_hier = float_of_int k *. beta *. per_level *. float_of_int tau_mix in
  let pre_portal =
    float_of_int k *. beta *. beta
    *. (log (Float.max 2.0 (float_of_int n)) /. log 2.0)
    *. float_of_int tau_mix
  in
  let query = per_level *. float_of_int tau_mix in
  let clamp x = if x >= float_of_int max_int then max_int else int_of_float (Float.ceil x) in
  { k;
    beta;
    tau_mix;
    preprocess_rounds = clamp (pre_hier +. pre_portal);
    query_rounds = clamp query;
    n;
    m }

let total_rounds t ~queries =
  let total = float_of_int t.preprocess_rounds +. (float_of_int queries *. float_of_int t.query_rounds) in
  if total >= float_of_int max_int then max_int else int_of_float total

let best_k_for g rng ~queries ~k_max =
  Invariant.require (k_max >= 1) ~where:"Hierarchy.best_k_for" "k_max >= 1";
  let candidates = List.init k_max (fun i -> build g rng ~k:(i + 1)) in
  match candidates with
  | [] ->
    (* unreachable: k_max >= 1 gives a non-empty candidate list *)
    Invariant.fail ~where:"Hierarchy.best_k_for" "no candidates"
  | first :: rest ->
    List.fold_left
      (fun best cand ->
        if total_rounds cand ~queries < total_rounds best ~queries then cand else best)
      first rest

module Graph = Dex_graph.Graph
module Metrics = Dex_graph.Metrics
module Sweep = Dex_spectral.Sweep
module Mixing = Dex_spectral.Mixing
module Rng = Dex_util.Rng

type cut = {
  vertices : int array;
  conductance : float;
  balance : float;
  rounds : int;
}

let of_sweep g sweep =
  let best = ref None in
  Array.iter
    (fun (pref : Sweep.prefix) ->
      if Float.is_finite pref.Sweep.conductance then
        match !best with
        | None -> best := Some pref
        | Some b -> if pref.Sweep.conductance < b.Sweep.conductance then best := Some pref)
    sweep.Sweep.prefixes;
  Option.map
    (fun (pref : Sweep.prefix) ->
      let vertices = Sweep.take sweep pref.Sweep.len in
      Array.sort compare vertices;
      { vertices;
        conductance = pref.Sweep.conductance;
        balance = Metrics.balance g vertices;
        rounds = 0 })
    !best

let spectral g rng =
  let iters = 100 in
  let _gap, vector = Mixing.spectral_gap ~iters g rng in
  let sweep = Sweep.scan_vector g vector in
  Option.map (fun c -> { c with rounds = iters }) (of_sweep g sweep)

let dsmp ?walk_length g rng =
  let n = Graph.num_vertices g in
  if n = 0 || Graph.total_volume g = 0 then None
  else begin
    let steps =
      match walk_length with
      | Some l -> l
      | None ->
        let lf = log (Float.max 2.0 (float_of_int n)) in
        int_of_float (Float.ceil (16.0 *. lf *. lf))
    in
    let degrees = Array.init n (fun v -> float_of_int (Graph.degree g v)) in
    let src = Rng.weighted_index rng degrees in
    let p = ref (Dex_spectral.Walk.indicator src) in
    let best = ref None in
    for _ = 1 to steps do
      p := Dex_spectral.Walk.step_sparse g !p;
      match Sweep.best_cut g !p with
      | None -> ()
      | Some (sweep, j) ->
        let pref = sweep.Sweep.prefixes.(j - 1) in
        (match !best with
        | Some (bc, _, _) when bc <= pref.Sweep.conductance -> ()
        | _ ->
          let vertices = Sweep.take sweep j in
          Array.sort compare vertices;
          best := Some (pref.Sweep.conductance, vertices, ()))
    done;
    Option.map
      (fun (conductance, vertices, ()) ->
        { vertices;
          conductance;
          balance = Metrics.balance g vertices;
          rounds = steps })
      !best
  end

type preset = Theory | Practical

type t = {
  preset : preset;
  phi : float;
  m : int;
  ell : int;
  t0 : int;
  gamma : float;
  f_phi : float;
  parallel_cap : int;
  partition_cap : int;
  idle_limit : int;
  sweep_stride : int;
  c1_relaxed_factor : float;
}

let log2 x = log x /. log 2.0

let make ?(preset = Practical) ~phi ~m () =
  if phi <= 0.0 || phi > 1.0 /. 12.0 then
    invalid_arg "Params.make: phi must be in (0, 1/12]";
  if m < 1 then invalid_arg "Params.make: m must be >= 1";
  let mf = float_of_int m in
  let ln_me2 = log (mf *. exp 2.0) in
  let ln_me4 = log (mf *. exp 4.0) in
  let c_t0 = match preset with Theory -> 49.0 | Practical -> 2.0 in
  let t0 = int_of_float (Float.ceil (c_t0 *. ln_me2 /. (phi *. phi))) in
  let t0 = match preset with Theory -> t0 | Practical -> min t0 20_000 in
  let gamma = 5.0 *. phi /. (7.0 *. 7.0 *. 8.0 *. ln_me4) in
  let f_phi = phi ** 3.0 /. (144.0 *. (ln_me4 *. ln_me4)) in
  let ell = max 1 (int_of_float (Float.ceil (log2 (Float.max 2.0 mf)))) in
  let parallel_cap, partition_cap, idle_limit, sweep_stride, c1_relaxed_factor =
    match preset with
    | Theory -> (max_int, max_int, max_int, 1, 12.0)
    | Practical -> (8, 48, 8, 16, 3.0)
  in
  { preset; phi; m; ell; t0; gamma; f_phi; parallel_cap; partition_cap; idle_limit;
    sweep_stride; c1_relaxed_factor }

let should_sweep t step = step <= 16 || step mod t.sweep_stride = 0

let eps_b t b =
  if b < 1 || b > t.ell then invalid_arg "Params.eps_b: b out of range";
  let mf = float_of_int t.m in
  let ln_me4 = log (mf *. exp 4.0) in
  t.phi /. (7.0 *. 8.0 *. ln_me4 *. float_of_int t.t0 *. (2.0 ** float_of_int b))

let parallel_copies t ~volume =
  let mf = float_of_int t.m in
  let ln_me4 = log (mf *. exp 4.0) in
  let denom =
    56.0 *. float_of_int t.ell
    *. float_of_int (t.t0 + 1)
    *. float_of_int t.t0 *. ln_me4 /. t.phi
  in
  let k = int_of_float (Float.ceil (float_of_int volume /. denom)) in
  (* the practical floor of 2 keeps start-vertex coverage reasonable
     when the theory formula rounds down to a single copy *)
  let floor_k = match t.preset with Theory -> 1 | Practical -> 2 in
  max floor_k (min t.parallel_cap k)

let overlap_bound _t ~volume =
  10 * int_of_float (Float.ceil (log (Float.max 2.0 (float_of_int volume))))

let g_value t ~volume =
  (* g(φ, Vol) = ⌈10·w·(56·ℓ·(t₀+1)·t₀·ln(m·e⁴)·φ⁻¹)⌉ (Appendix A.4);
     astronomically large at theory constants, hence the practical
     partition_cap clamp downstream. Computed in floats to avoid
     overflow. *)
  let w = overlap_bound t ~volume in
  let mf = float_of_int t.m in
  let ln_me4 = log (mf *. exp 4.0) in
  let denom =
    56.0 *. float_of_int t.ell
    *. float_of_int (t.t0 + 1)
    *. float_of_int t.t0 *. ln_me4 /. t.phi
  in
  let g = 10.0 *. float_of_int w *. denom in
  if g >= float_of_int max_int then max_int else max 1 (int_of_float (Float.ceil g))

let partition_iterations t ~volume ~p =
  if p <= 0.0 || p >= 1.0 then invalid_arg "Params.partition_iterations: p in (0,1)";
  let g = g_value t ~volume in
  let log_factor = int_of_float (Float.ceil (log (1.0 /. p) /. log (7.0 /. 4.0))) in
  let s = 4.0 *. float_of_int g *. float_of_int (max 1 log_factor) in
  let s = if s >= float_of_int max_int then max_int else int_of_float s in
  max 1 (min t.partition_cap s)

let h ~n phi =
  let lf = log (Float.max 2.0 (float_of_int n)) in
  (phi ** (1.0 /. 3.0)) *. (lf ** (5.0 /. 3.0))

let h_inverse ~n theta =
  let lf = log (Float.max 2.0 (float_of_int n)) in
  theta ** 3.0 /. (lf ** 5.0)

(** The sequential Spielman–Teng Partition — the algorithm the paper's
    Appendix A parallelizes.

    One RandomNibble runs at a time on the {e current} remaining graph
    G{W}; its cut is peeled before the next nibble starts. In CONGEST
    this serialization is exactly what makes the original unusable
    (the paper: "the O~(m) sequential iterations of Nibble … cannot be
    completely parallelized"), so its round cost is the {e sum} of the
    per-nibble costs, against ParallelNibble's max-based cost inside
    each batch. Quality-wise the two are comparable — bench E11
    reports both sides. *)

type t = {
  cut : int array; (** the union of peeled cuts, sorted *)
  conductance : float; (** Φ of the union in the input graph *)
  balance : float;
  rounds : int; (** serialized cost: sum over all nibbles *)
  nibbles : int; (** nibble invocations performed *)
}

(** [run ?max_nibbles params g rng] peels until the (47/48)-volume
    threshold, [max_nibbles] (default 64) invocations, or
    [params.idle_limit] consecutive misses. *)
val run :
  ?max_nibbles:int -> Params.t -> Dex_graph.Graph.t -> Dex_util.Rng.t -> t

module Graph = Dex_graph.Graph
module Metrics = Dex_graph.Metrics

type t = {
  cut : int array;
  conductance : float;
  balance : float;
  rounds : int;
  nibbles : int;
}

let run ?(max_nibbles = 64) params g rng =
  let n = Graph.num_vertices g in
  let total_volume = Graph.total_volume g in
  if total_volume = 0 then
    { cut = [||]; conductance = Float.infinity; balance = 0.0; rounds = 0; nibbles = 0 }
  else begin
    let threshold = 47 * total_volume / 48 in
    let in_w = Array.make n true in
    let w_volume = ref total_volume in
    let removed = ref [] in
    let rounds = ref 0 in
    let nibbles = ref 0 in
    let idle = ref 0 in
    let continue = ref true in
    while !continue && !nibbles < max_nibbles do
      incr nibbles;
      let w = Metrics.vertices_of_mask in_w in
      if Array.length w = 0 then continue := false
      else begin
        let gw, mapping = Graph.saturated_subgraph g w in
        let outcome = Parallel_nibble.random_nibble params gw rng in
        (* serialized: every nibble's rounds accumulate *)
        rounds := !rounds + outcome.Nibble.rounds;
        match outcome.Nibble.result with
        | None ->
          incr idle;
          if !idle >= params.Params.idle_limit then continue := false
        | Some found ->
          idle := 0;
          (* peel the smaller side of the cut, as in Partition *)
          let vertices =
            if 2 * found.Nibble.volume > Graph.total_volume gw then begin
              let mask = Hashtbl.create (2 * Array.length found.Nibble.vertices) in
              Array.iter (fun v -> Hashtbl.replace mask v ()) found.Nibble.vertices;
              Array.init (Graph.num_vertices gw) (fun v -> v)
              |> Array.to_list
              |> List.filter (fun v -> not (Hashtbl.mem mask v))
              |> Array.of_list
            end
            else found.Nibble.vertices
          in
          Array.iter
            (fun sub_v ->
              let v = mapping.(sub_v) in
              if in_w.(v) then begin
                in_w.(v) <- false;
                w_volume := !w_volume - Graph.degree g v;
                removed := v :: !removed
              end)
            vertices;
          if !w_volume <= threshold then continue := false
      end
    done;
    let cut = Array.of_list !removed in
    Array.sort compare cut;
    let conductance =
      if Array.length cut = 0 then Float.infinity else Metrics.conductance g cut
    in
    let balance = if Array.length cut = 0 then 0.0 else Metrics.balance g cut in
    { cut; conductance; balance; rounds = !rounds; nibbles = !nibbles }
  end

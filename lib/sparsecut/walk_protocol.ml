module Graph = Dex_graph.Graph
module Network = Dex_congest.Network

(* mass shares travel as one word each: the 63-bit payload of the
   positive IEEE double — the simulation's stand-in for the O(log n)-bit
   fixed-point values a real implementation would ship *)
let encode x = [| Int64.to_int (Int64.bits_of_float x) |]
let decode (msg : Network.message) = Int64.float_of_bits (Int64.of_int msg.(0))

type state = {
  mass : float; (* p̃_{t} at this vertex after the last completed step *)
  kept : float; (* lazy + self-loop share waiting for incoming mass *)
}

let run net ~src ~eps ~steps =
  if steps < 0 then invalid_arg "Walk_protocol.run: steps >= 0";
  let g = Network.graph net in
  let n = Graph.num_vertices g in
  if src < 0 || src >= n then invalid_arg "Walk_protocol.run: src out of range";
  let truncate v x = if x >= 2.0 *. eps *. float_of_int (Graph.degree g v) then x else 0.0 in
  let init v = { mass = (if v = src then 1.0 else 0.0); kept = 0.0 } in
  let step ~round ~vertex:v st inbox =
    let v = Dex_graph.Vertex.local_int v in
    (* complete step (round - 1): collect shares sent last round *)
    let arrived = List.fold_left (fun acc (_, msg) -> acc +. decode msg) 0.0 inbox in
    let mass = if round = 1 then st.mass else truncate v (st.kept +. arrived) in
    (* launch the next step: split the current mass *)
    if round > steps then ({ mass; kept = mass }, [])
    else begin
      let deg = float_of_int (Graph.degree g v) in
      if mass = 0.0 || deg = 0.0 then ({ mass; kept = mass }, [])
      else begin
        let share = mass /. (2.0 *. deg) in
        let kept =
          (mass /. 2.0) +. (share *. float_of_int (Graph.self_loops g v))
        in
        let outbox = ref [] in
        Graph.iter_neighbors g v (fun u -> outbox := (u, encode share) :: !outbox);
        ({ mass; kept }, !outbox)
      end
    end
  in
  let states = Network.run_rounds net ~label:"walk-protocol" ~init ~step (steps + 1) in
  let pairs = ref [] in
  Array.iteri (fun v st -> if st.mass > 0.0 then pairs := (v, st.mass) :: !pairs) states;
  (List.rev !pairs, steps + 1)

let distribution_table pairs =
  let tbl = Hashtbl.create (2 * List.length pairs) in
  List.iter (fun (v, x) -> Hashtbl.replace tbl v x) pairs;
  tbl

module Graph = Dex_graph.Graph
module Metrics = Dex_graph.Metrics
module Rounds = Dex_congest.Rounds
module Trace = Dex_obs.Trace

type t = {
  cut : int array;
  conductance : float;
  balance : float;
  rounds : int;
  iterations : int;
  aborted_copies : int;
}

(* runs [f] inside a ledger span when a ledger is present *)
let in_span ledger name f =
  match ledger with Some l -> Rounds.with_span l name f | None -> f ()

let run ?p ?ledger params g rng =
  let n = Graph.num_vertices g in
  let total_volume = Graph.total_volume g in
  let p =
    match p with
    | Some p -> p
    | None -> 1.0 /. Float.max 4.0 (float_of_int n ** 2.0)
  in
  if total_volume = 0 then
    { cut = [||];
      conductance = Float.infinity;
      balance = 0.0;
      rounds = 0;
      iterations = 0;
      aborted_copies = 0 }
  else
    in_span ledger "partition" @@ fun () ->
    let s = Params.partition_iterations params ~volume:total_volume ~p in
    let threshold = 47 * total_volume / 48 in
    let in_w = Array.make n true in
    let w_volume = ref total_volume in
    let removed = ref [] in
    let rounds = ref 0 in
    let iterations = ref 0 in
    let aborted = ref 0 in
    let idle = ref 0 in
    let continue = ref true in
    while !continue && !iterations < s do
      incr iterations;
      let w = Metrics.vertices_of_mask in_w in
      if Array.length w = 0 then continue := false
      else begin
        let gw, mapping = Graph.saturated_subgraph g w in
        let pn = Parallel_nibble.run ?ledger params gw rng in
        rounds := !rounds + pn.Parallel_nibble.rounds;
        if pn.Parallel_nibble.aborted then incr aborted;
        let cut = pn.Parallel_nibble.cut in
        (* a nibble prefix may be the large side of its cut (C.3-star
           allows up to 11/12 of the volume); peel the smaller side so
           the running union stays a clean sparse cut *)
        let cut =
          if 2 * Graph.volume gw cut > Graph.total_volume gw then begin
            let mask = Hashtbl.create (2 * Array.length cut) in
            Array.iter (fun v -> Hashtbl.replace mask v ()) cut;
            Array.init (Graph.num_vertices gw) (fun v -> v)
            |> Array.to_list
            |> List.filter (fun v -> not (Hashtbl.mem mask v))
            |> Array.of_list
          end
          else cut
        in
        if Array.length cut = 0 then begin
          incr idle;
          if !idle >= params.Params.idle_limit then continue := false
        end
        else begin
          idle := 0;
          Array.iter
            (fun sub_v ->
              let v = mapping.(sub_v) in
              if in_w.(v) then begin
                in_w.(v) <- false;
                w_volume := !w_volume - Graph.degree g v;
                removed := v :: !removed
              end)
            cut;
          if !w_volume <= threshold then continue := false
        end
      end
    done;
    let cut = Array.of_list !removed in
    Array.sort compare cut;
    let conductance =
      if Array.length cut = 0 then Float.infinity else Metrics.conductance g cut
    in
    let balance = if Array.length cut = 0 then 0.0 else Metrics.balance g cut in
    { cut;
      conductance;
      balance;
      rounds = !rounds;
      iterations = !iterations;
      aborted_copies = !aborted }

let certified_no_sparse_cut t = Array.length t.cut = 0

type attempt_outcome = { value : t; attempts : int; rounds_total : int }

let acceptable ~bound t =
  certified_no_sparse_cut t || t.conductance <= bound

let run_verified ?(attempts = 3) ?p ?ledger ~bound params g rng =
  if attempts < 1 then invalid_arg "Partition.run_verified: attempts must be >= 1";
  let module Rng = Dex_util.Rng in
  let retry certified i =
    match ledger with
    | Some l ->
      (match Rounds.trace l with
      | Some tr -> Trace.retry tr ~label:"sparse-cut" ~attempt:i ~certified
      | None -> ())
    | None -> ()
  in
  let rounds_total = ref 0 in
  let best = ref None in
  let rec go i =
    let r =
      in_span ledger (Printf.sprintf "attempt-%d" i) @@ fun () ->
      run ?p ?ledger params g (Rng.split rng i)
    in
    rounds_total := !rounds_total + r.rounds;
    (match !best with
    | Some b when b.conductance <= r.conductance -> ()
    | _ -> best := Some r);
    let ok = acceptable ~bound r in
    retry ok i;
    if ok then Ok { value = r; attempts = i; rounds_total = !rounds_total }
    else if i >= attempts then
      let b = match !best with Some b -> b | None -> r in
      Error { value = b; attempts = i; rounds_total = !rounds_total }
    else go (i + 1)
  in
  go 1

module Graph = Dex_graph.Graph
module Walk = Dex_spectral.Walk
module Sweep = Dex_spectral.Sweep

type cut = {
  vertices : int array;
  volume : int;
  cut_edges : int;
  conductance : float;
  found_t : int;
  found_j : int;
}

type outcome = {
  result : cut option;
  src : int;
  b : int;
  steps_executed : int;
  candidates_tested : int;
  rounds : int;
  participants : int array;
}

let ceil_log2 x = int_of_float (Float.ceil (log (Float.max 2.0 x) /. log 2.0))

(* cost of one "random binary search" for a sweep prefix (Lemma 9):
   O(log n) sampling iterations, each a traversal of the spanning tree
   of P-star, whose depth at walk step t is at most 2t + 1. *)
let candidate_cost ~t ~support = (ceil_log2 (float_of_int (max 2 support)) + 1) * ((2 * t) + 1)

let cut_of_prefix sweep (pref : Sweep.prefix) ~t =
  let vertices = Sweep.take sweep pref.Sweep.len in
  Array.sort compare vertices;
  { vertices;
    volume = pref.Sweep.volume;
    cut_edges = pref.Sweep.cut;
    conductance = pref.Sweep.conductance;
    found_t = t;
    found_j = pref.Sweep.len }

type conditions = {
  c1 : Sweep.prefix -> bool;
  c2 : Sweep.prefix -> float -> bool;
  (* prefix, rho at the reference index *)
  c3 : Sweep.prefix -> bool;
}

let run_generic (params : Params.t) g ~src ~b ~select =
  if b < 1 || b > params.ell then invalid_arg "Nibble: b out of range";
  let total_volume = Graph.total_volume g in
  let eps = Params.eps_b params b in
  let seen = Hashtbl.create 64 in
  let note_support p =
    Dex_util.Table.iter_sorted (fun v _ -> Hashtbl.replace seen v ()) p
  in
  let p = ref (Walk.indicator src) in
  note_support !p;
  let rounds = ref 0 in
  let candidates = ref 0 in
  let result = ref None in
  let t = ref 0 in
  (* conditions shared by the exact and approximate variants *)
  let vol_lower = 5.0 /. 7.0 *. (2.0 ** float_of_int (b - 1)) in
  let strict =
    { c1 = (fun pref -> pref.Sweep.conductance <= params.phi);
      c2 =
        (fun pref rho_j ->
          rho_j >= params.gamma /. float_of_int (max 1 pref.Sweep.volume));
      c3 =
        (fun pref ->
          float_of_int pref.Sweep.volume >= vol_lower
          && 5 * total_volume >= 6 * pref.Sweep.volume) }
  in
  let relaxed =
    { c1 = (fun pref -> pref.Sweep.conductance <= params.c1_relaxed_factor *. params.phi);
      c2 =
        (fun pref rho_prev ->
          rho_prev >= params.gamma /. float_of_int (max 1 pref.Sweep.volume));
      c3 =
        (fun pref ->
          float_of_int pref.Sweep.volume >= vol_lower
          && 11 * total_volume >= 12 * pref.Sweep.volume) }
  in
  let converged = ref false in
  (* once a candidate passes we keep walking for [patience] more steps
     and return the best passing cut — the paper returns the first
     hit; the refinement only improves the (C.1)/(C.1-star) quality *)
  let patience = 192 in
  let deadline = ref params.t0 in
  let good_enough () =
    match !result with
    | Some c -> c.conductance <= params.phi
    | None -> false
  in
  while
    (not (good_enough ())) && (not !converged) && !t < min params.t0 !deadline
  do
    incr t;
    let next = Walk.truncate g ~eps (Walk.step_sparse g !p) in
    incr rounds;
    (* one diffusion step = one communication round *)
    (* fixpoint detection: once the truncated walk stops moving no
       later sweep can differ, so scanning further steps is pointless *)
    let l1_change =
      (* sorted iteration: float accumulation order must not depend on
         the tables' insertion histories *)
      let acc = ref 0.0 in
      Dex_util.Table.iter_sorted
        (fun v x ->
          let y = try Hashtbl.find !p v with Not_found -> 0.0 in
          acc := !acc +. Float.abs (x -. y))
        next;
      Dex_util.Table.iter_sorted
        (fun v y -> if not (Hashtbl.mem next v) then acc := !acc +. y)
        !p;
      !acc
    in
    if l1_change <= 1e-12 then converged := true;
    p := next;
    note_support !p;
    if Hashtbl.length !p > 0 && Params.should_sweep params !t then begin
      let sweep = Sweep.scan g !p in
      match select ~strict ~relaxed ~sweep ~t:!t ~rounds ~candidates with
      | None -> ()
      | Some cut ->
        (match !result with
        | None ->
          result := Some cut;
          deadline := !t + patience
        | Some best -> if cut.conductance < best.conductance then result := Some cut)
    end
  done;
  (* on early convergence, one last sweep in case the stride skipped
     the fixpoint step *)
  if !result = None && !converged && Hashtbl.length !p > 0 then begin
    let sweep = Sweep.scan g !p in
    match select ~strict ~relaxed ~sweep ~t:!t ~rounds ~candidates with
    | None -> ()
    | Some cut -> result := Some cut
  end;
  let participants = Array.of_list (Dex_util.Table.keys_sorted seen) in
  { result = !result;
    src;
    b;
    steps_executed = !t;
    candidates_tested = !candidates;
    rounds = !rounds;
    participants }

let nibble params g ~src ~b =
  let select ~strict ~relaxed:_ ~sweep ~t ~rounds ~candidates =
    let prefixes = sweep.Sweep.prefixes in
    let n = Array.length prefixes in
    let best = ref None in
    for j = 0 to n - 1 do
      let pref = prefixes.(j) in
      incr candidates;
      rounds := !rounds + candidate_cost ~t ~support:n;
      if strict.c1 pref && strict.c2 pref pref.Sweep.last_rho && strict.c3 pref then
        match !best with
        | Some (b : cut) when b.conductance <= pref.Sweep.conductance -> ()
        | _ -> best := Some (cut_of_prefix sweep pref ~t)
    done;
    !best
  in
  run_generic params g ~src ~b ~select

(* the geometric index sequence (j_x) of Appendix A.2 *)
let j_sequence (params : Params.t) (sweep : Sweep.t) =
  let prefixes = sweep.Sweep.prefixes in
  let jmax = Array.length prefixes in
  if jmax = 0 then []
  else begin
    let vol j = prefixes.(j - 1).Sweep.volume in
    let seq = ref [ 1 ] in
    let cur = ref 1 in
    while !cur < jmax do
      let budget =
        (1.0 +. params.phi) *. float_of_int (vol !cur)
      in
      (* largest j with Vol(1..j) <= (1+φ)·Vol(1..j_{x-1}) *)
      let lo = ref !cur and hi = ref jmax in
      while !lo < !hi do
        let mid = (!lo + !hi + 1) / 2 in
        if float_of_int (vol mid) <= budget then lo := mid else hi := mid - 1
      done;
      let next = max (!cur + 1) !lo in
      seq := next :: !seq;
      cur := next
    done;
    List.rev !seq
  end

let approximate params g ~src ~b =
  let select ~strict ~relaxed ~sweep ~t ~rounds ~candidates =
    let prefixes = sweep.Sweep.prefixes in
    let n = Array.length prefixes in
    let seq = j_sequence params sweep in
    let best = ref None in
    let prev = ref 0 in
    List.iter
      (fun jx ->
        incr candidates;
        rounds := !rounds + candidate_cost ~t ~support:n;
        let pref = prefixes.(jx - 1) in
        let dense = jx = 1 || jx = !prev + 1 in
        let ok =
          if dense then
            strict.c1 pref && strict.c2 pref pref.Sweep.last_rho && strict.c3 pref
          else begin
            let rho_prev = prefixes.(!prev - 1).Sweep.last_rho in
            relaxed.c1 pref && relaxed.c2 pref rho_prev && relaxed.c3 pref
          end
        in
        (if ok then
           match !best with
           | Some (b : cut) when b.conductance <= pref.Sweep.conductance -> ()
           | _ -> best := Some (cut_of_prefix sweep pref ~t));
        prev := jx)
      seq;
    !best
  in
  run_generic params g ~src ~b ~select

let participating_edges g outcome =
  let mask = Hashtbl.create (2 * Array.length outcome.participants) in
  Array.iter (fun v -> Hashtbl.replace mask v ()) outcome.participants;
  let acc = ref [] in
  Array.iter
    (fun v ->
      Graph.iter_neighbors g v (fun u ->
          if u > v || not (Hashtbl.mem mask u) then
            acc := ((min u v, max u v)) :: !acc))
    outcome.participants;
  (* normalize duplicates: an edge with both endpoints participating is
     produced once by the guard above except when u < v and u not in
     mask — dedupe to be safe *)
  let dedup = Hashtbl.create (2 * List.length !acc) in
  List.filter
    (fun e ->
      if Hashtbl.mem dedup e then false
      else begin
        Hashtbl.replace dedup e ();
        true
      end)
    !acc

(** The truncated lazy random walk as a {e real} message-passing
    CONGEST protocol.

    The sequential Nibble machinery computes p̃_t centrally for speed;
    this module is the executable witness that the computation is a
    legitimate CONGEST protocol with one round per step: in round t
    every vertex v holding mass p(v) sends p(v)/(2·deg v) to each
    neighbor (one O(log n)-bit value per edge — a fixed-point share),
    keeps the lazy half plus its self-loop share, applies the ε_b
    truncation, and repeats.

    Tests check that the protocol's distribution equals
    {!Dex_spectral.Walk.truncated_walk} step for step, and that the
    kernel charges exactly [steps] rounds — the basis for the
    "one diffusion step = one communication round" accounting used by
    {!Nibble}. *)

(** [run net ~src ~eps ~steps] executes the protocol and returns the
    final distribution as (vertex, mass) pairs plus the rounds
    charged. *)
val run :
  Dex_congest.Network.t ->
  src:int -> eps:float -> steps:int ->
  (int * float) list * int

(** [distribution_table pairs] is the sparse-table form, comparable to
    {!Dex_spectral.Walk} distributions. *)
val distribution_table : (int * float) list -> (int, float) Hashtbl.t

(** The Nibble procedure (Spielman–Teng) and the paper's
    ApproximateNibble variant (Appendix A.1–A.2).

    Nibble runs the truncated lazy random walk from a start vertex and
    looks for a sweep prefix π̃_t(1..j) satisfying

    - (C.1) Φ(π̃_t(1..j)) ≤ φ,
    - (C.2) ρ̃_t(π̃_t(j)) ≥ γ / Vol(π̃_t(1..j)),
    - (C.3) (5/6)·Vol(V) ≥ Vol(π̃_t(1..j)) ≥ (5/7)·2^{b-1}.

    ApproximateNibble only inspects the O(φ⁻¹·log Vol) geometric
    j-sequence (j_x) per step, testing (C.1)–(C.3) on sequence-dense
    indices and the relaxed starred conditions C.1-star..C.3-star
    otherwise — the variant that
    admits the CONGEST implementation of Lemma 9. *)

(** A cut found by a nibble, in ambient-graph vertex ids. *)
type cut = {
  vertices : int array; (** the prefix π̃_t(1..j), sorted *)
  volume : int;
  cut_edges : int;
  conductance : float;
  found_t : int; (** walk step at which the prefix passed *)
  found_j : int; (** prefix length *)
}

(** Execution record: result plus the measured quantities that drive
    round accounting (Lemma 9) and overlap accounting (Definition 2). *)
type outcome = {
  result : cut option;
  src : int;
  b : int;
  steps_executed : int; (** walk steps actually run (≤ t₀) *)
  candidates_tested : int; (** (t, j) pairs examined *)
  rounds : int; (** simulated CONGEST rounds per the Lemma 9 cost model *)
  participants : int array;
  (** vertices u with p̃_t(u) > 0 for some t; these define the
      participating edge set P-star of Definition 2 *)
}

(** [nibble params g ~src ~b] is the exact Nibble: every prefix tested
    against (C.1)–(C.3). Reference implementation for tests. *)
val nibble : Params.t -> Dex_graph.Graph.t -> src:int -> b:int -> outcome

(** [approximate params g ~src ~b] is ApproximateNibble. *)
val approximate : Params.t -> Dex_graph.Graph.t -> src:int -> b:int -> outcome

(** [participating_edges g outcome] materializes P-star: the edges with at
    least one endpoint in [outcome.participants], normalized (u ≤ v). *)
val participating_edges : Dex_graph.Graph.t -> outcome -> (int * int) list

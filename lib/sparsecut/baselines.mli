(** Prior sparse-cut algorithms the paper compares against in prose.

    Neither has the nearly-most-balanced guarantee of Theorem 3 — the
    benchmark table E3 measures exactly that failure (balance of the
    returned cut versus the planted balance). *)

type cut = {
  vertices : int array;
  conductance : float;
  balance : float;
  rounds : int; (** simulated rounds under the cited cost model *)
}

(** [spectral params g rng] sweeps the (approximate) second
    eigenvector of the lazy walk matrix — the classical centralized
    baseline; its round cost model is power-iteration steps, each one
    round of neighbor exchange. Always returns the best prefix cut. *)
val spectral : Dex_graph.Graph.t -> Dex_util.Rng.t -> cut option

(** [dsmp ?walk_length g rng] is the Das Sarma–Molla–Pandurangan-style
    distributed sparse cut: a single (un-truncated) random-walk
    distribution from one degree-sampled start vertex, swept for the
    best-conductance prefix. Walk length defaults to O(log n / φ²)
    with φ estimated as the best sweep conductance of a short probe.
    Rounds = walk length (each step is a communication round). *)
val dsmp : ?walk_length:int -> Dex_graph.Graph.t -> Dex_util.Rng.t -> cut option

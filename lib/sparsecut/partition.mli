(** Partition — the nearly most balanced sparse cut (Theorem 3,
    Appendix A.4).

    Runs ParallelNibble on the remaining graph G{W_{i-1}} for up to s
    iterations, peeling each returned cut off, and stops as soon as
    the peeled volume reaches (1/48)·Vol(V) (i.e. Vol(W_i) ≤
    (47/48)·Vol(V)). Theorem 3 guarantees, w.h.p., that when
    Φ(G) ≤ φ the union C has bal(C) ≥ min{b/2, 1/48} — b the balance
    of a most balanced φ-conductance cut — and
    Φ(C) = O(φ^{1/3}·log^{5/3} n); when Φ(G) > φ the output is ∅ or
    still O(φ^{1/3}·log^{5/3} n)-sparse.

    With the [Practical] preset the iteration count s is capped and
    the loop additionally stops after [idle_limit] consecutive empty
    ParallelNibble results (a Monte-Carlo shortcut; see DESIGN.md §2). *)

type t = {
  cut : int array; (** C, sorted; may be empty *)
  conductance : float; (** Φ(C) in the input graph; infinity if empty *)
  balance : float; (** bal(C) *)
  rounds : int; (** total simulated rounds (Lemma 11 accounting) *)
  iterations : int; (** ParallelNibble calls performed *)
  aborted_copies : int; (** ParallelNibble calls that hit the w-cap *)
}

(** [run ?p ?ledger params g rng] executes Partition(G, φ, p); [p] is
    the failure probability driving the iteration count (default 1/n²).
    When [ledger] is given the body runs inside a ["partition"] span
    and the accounted ParallelNibble costs are charged to it (labels
    ["nibble-generate"/"nibble-execute"/"nibble-select"]). *)
val run :
  ?p:float -> ?ledger:Dex_congest.Rounds.t ->
  Params.t -> Dex_graph.Graph.t -> Dex_util.Rng.t -> t

(** [certified_no_sparse_cut t] is [true] when Partition returned ∅ —
    the caller treats the graph as a φ-expander (Theorem 3, case 2). *)
val certified_no_sparse_cut : t -> bool

(** One or more verified Partition attempts: the accepted (or, on
    [Error], the best-conductance) result, the attempts used and the
    simulated rounds summed across all of them. *)
type attempt_outcome = { value : t; attempts : int; rounds_total : int }

(** [acceptable ~bound t] is the Las Vegas acceptance predicate: the
    graph was certified a φ-expander (empty cut) or the returned cut's
    measured conductance meets [bound] (the caller's h(φ)). *)
val acceptable : bound:float -> t -> bool

(** [run_verified ?attempts ?p ?ledger ~bound params g rng] re-runs
    Partition with fresh randomness (streams split off [rng]) until
    {!acceptable} holds, up to [attempts] times (default 3). [Error]
    carries the best attempt seen — typed failure reporting, never an
    exception. With a [ledger], each attempt runs in an
    ["attempt-<i>"] span and, when a trace is attached, emits a retry
    event labeled ["sparse-cut"]. Raises [Invalid_argument] when
    [attempts < 1]. *)
val run_verified :
  ?attempts:int ->
  ?p:float ->
  ?ledger:Dex_congest.Rounds.t ->
  bound:float ->
  Params.t ->
  Dex_graph.Graph.t ->
  Dex_util.Rng.t ->
  (attempt_outcome, attempt_outcome) result

module Graph = Dex_graph.Graph
module Rng = Dex_util.Rng

type t = {
  cut : int array;
  rounds : int;
  copies : int;
  aborted : bool;
  max_overlap : int;
  nibbles : Nibble.outcome list;
}

let sample_scale params rng =
  (* Pr[b = i] = 2^{-i} / (1 - 2^{-ℓ}) for i in 1..ℓ *)
  let ell = params.Params.ell in
  let weights = Array.init ell (fun i -> 2.0 ** float_of_int (-(i + 1))) in
  1 + Rng.weighted_index rng weights

let sample_start g rng =
  let n = Graph.num_vertices g in
  let degrees = Array.init n (fun v -> float_of_int (Graph.degree g v)) in
  Rng.weighted_index rng degrees

let random_nibble params g rng =
  let src = sample_start g rng in
  let b = sample_scale params rng in
  Nibble.approximate params g ~src ~b

let run ?k ?ledger params g rng =
  let total_volume = Graph.total_volume g in
  if total_volume = 0 then
    { cut = [||]; rounds = 0; copies = 0; aborted = false; max_overlap = 0; nibbles = [] }
  else begin
    let k = match k with Some k -> k | None -> Params.parallel_copies params ~volume:total_volume in
    let w = Params.overlap_bound params ~volume:total_volume in
    let outcomes = List.init k (fun _ -> random_nibble params g rng) in
    (* per-edge participation counts over P-star of each copy *)
    let overlap = Hashtbl.create 1024 in
    let max_overlap = ref 0 in
    List.iter
      (fun outcome ->
        List.iter
          (fun e ->
            let c = 1 + (try Hashtbl.find overlap e with Not_found -> 0) in
            Hashtbl.replace overlap e c;
            if c > !max_overlap then max_overlap := c)
          (Nibble.participating_edges g outcome))
      outcomes;
    let aborted = !max_overlap > w in
    (* Lemma 10 cost model, fully measured:
       - instance generation: one BFS-tree build + token descent,
         charged as the height of an actual BFS tree would be; we use
         the max nibble walk length as the tree-depth proxy measured
         from this very run (every participant sits within that hop
         distance of its start vertex);
       - simultaneous execution: the k copies time-share each edge, so
         the wall-clock is the per-copy max times the realized
         congestion (capped at w);
       - selection of i*: a log-many binary search of broadcasts. *)
    let max_copy_rounds =
      List.fold_left (fun acc (o : Nibble.outcome) -> max acc o.Nibble.rounds) 0 outcomes
    in
    let depth_proxy =
      List.fold_left
        (fun acc (o : Nibble.outcome) -> max acc o.Nibble.steps_executed)
        1 outcomes
    in
    let congestion = max 1 (min !max_overlap w) in
    let ceil_log2 x = int_of_float (Float.ceil (log (Float.max 2.0 x) /. log 2.0)) in
    let gen_rounds = depth_proxy + ceil_log2 (float_of_int (max 2 k)) in
    let select_rounds = depth_proxy * ceil_log2 (float_of_int (max 2 k)) in
    let exec_rounds = congestion * max_copy_rounds in
    let rounds = gen_rounds + exec_rounds + select_rounds in
    (match ledger with
    | Some l ->
      let module Rounds = Dex_congest.Rounds in
      Rounds.charge l ~label:"nibble-generate" gen_rounds;
      Rounds.charge l ~label:"nibble-execute" exec_rounds;
      Rounds.charge l ~label:"nibble-select" select_rounds
    | None -> ());
    if aborted then
      { cut = [||]; rounds; copies = k; aborted; max_overlap = !max_overlap; nibbles = outcomes }
    else begin
      (* prefix-union selection: largest i* with Vol(U_{i*}) ≤ 23/24·Vol *)
      let threshold = 23 * total_volume / 24 in
      let members = Hashtbl.create 256 in
      let vol = ref 0 in
      let best = ref [] in
      (try
         List.iter
           (fun (o : Nibble.outcome) ->
             (match o.Nibble.result with
             | None -> ()
             | Some cut ->
               Array.iter
                 (fun v ->
                   if not (Hashtbl.mem members v) then begin
                     Hashtbl.replace members v ();
                     vol := !vol + Graph.degree g v
                   end)
                 cut.Nibble.vertices);
             if !vol <= threshold then
               best := Dex_util.Table.keys_sorted members
             else raise Exit)
           outcomes
       with Exit -> ());
      let cut = Array.of_list !best in
      Array.sort compare cut;
      { cut; rounds; copies = k; aborted; max_overlap = !max_overlap; nibbles = outcomes }
    end
  end

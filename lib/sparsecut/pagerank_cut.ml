module Graph = Dex_graph.Graph
module Metrics = Dex_graph.Metrics
module Sweep = Dex_spectral.Sweep

type t = {
  cut : int array;
  conductance : float;
  balance : float;
  pushes : int;
  support : int;
}

let approximate_pagerank ?(alpha = 0.1) ?eps g ~src =
  if alpha <= 0.0 || alpha >= 1.0 then invalid_arg "Pagerank_cut: alpha in (0,1)";
  let m = max 1 (Graph.num_edges g) in
  let eps = match eps with Some e -> e | None -> 1.0 /. (20.0 *. float_of_int m) in
  if eps <= 0.0 then invalid_arg "Pagerank_cut: eps > 0";
  let p = Hashtbl.create 64 in
  let r = Hashtbl.create 64 in
  Hashtbl.replace r src 1.0;
  let get tbl v = try Hashtbl.find tbl v with Not_found -> 0.0 in
  let add tbl v x = Hashtbl.replace tbl v (get tbl v +. x) in
  (* work queue of vertices that may violate r(v) < eps·deg(v) *)
  let queue = Queue.create () in
  let queued = Hashtbl.create 64 in
  let enqueue v =
    if not (Hashtbl.mem queued v) then begin
      Hashtbl.replace queued v ();
      Queue.add v queue
    end
  in
  enqueue src;
  let pushes = ref 0 in
  let push_limit = 64 * m in
  while (not (Queue.is_empty queue)) && !pushes < push_limit do
    let v = Queue.take queue in
    Hashtbl.remove queued v;
    let deg = float_of_int (Graph.degree g v) in
    let rv = get r v in
    if deg > 0.0 && rv >= eps *. deg then begin
      incr pushes;
      (* lazy ACL push: p += alpha·r(v); half of the rest stays, half
         spreads over incident edges (self-loops included) *)
      add p v (alpha *. rv);
      let rest = (1.0 -. alpha) *. rv in
      Hashtbl.replace r v (rest /. 2.0);
      let share = rest /. 2.0 /. deg in
      (* the self-loop share also stays home *)
      if Graph.self_loops g v > 0 then
        add r v (share *. float_of_int (Graph.self_loops g v));
      Graph.iter_neighbors g v (fun u ->
          add r u share;
          let du = float_of_int (Graph.degree g u) in
          if du > 0.0 && get r u >= eps *. du then enqueue u);
      let dv = float_of_int (Graph.degree g v) in
      if get r v >= eps *. dv then enqueue v
    end
  done;
  (p, r, !pushes)

let run ?alpha ?eps g ~src =
  let p, _r, pushes = approximate_pagerank ?alpha ?eps g ~src in
  if Hashtbl.length p = 0 then None
  else begin
    match Sweep.best_cut g p with
    | None -> None
    | Some (sweep, j) ->
      let vertices = Sweep.take sweep j in
      Array.sort compare vertices;
      let pref = sweep.Sweep.prefixes.(j - 1) in
      Some
        { cut = vertices;
          conductance = pref.Sweep.conductance;
          balance = Metrics.balance g vertices;
          pushes;
          support = Hashtbl.length p }
  end

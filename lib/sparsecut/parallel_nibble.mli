(** RandomNibble and ParallelNibble (Appendix A.3–A.4).

    RandomNibble draws the start vertex from the degree distribution
    ψ_V and the scale b with Pr[b = i] ∝ 2^{-i}, then runs
    ApproximateNibble.

    ParallelNibble executes k = [Params.parallel_copies] RandomNibbles
    "simultaneously"; if any edge participates in more than
    w = 10⌈ln Vol(V)⌉ of them the whole call aborts with ∅ (the
    congestion failsafe of Lemma 7 — the event B), otherwise it
    returns the union U_{i*} of the first i* cuts, i* maximal with
    Vol(U_{i*}) ≤ (23/24)·Vol(V). *)

type t = {
  cut : int array; (** the returned set C (possibly empty), sorted *)
  rounds : int; (** measured simulated rounds (Lemma 10 accounting) *)
  copies : int; (** k *)
  aborted : bool; (** true iff the w-overlap cap was hit *)
  max_overlap : int; (** max per-edge participation observed *)
  nibbles : Nibble.outcome list; (** the underlying runs, in order *)
}

(** [random_nibble params g rng] is one RandomNibble run. *)
val random_nibble : Params.t -> Dex_graph.Graph.t -> Dex_util.Rng.t -> Nibble.outcome

(** [run ?k ?ledger params g rng] is ParallelNibble(G, φ); [k]
    overrides the number of copies (tests use this to force overlap).
    When [ledger] is given the accounted cost is also charged there,
    split into its Lemma 10 components under the labels
    ["nibble-generate"], ["nibble-execute"] and ["nibble-select"]. *)
val run :
  ?k:int -> ?ledger:Dex_congest.Rounds.t ->
  Params.t -> Dex_graph.Graph.t -> Dex_util.Rng.t -> t

(** Parameters of the Nibble family (the paper's Appendix A
    "Terminology"), derived from the target conductance φ and the
    ambient edge count m:

    {v
      ℓ     = ⌈log m⌉
      t₀    = c_t0 · ln(m·e²) / φ²
      f(φ)  = φ³ / (144 ln²(m·e⁴))
      γ     = 5φ / (7·7·8·ln(m·e⁴))
      ε_b   = φ / (7·8·ln(m·e⁴)·t₀·2^b)
    v}

    Two presets share the formulas and differ only in leading
    constants and iteration caps (see DESIGN.md §2): [theory] is
    paper-exact (c_t0 = 49, uncapped iteration counts — usable on tiny
    graphs only), [practical] shrinks c_t0 and caps the Partition /
    ParallelNibble repetition counts so benches terminate, preserving
    the asymptotic shapes. *)

type preset = Theory | Practical

type t = {
  preset : preset;
  phi : float; (** target conductance φ *)
  m : int; (** ambient edge count (volume/2 scale) *)
  ell : int; (** ℓ = ⌈log₂ m⌉: number of b-scales *)
  t0 : int; (** walk length *)
  gamma : float; (** γ: the ρ lower-bound scale of condition (C.2) *)
  f_phi : float; (** f(φ): conductance threshold for the target set S *)
  parallel_cap : int; (** upper cap on ParallelNibble copies *)
  partition_cap : int; (** upper cap on Partition iterations *)
  idle_limit : int; (** Partition stops after this many consecutive empty cuts *)
  sweep_stride : int;
  (** sweep-cut checks run at every step t ≤ 16 and then every
      [sweep_stride]-th step; 1 = the paper's every-step schedule *)
  c1_relaxed_factor : float;
  (** the multiplier of the relaxed conductance condition C.1-star:
      the paper's 12 under [Theory]; 3 under [Practical], where φ is
      large enough that 12φ would admit near-vacuous cuts *)
}

(** [should_sweep t step] decides whether the sweep-cut search runs at
    walk step [step] under [t]'s stride schedule. *)
val should_sweep : t -> int -> bool

(** [make ?preset ~phi ~m ()] derives all parameters; [phi] must be in
    (0, 1/12] (the precondition of Lemma 5 onward) and [m ≥ 1]. *)
val make : ?preset:preset -> phi:float -> m:int -> unit -> t

(** [eps_b t b] = ε_b, the truncation threshold at scale [b ∈ 1..ℓ]. *)
val eps_b : t -> int -> float

(** [parallel_copies t ~volume] is the paper's k:
    ⌈Vol(V) / (56·ℓ·(t₀+1)·t₀·ln(m·e⁴)·φ⁻¹)⌉, clamped to
    [1, parallel_cap]. *)
val parallel_copies : t -> volume:int -> int

(** [overlap_bound t ~volume] is w = 10·⌈ln Vol(V)⌉: the per-edge
    participation cap in ParallelNibble. *)
val overlap_bound : t -> volume:int -> int

(** [partition_iterations t ~volume ~p] is the paper's
    s = 4·g(φ,Vol)·⌈log_{7/4}(1/p)⌉, clamped to partition_cap. *)
val partition_iterations : t -> volume:int -> p:float -> int

(** [h phi] = Θ(φ^{1/3}·log^{5/3} n) — the conductance the sparse-cut
    algorithm guarantees on non-empty output (Theorem 3), with the
    Θ-constant taken as 1; [h_inverse] is its inverse
    Θ(θ³/log⁵ n). These drive the φ_i schedule of Theorem 1. *)
val h : n:int -> float -> float

val h_inverse : n:int -> float -> float

(** Andersen–Chung–Lang personalized-PageRank local clustering — the
    successor of the Nibble machinery in the local-clustering
    literature (cited lineage: Spielman–Teng [42] → ACL push), used
    here as an additional sparse-cut baseline.

    The push algorithm maintains a residual r and an approximation p
    of the PageRank vector ppr(α, χ_src); pushing a vertex moves an α
    fraction of its residual into p and spreads the rest over its
    neighbors, until every vertex satisfies r(v) < ε·deg(v). The
    sweep over p/deg then yields a cut of conductance
    O(√(φ·log m)) around any φ-sparse set containing the seed.

    The push loop is inherently sequential but local; its round-cost
    analogue is the number of pushes (each push is one neighborhood
    exchange). *)

type t = {
  cut : int array; (** best sweep prefix, sorted *)
  conductance : float;
  balance : float;
  pushes : int; (** push operations performed *)
  support : int; (** support size of the approximate PageRank *)
}

(** [run ?alpha ?eps g ~src] computes the approximate PageRank from
    [src] (teleport α, default 0.1; accuracy ε, default 1/(20·m)) and
    sweeps it. Returns [None] when no finite-conductance prefix
    exists (isolated seed). *)
val run : ?alpha:float -> ?eps:float -> Dex_graph.Graph.t -> src:int -> t option

(** [approximate_pagerank ?alpha ?eps g ~src] exposes the raw (p, r)
    pair for tests: p underestimates the true PageRank and every
    residual obeys r(v) < ε·deg(v) on return. *)
val approximate_pagerank :
  ?alpha:float -> ?eps:float -> Dex_graph.Graph.t -> src:int ->
  (int, float) Hashtbl.t * (int, float) Hashtbl.t * int

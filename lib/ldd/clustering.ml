module Graph = Dex_graph.Graph
module Network = Dex_congest.Network
module Rng = Dex_util.Rng

type t = {
  cluster : int array;
  start : int array;
  epochs : int;
  rounds : int;
}

type state = {
  start_epoch : int;
  cluster : int; (* -1 while unclustered *)
  announced : bool;
}

let run net ~beta rng =
  if beta <= 0.0 || beta >= 1.0 then invalid_arg "Clustering.run: beta in (0,1)";
  let g = Network.graph net in
  let n = Graph.num_vertices g in
  let horizon =
    max 1 (int_of_float (Float.ceil (2.0 *. log (Float.max 2.0 (float_of_int n)) /. beta)))
  in
  let starts =
    Array.init n (fun i ->
        let local = Rng.split rng i in
        let delta = Rng.exponential local ~rate:beta in
        max 1 (horizon - int_of_float (Float.floor delta)))
  in
  let init v = { start_epoch = starts.(v); cluster = -1; announced = false } in
  let step ~round ~vertex:v st inbox =
    let v = Dex_graph.Vertex.local_int v in
    let st =
      if st.cluster >= 0 then st
      else if st.start_epoch = round then { st with cluster = v }
      else if st.start_epoch > round then begin
        (* join the smallest-id cluster among announcing neighbors *)
        match inbox with
        | [] -> st
        | _ :: _ ->
          let best =
            List.fold_left (fun acc (_, msg) -> min acc msg.(0)) max_int inbox
          in
          { st with cluster = best }
      end
      else st
    in
    if st.cluster >= 0 && not st.announced then begin
      let outbox = ref [] in
      Graph.iter_neighbors g v (fun u -> outbox := (u, [| st.cluster |]) :: !outbox);
      ({ st with announced = true }, !outbox)
    end
    else (st, [])
  in
  let states = Network.run_rounds net ~label:"mpx-clustering" ~init ~step horizon in
  (* one trailing epoch so vertices whose wake-up coincided with the
     horizon still announce is unnecessary: every vertex self-clusters
     at its start epoch at the latest, and start epochs are <= horizon *)
  let cluster = Array.map (fun st -> st.cluster) states in
  Array.iteri
    (fun v c -> if c < 0 then failwith (Printf.sprintf "Clustering: vertex %d unclustered" v))
    cluster;
  { cluster; start = starts; epochs = horizon; rounds = horizon }

let clusters (t : t) =
  let tbl = Hashtbl.create 64 in
  Array.iteri
    (fun v c ->
      let members = try Hashtbl.find tbl c with Not_found -> [] in
      Hashtbl.replace tbl c (v :: members))
    t.cluster;
  Dex_util.Table.fold_sorted
    (fun _ members acc ->
      let arr = Array.of_list members in
      Array.sort compare arr;
      arr :: acc)
    tbl []

let inter_cluster_edges g (t : t) =
  let crossing = ref 0 in
  Graph.iter_edges g (fun u v ->
      if u <> v && t.cluster.(u) <> t.cluster.(v) then incr crossing);
  !crossing

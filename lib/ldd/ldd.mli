(** LowDiamDecomposition(β) — Theorem 4.

    1. Build the partition V = V_D ∪ V_S ({!Refine}).
    2. Run MPX {!Clustering} with parameter β.
    3. Cut only the inter-cluster edges with at least one endpoint in
       V_S; the output parts are the connected components left.

    W.h.p. every part has diameter O(log²n/β²) and at most 3β·|E|
    edges are cut — a high-probability version of the
    expectation-only guarantee of plain MPX, obtained because the cut
    events of V_S-incident edges have bounded dependence
    (Lemma 13 / Pemmaraju's Chernoff bound). *)

type t = {
  parts : int array list; (** the partition, each part sorted *)
  cut_edges : (int * int) list; (** removed edges, normalized u ≤ v *)
  rounds : int; (** total CONGEST rounds *)
  messages : int; (** messages delivered by the executed clustering *)
  words : int; (** machine words delivered by the executed clustering *)
  beta : float;
}

(** [run ?ka ?kb net ~beta rng] executes the decomposition on the
    network's graph; rounds are charged to the network ledger as well
    as reported in the result. [ka]/[kb] are the refinement radius
    constants (see {!Refine.run}; both default 5, the paper's
    values). *)
val run :
  ?ka:float -> ?kb:float ->
  Dex_congest.Network.t -> beta:float -> Dex_util.Rng.t -> t

(** [run_graph ?ka ?kb ?ledger ?vertex_map g ~beta rng] is [run] on a
    fresh single-use network. Charges go to [ledger] when given (so a
    caller's span structure and attached trace see this run), to a
    private throwaway ledger otherwise. [vertex_map] translates [g]'s
    vertex ids to original-graph ids for trace reporting — pass the
    mapping from the induced subgraph when decomposing a component. *)
val run_graph :
  ?ka:float -> ?kb:float ->
  ?ledger:Dex_congest.Rounds.t -> ?vertex_map:Dex_graph.Vertex.Map.t ->
  Dex_graph.Graph.t -> beta:float -> Dex_util.Rng.t -> t

(** [max_part_diameter g t] is the largest part diameter. *)
val max_part_diameter : Dex_graph.Graph.t -> t -> int

(** [diameter_bound ?ka ?kb ~n ~beta ()] is the certified
    Θ(log²n/β²) bound of Lemma 13 (2(d₁+1) + d₂ with the invariant-H
    constants), the value tests and benches verify measured diameters
    against. Pass the same [ka]/[kb] as the run. *)
val diameter_bound : ?ka:float -> ?kb:float -> n:int -> beta:float -> unit -> int

(** Ball edge counting — the |E(N^d(v))| queries of Lemmas 14–16.

    [E(N^d(v))] is the set of edges with both endpoints within hop
    distance d of v. The refinement step of LowDiamDecomposition
    classifies vertices by comparing ball edge counts at two radii.

    The simulation computes the counts centrally (exactly, with a
    whole-component shortcut when the radius dominates the component
    diameter) and charges the CONGEST cost of Lemma 16:
    O(d·log²n / f³) rounds for an (1+f)-approximate count at radius d. *)

(** [ball_edge_count g ~d v] = \|E(N^d(v))\| computed exactly by a
    depth-bounded BFS from [v]. *)
val ball_edge_count : Dex_graph.Graph.t -> d:int -> int -> int

(** [all_ball_edge_counts g ~d] computes the count for every vertex.
    When [d] is at least the component's diameter the component total
    is reused without per-vertex BFS. *)
val all_ball_edge_counts : Dex_graph.Graph.t -> d:int -> int array

(** [lemma16_rounds ~n ~d ~f] is the round charge of the distributed
    estimation algorithm of Lemma 16 with approximation [f]. *)
val lemma16_rounds : n:int -> d:int -> f:float -> int

module Graph = Dex_graph.Graph
module Metrics = Dex_graph.Metrics
module Union_find = Dex_util.Union_find

type t = {
  in_vd : bool array;
  a : int;
  b : int;
  iterations : int;
  rounds : int;
}

(* multi-source BFS restricted to depth [limit]; returns (dist, label)
   where label is the source-set label of the nearest source *)
let labeled_bfs g sources labels ~limit =
  let n = Graph.num_vertices g in
  let dist = Array.make n max_int in
  let label = Array.make n (-1) in
  let queue = Queue.create () in
  Array.iteri
    (fun i v ->
      if dist.(v) <> 0 then begin
        dist.(v) <- 0;
        label.(v) <- labels.(i);
        Queue.add v queue
      end)
    sources;
  while not (Queue.is_empty queue) do
    let v = Queue.take queue in
    if dist.(v) < limit then
      Graph.iter_neighbors g v (fun u ->
          if dist.(u) = max_int then begin
            dist.(u) <- dist.(v) + 1;
            label.(u) <- label.(v);
            Queue.add u queue
          end)
  done;
  (dist, label)

let run ?(ka = 5.0) ?(kb = 5.0) g ~beta =
  if beta <= 0.0 || beta >= 1.0 then invalid_arg "Refine.run: beta in (0,1)";
  let n = Graph.num_vertices g in
  if n = 0 then { in_vd = [||]; a = 1; b = 1; iterations = 0; rounds = 0 }
  else begin
    let ln_n = log (Float.max 2.0 (float_of_int n)) in
    let a = max 1 (int_of_float (Float.ceil (ka *. ln_n /. beta))) in
    let b = max 1 (int_of_float (Float.ceil (kb *. ln_n /. beta))) in
    let rounds = ref 0 in
    (* auxiliary partition: V'_D by ball density at radii a vs 100ab *)
    let near = Neighborhood.all_ball_edge_counts g ~d:a in
    let cap r = min r (2 * n) in
    let far = Neighborhood.all_ball_edge_counts g ~d:(cap (100 * a * b)) in
    rounds := !rounds + Neighborhood.lemma16_rounds ~n ~d:a ~f:0.5;
    (* a vertex in the overlap region (far/2b ≤ near ≤ far/b) may go to
       either side; prefer V'_S so the clustering cuts materialize.
       V'_D members then satisfy near > far/b ≥ far/2b as required. *)
    let in_vd_aux = Array.init n (fun v -> b * near.(v) > far.(v)) in
    (* W_0 = radius-a ball around V'_D *)
    let vd_aux = Metrics.vertices_of_mask in_vd_aux in
    let in_w = Array.make n false in
    if Array.length vd_aux > 0 then begin
      let dist0, _ =
        labeled_bfs g vd_aux (Array.map (fun _ -> 0) vd_aux) ~limit:a
      in
      Array.iteri (fun v d -> if d <> max_int && d <= a then in_w.(v) <- true) dist0
    end;
    rounds := !rounds + a;
    (* grow W: merge components within distance a, inflate by radius a *)
    let iterations = ref 0 in
    let stable = ref false in
    while not !stable do
      incr iterations;
      let w = Metrics.vertices_of_mask in_w in
      if Array.length w = 0 then stable := true
      else begin
        (* component labels inside W *)
        let comp_of = Array.make n (-1) in
        let comps = ref 0 in
        let queue = Queue.create () in
        Array.iter
          (fun src ->
            if comp_of.(src) = -1 then begin
              let c = !comps in
              incr comps;
              comp_of.(src) <- c;
              Queue.add src queue;
              while not (Queue.is_empty queue) do
                let v = Queue.take queue in
                Graph.iter_neighbors g v (fun u ->
                    if in_w.(u) && comp_of.(u) = -1 then begin
                      comp_of.(u) <- c;
                      Queue.add u queue
                    end)
              done
            end)
          w;
        let labels = Array.map (fun v -> comp_of.(v)) w in
        let dist, label = labeled_bfs g w labels ~limit:a in
        (* two components merge when some edge joins their ≤a halos *)
        let uf = Union_find.create !comps in
        let merged_any = ref false in
        Graph.iter_edges g (fun x y ->
            if
              x <> y && label.(x) >= 0 && label.(y) >= 0
              && label.(x) <> label.(y)
              && dist.(x) <> max_int && dist.(y) <> max_int
              && dist.(x) + dist.(y) + 1 <= a
            then if Union_find.union uf label.(x) label.(y) then merged_any := true);
        rounds := !rounds + (2 * a);
        if not !merged_any then stable := true
        else begin
          (* inflate exactly the components that found a near neighbor *)
          let group_size = Array.make !comps 0 in
          for c = 0 to !comps - 1 do
            let r = Union_find.find uf c in
            group_size.(r) <- group_size.(r) + 1
          done;
          let inflating c = group_size.(Union_find.find uf c) > 1 in
          let sources = Array.of_list (List.filter (fun v -> inflating comp_of.(v)) (Array.to_list w)) in
          let dist2, _ = labeled_bfs g sources (Array.map (fun _ -> 0) sources) ~limit:a in
          Array.iteri
            (fun v d -> if d <> max_int && d <= a then in_w.(v) <- true)
            dist2;
          rounds := !rounds + (2 * a)
        end
      end
    done;
    { in_vd = in_w; a; b; iterations = !iterations; rounds = !rounds }
  end

let vd_components g t =
  let members = Metrics.vertices_of_mask t.in_vd in
  if Array.length members = 0 then []
  else begin
    let sub, mapping = Graph.induced_subgraph g members in
    Metrics.connected_components sub
    |> List.map (fun comp -> Array.map (fun v -> mapping.(v)) comp)
  end

let check g t =
  let n = Graph.num_vertices g in
  (* V_D component diameters are O(ab): use the invariant-H bound
     10·a·N_S with N_S ≤ 2b, i.e. 20·a·b *)
  List.iter
    (fun comp ->
      let d = Metrics.subset_diameter g comp in
      if d > 20 * t.a * t.b then
        failwith
          (Printf.sprintf "Refine.check: V_D component diameter %d exceeds 20ab = %d" d
             (20 * t.a * t.b)))
    (vd_components g t);
  (* V_S density: |E(N^a(v))| ≤ |E|/b *)
  let m = Graph.num_edges g in
  for v = 0 to n - 1 do
    if not t.in_vd.(v) then begin
      let c = Neighborhood.ball_edge_count g ~d:t.a v in
      if c * t.b > m then
        failwith
          (Printf.sprintf "Refine.check: V_S vertex %d has dense ball (%d > %d/%d)" v c m
             t.b)
    end
  done

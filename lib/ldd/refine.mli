(** The V_D / V_S partition of Appendix B.1.

    Given β, set a = ⌈5·ln n/β⌉ and b = ⌈K·ln n/β⌉. The auxiliary
    partition puts v in V'_D when its radius-a ball is edge-dense
    relative to its radius-100ab ball (\|E(N^a(v))\| ≥
    \|E(N^{100ab}(v))\|/(2b)), else in V'_S. V_D then grows from
    W₀ = {u : dist(u, V'_D) ≤ a} by repeatedly merging components of W
    that come within distance a of each other and inflating them by a
    radius-a ball, until components are pairwise > a apart. The
    invariant H of Definition 3 bounds the growth: every component of
    V_D has diameter O(ab) and the loop ends within 2b iterations.

    Every vertex of V_S = V \ V_D satisfies \|E(N^a(v))\| ≤ \|E\|/b —
    the "good edge" property that powers the bounded-dependence
    Chernoff argument of Lemma 13. *)

type t = {
  in_vd : bool array; (** membership of V_D *)
  a : int; (** the separation radius a *)
  b : int; (** the density parameter b *)
  iterations : int; (** growth iterations executed (≤ 2b) *)
  rounds : int; (** CONGEST rounds charged (Lemma 21 cost model) *)
}

(** [run ?ka ?kb g ~beta] builds the partition with
    a = ⌈ka·ln n/β⌉ and b = ⌈kb·ln n/β⌉. The paper's constants are
    ka = 5 and kb = K (both default 5); smaller constants shrink the
    radii so that clustering is observable at simulation sizes — at
    the paper's constants the radius 100ab exceeds every simulatable
    graph and V_D degenerates to V (a valid but trivial output). *)
val run : ?ka:float -> ?kb:float -> Dex_graph.Graph.t -> beta:float -> t

(** [check g t] verifies the two output conditions (component
    separation > a would need all-pairs distances, so we verify the
    per-component diameter O(ab) bound and the V_S ball-density
    bound); raises [Failure] on violation. For tests. *)
val check : Dex_graph.Graph.t -> t -> unit

module Graph = Dex_graph.Graph
module Metrics = Dex_graph.Metrics

let ball_edge_count g ~d v =
  if d < 0 then invalid_arg "Neighborhood.ball_edge_count: negative radius";
  (* depth-bounded BFS collecting the ball, then count internal edges;
     self-loops of ball members count as edges of the ball *)
  let dist = Hashtbl.create 64 in
  Hashtbl.replace dist v 0;
  let queue = Queue.create () in
  Queue.add v queue;
  while not (Queue.is_empty queue) do
    let x = Queue.take queue in
    let dx = Hashtbl.find dist x in
    if dx < d then
      Graph.iter_neighbors g x (fun y ->
          if not (Hashtbl.mem dist y) then begin
            Hashtbl.replace dist y (dx + 1);
            Queue.add y queue
          end)
  done;
  let count = ref 0 in
  Dex_util.Table.iter_sorted
    (fun x _ ->
      count := !count + Graph.self_loops g x;
      Graph.iter_neighbors g x (fun y ->
          if (y > x || (y = x)) && Hashtbl.mem dist y then incr count))
    dist;
  !count

let all_ball_edge_counts g ~d =
  let n = Graph.num_vertices g in
  let out = Array.make n 0 in
  let comps = Metrics.connected_components g in
  List.iter
    (fun comp ->
      (* total edges inside the component *)
      let mask = Metrics.mask_of g comp in
      let total = ref 0 in
      Graph.iter_edges g (fun u v -> if mask.(u) && (u = v || mask.(v)) then incr total);
      (* if the radius covers the component, every ball is the component *)
      let representative = comp.(0) in
      let ecc =
        let dist = Metrics.bfs_distances g representative in
        Array.fold_left
          (fun acc v -> max acc (if dist.(v) = max_int then 0 else dist.(v)))
          0 (Array.init (Array.length comp) (fun i -> comp.(i)))
      in
      if d >= 2 * ecc then Array.iter (fun v -> out.(v) <- !total) comp
      else Array.iter (fun v -> out.(v) <- ball_edge_count g ~d v) comp)
    comps;
  out

let lemma16_rounds ~n ~d ~f =
  if f <= 0.0 || f >= 1.0 then invalid_arg "Neighborhood.lemma16_rounds: f in (0,1)";
  let lf = log (Float.max 2.0 (float_of_int n)) in
  int_of_float (Float.ceil (float_of_int d *. lf *. lf /. (f ** 3.0)))

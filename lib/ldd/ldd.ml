module Graph = Dex_graph.Graph
module Metrics = Dex_graph.Metrics
module Network = Dex_congest.Network
module Rounds = Dex_congest.Rounds

type t = {
  parts : int array list;
  cut_edges : (int * int) list;
  rounds : int;
  messages : int;
  words : int;
  beta : float;
}

let run ?ka ?kb net ~beta rng =
  let g = Network.graph net in
  let ledger = Network.rounds net in
  let before = Rounds.total ledger in
  let msgs_before = Network.messages_sent net in
  let words_before = Network.words_sent net in
  let refine = Refine.run ?ka ?kb g ~beta in
  Network.charge net ~label:"ldd-refine" refine.Refine.rounds;
  let clustering = Clustering.run net ~beta rng in
  (* keep inter-cluster edges whose endpoints are both deep in V_D *)
  let cut = ref [] in
  Graph.iter_edges g (fun u v ->
      if
        u <> v
        && clustering.Clustering.cluster.(u) <> clustering.Clustering.cluster.(v)
        && ((not refine.Refine.in_vd.(u)) || not refine.Refine.in_vd.(v))
      then cut := (u, v) :: !cut);
  let remaining = Graph.remove_edges g !cut in
  let parts = Metrics.connected_components remaining in
  let after = Rounds.total ledger in
  { parts;
    cut_edges = !cut;
    rounds = after - before;
    messages = Network.messages_sent net - msgs_before;
    words = Network.words_sent net - words_before;
    beta }

let run_graph ?ka ?kb ?ledger ?vertex_map g ~beta rng =
  let ledger = match ledger with Some l -> l | None -> Rounds.create () in
  let net = Network.create ?vertex_map g ledger in
  run ?ka ?kb net ~beta rng

let max_part_diameter g t =
  List.fold_left (fun acc part -> max acc (Metrics.subset_diameter g part)) 0 t.parts

let diameter_bound ?(ka = 5.0) ?(kb = 5.0) ~n ~beta () =
  (* Lemma 13: diameter ≤ 2(d₁+1) + d₂ with d₁ = 4·ln n/β the cluster
     diameter bound and d₂ ≤ 20·a·b the invariant-H bound on V_D
     components (a = ⌈ka·ln n/β⌉, b = ⌈kb·ln n/β⌉) — Θ(log²n/β²). *)
  let lf = log (Float.max 2.0 (float_of_int n)) in
  let a = Float.ceil (ka *. lf /. beta) in
  let b = Float.ceil (kb *. lf /. beta) in
  let d1 = Float.ceil (4.0 *. lf /. beta) in
  int_of_float ((2.0 *. (d1 +. 1.0)) +. (20.0 *. a *. b))

(** Miller–Peng–Xu exponential-shift clustering — the algorithm
    Clustering(β) of Appendix B, executed as a real message-passing
    protocol on the CONGEST kernel.

    Every vertex draws δ_v ~ Exponential(β) and wakes up at epoch
    start_v = max(1, ⌈2·ln n/β⌉ - ⌊δ_v⌋). An awake unclustered vertex
    becomes a cluster center; an unclustered vertex adjacent to a
    clustered one joins that cluster (ties broken by smallest cluster
    id). The protocol runs for ⌈2·ln n/β⌉ epochs = rounds, after which
    every vertex is clustered; each cluster has radius ≤ 2·ln n/β from
    its center, and each edge is inter-cluster with probability ≤ 2β
    (Lemma 12). *)

type t = {
  cluster : int array; (** cluster center id per vertex *)
  start : int array; (** the start epoch each vertex drew *)
  epochs : int; (** number of epochs executed *)
  rounds : int; (** CONGEST rounds charged (= epochs) *)
}

(** [run net ~beta rng] executes Clustering(beta) on the network.
    [beta] must be in (0, 1). *)
val run : Dex_congest.Network.t -> beta:float -> Dex_util.Rng.t -> t

(** [clusters t] groups vertices by cluster, each sorted. *)
val clusters : t -> int array list

(** [inter_cluster_edges g t] counts edges whose endpoints disagree. *)
val inter_cluster_edges : Dex_graph.Graph.t -> t -> int

module Graph = Dex_graph.Graph

type result = {
  triangles : Exact.triangle list;
  complete : bool;
  rounds : int;
  groups : int;
  triples : int;
  max_receive_words : int;
  max_send_words : int;
}

let group_of ~n ~groups v =
  if n = 0 then 0 else min (groups - 1) (v * groups / n)

(* index of the unordered triple (a ≤ b ≤ c) in the enumeration order
   used to assign triples to vertices round-robin *)
let triple_list groups =
  let acc = ref [] in
  for a = 0 to groups - 1 do
    for b = a to groups - 1 do
      for c = b to groups - 1 do
        acc := (a, b, c) :: !acc
      done
    done
  done;
  Array.of_list (List.rev !acc)

let run g =
  let n = Graph.num_vertices g in
  if n = 0 then
    { triangles = [];
      complete = true;
      rounds = 0;
      groups = 0;
      triples = 0;
      max_receive_words = 0;
      max_send_words = 0 }
  else begin
    let groups = max 1 (int_of_float (Float.ceil (float_of_int n ** (1.0 /. 3.0)))) in
    let grp = group_of ~n ~groups in
    let triples = triple_list groups in
    let t_count = Array.length triples in
    let owner i = i mod n in
    (* per group-pair edge counts from the real graph; pair key (a ≤ b) *)
    let pair_edges = Hashtbl.create (groups * groups) in
    Graph.iter_edges g (fun u v ->
        if u <> v then begin
          let a = grp u and b = grp v in
          let key = (min a b, max a b) in
          Hashtbl.replace pair_edges key
            (1 + try Hashtbl.find pair_edges key with Not_found -> 0)
        end);
    let pair_count key = try Hashtbl.find pair_edges key with Not_found -> 0 in
    (* interest: how many owners need each pair (an owner of (A,B,C)
       needs pairs AB, BC, AC — deduplicated when groups repeat) *)
    let pair_interest = Hashtbl.create (groups * groups) in
    let receive = Array.make n 0 in
    Array.iteri
      (fun i (a, b, c) ->
        let v = owner i in
        let pairs = List.sort_uniq compare [ (a, b); (b, c); (a, c) ] in
        List.iter
          (fun key ->
            receive.(v) <- receive.(v) + pair_count key;
            Hashtbl.replace pair_interest key
              (1 + try Hashtbl.find pair_interest key with Not_found -> 0))
          pairs)
      triples;
    (* sending load: the lower endpoint of each edge ships it to every
       interested owner *)
    let send = Array.make n 0 in
    Graph.iter_edges g (fun u v ->
        if u <> v then begin
          let key = (min (grp u) (grp v), max (grp u) (grp v)) in
          let interest = try Hashtbl.find pair_interest key with Not_found -> 0 in
          send.(min u v) <- send.(min u v) + interest
        end);
    let max_receive = Array.fold_left max 0 receive in
    let max_send = Array.fold_left max 0 send in
    let per_round = max 1 (n - 1) in
    let rounds =
      ((max_receive + per_round - 1) / per_round)
      + ((max_send + per_round - 1) / per_round)
      + 2 (* Lenzen routing setup + result announcement *)
    in
    (* detection: a triangle's sorted group signature is owned by
       exactly one vertex, which knows all three pair edge sets *)
    let triple_index = Hashtbl.create t_count in
    Array.iteri (fun i t -> Hashtbl.replace triple_index t i) triples;
    let detected = ref [] in
    let complete = ref true in
    Exact.iter g (fun (u, v, w) ->
        let sig_ = List.sort compare [ grp u; grp v; grp w ] in
        match sig_ with
        | [ a; b; c ] ->
          if Hashtbl.mem triple_index (a, b, c) then detected := (u, v, w) :: !detected
          else complete := false
        | _ -> complete := false);
    let triangles = List.sort compare !detected in
    { triangles;
      complete = !complete && List.length triangles = Exact.count g;
      rounds;
      groups;
      triples = t_count;
      max_receive_words = max_receive;
      max_send_words = max_send }
  end

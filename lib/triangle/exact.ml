module Graph = Dex_graph.Graph

type triangle = int * int * int

let rank g v = (Graph.plain_degree g v, v)

let forward_lists g =
  let n = Graph.num_vertices g in
  let out = Array.make n [] in
  Graph.iter_edges g (fun u v ->
      if u <> v then begin
        (* deduplicate parallel edges: sorted adjacency makes repeats
           adjacent, but iter_edges may revisit; a triangle is a set of
           vertices, so duplicates only risk double counting — filter *)
        if rank g u < rank g v then out.(u) <- v :: out.(u) else out.(v) <- u :: out.(v)
      end);
  Array.map
    (fun l ->
      let a = Array.of_list l in
      Array.sort compare a;
      (* drop duplicates from parallel edges *)
      let uniq = ref [] in
      Array.iteri (fun i x -> if i = 0 || a.(i - 1) <> x then uniq := x :: !uniq) a;
      let u = Array.of_list (List.rev !uniq) in
      u)
    out

let iter g f =
  let out = forward_lists g in
  let n = Graph.num_vertices g in
  let mark = Array.make n false in
  for u = 0 to n - 1 do
    let ou = out.(u) in
    Array.iter (fun v -> mark.(v) <- true) ou;
    Array.iter
      (fun v ->
        Array.iter
          (fun w ->
            if mark.(w) then begin
              let a = min u (min v w) and c = max u (max v w) in
              let b = u + v + w - a - c in
              f (a, b, c)
            end)
          out.(v))
      ou;
    Array.iter (fun v -> mark.(v) <- false) ou
  done

let enumerate g =
  let acc = ref [] in
  iter g (fun t -> acc := t :: !acc);
  List.sort compare !acc

let count g =
  let c = ref 0 in
  iter g (fun _ -> incr c);
  !c

let triangles_with_edge_pred g pred =
  let hit = ref [] and miss = ref [] in
  iter g (fun (u, v, w) ->
      if pred u v || pred v w || pred u w then hit := (u, v, w) :: !hit
      else miss := (u, v, w) :: !miss);
  (List.sort compare !hit, List.sort compare !miss)

(** Triangle enumeration through expander decomposition — Theorem 2
    (Section 3), following the Chang–Pettie–Zhang reduction:

    1. Compute an (ε, φ)-expander decomposition of the current edge
       set (ε ≤ 1/6 in the paper; here ε is a parameter and the
       measured fraction is checked).
    2. Within every component V_i, the vertices collectively learn all
       edges incident to V_i and check, DLP-style, every group triple
       — each vertex responsible for a share of triples proportional
       to its degree. Delivering the edge lists takes
       [instances_i = ⌈3·g·m_inc(V_i)/Vol(V_i)⌉] routing queries with
       g = ⌈n^{1/3}⌉ groups (measured from the actual incidence
       counts), each query costing the GKS structure's measured query
       time. Every triangle with at least one intra-component edge is
       detected here.
    3. Recurse on E-star, the inter-component edges; only triangles
       with all three edges in E-star survive a level. ε ≤ 1/2 means
       O(log m) levels.

    Detection itself is executed centrally per component (the set
    equality with ground truth is asserted by tests); the round
    figures are measured per the cost model above. *)

type level_report = {
  level : int;
  edges : int; (** edges alive at this level *)
  components : int;
  detected : int; (** triangles detected at this level *)
  decomposition_rounds : int;
  routing_preprocess_rounds : int; (** max over components *)
  routing_query_rounds : int; (** max over components: instances × query *)
  max_instances : int; (** max routing instances per component *)
}

type result = {
  triangles : Exact.triangle list; (** all detected triangles, sorted *)
  levels : level_report list;
  total_rounds : int;
  enumeration_rounds : int;
  (** total minus the decomposition rounds: the part whose scaling is
      the Õ(n^{1/3}) headline (the decomposition is o(n^{1/3}) only
      asymptotically; at simulation sizes its polylog constants
      dominate — see EXPERIMENTS.md) *)
  messages : int;
      (** messages delivered by the executed protocols across all
          levels (the LDD clusterings inside each decomposition) *)
  words : int; (** machine words delivered, same scope as [messages] *)
  complete : bool; (** detected set equals ground truth *)
}

(** [run ?preset ?ledger ?epsilon ?k_decomp ?k_routing g rng]
    enumerates all triangles of [g]. Defaults: ε = 1/6, k_decomp = 2,
    routing k chosen by {!Dex_routing.Hierarchy.best_k_for} per
    component. With a [ledger], the run sits in a ["triangles"] span
    with one ["level-<i>"] span per recursion level (each containing
    its decomposition's spans) and the accounted routing costs are
    charged under ["routing-preprocess"]/["routing-query"] (and
    ["residual-trivial"] for the fallback exchange). *)
val run :
  ?preset:Dex_sparsecut.Params.preset ->
  ?ledger:Dex_congest.Rounds.t ->
  ?epsilon:float -> ?k_decomp:int -> ?k_routing:int ->
  Dex_graph.Graph.t -> Dex_util.Rng.t -> result

(** [instances_for ~n ~incident ~volume] is the measured routing
    instance count ⌈3·⌈n^{1/3}⌉·incident/volume⌉ of one component. *)
val instances_for : n:int -> incident:int -> volume:int -> int

(** One or more verified enumeration attempts: the complete (or, on
    [Error], the last incomplete) result, the attempts used and the
    rounds summed across all of them. *)
type attempt_outcome = { value : result; attempts : int; rounds_total : int }

(** [run_verified ?preset ?ledger ?epsilon ?k_decomp ?k_routing
    ?attempts g rng] is the Las Vegas wrapper around {!run}: each
    attempt's detected set is checked against the exact ground truth
    ([complete]) and the enumeration re-runs with fresh randomness on
    a miss, up to [attempts] times (default 3). [Error] carries the
    last attempt — typed failure, no exception. With a [ledger]
    carrying a trace, each verdict emits a retry event labeled
    ["triangles"]. *)
val run_verified :
  ?preset:Dex_sparsecut.Params.preset ->
  ?ledger:Dex_congest.Rounds.t ->
  ?epsilon:float -> ?k_decomp:int -> ?k_routing:int ->
  ?attempts:int ->
  Dex_graph.Graph.t -> Dex_util.Rng.t ->
  (attempt_outcome, attempt_outcome) Stdlib.result

(** Baseline triangle-enumeration round costs, measured per graph.

    These are the comparison lines of experiment E7:

    - {b trivial CONGEST}: every vertex ships its adjacency list to
      every neighbor, then checks wedges locally. The round cost is
      the worst per-edge load: max_v ⌈(Σ_{u∈N(v)} deg u)/deg v⌉.
    - {b Dolev–Lenzen–Peled} (CONGESTED-CLIQUE): the deterministic
      n^{1/3} partition algorithm; rounds measured from the actual
      group-pair edge counts of the input graph with all-to-all
      bandwidth n-1 words/round.
    - {b Izumi–Le Gall} CONGEST bound Õ(n^{3/4}): included as the
      analytic reference line c·n^{3/4}·log n (their algorithm
      pre-dates expander decompositions and is not reimplemented;
      see DESIGN.md). *)

(** [trivial_rounds g] — measured, the all-neighborhood exchange. *)
val trivial_rounds : Dex_graph.Graph.t -> int

(** [dlp_clique_rounds g rng] — measured on a uniformly random group
    assignment with g = ⌈n^{1/3}⌉ groups. *)
val dlp_clique_rounds : Dex_graph.Graph.t -> Dex_util.Rng.t -> int

(** [izumi_le_gall_rounds ~n] = ⌈n^{3/4}·log₂ n⌉. *)
val izumi_le_gall_rounds : n:int -> int

(** [lower_bound_rounds ~n] = ⌈n^{1/3}/log₂ n⌉, the Izumi–Le Gall /
    Pandurangan–Robinson–Scquizzato lower bound every algorithm is
    plotted against. *)
val lower_bound_rounds : n:int -> int

(** Dolev–Lenzen–Peled "Tri, tri again" (DISC 2012) — the
    deterministic O(n^{1/3}/log n)-round CONGESTED-CLIQUE triangle
    enumeration the paper cites as the optimal clique-model algorithm.

    The reproduction runs the real combinatorial structure on the
    input graph: vertices are split into g = ⌈n^{1/3}⌉ balanced
    groups; each of the ~g³/6 unordered group triples (A, B, C) is
    assigned to a vertex, which must learn the three bipartite edge
    sets E(A,B), E(B,C), E(A,C) and reports the triangles inside its
    triple. Word loads (per receiver and per sender) are counted from
    the actual graph, and the round figure assumes Lenzen's O(1)-round
    balanced routing primitive, exactly as DLP do:

    rounds = ⌈max_v receive(v)/(n-1)⌉ + ⌈max_v send(v)/(n-1)⌉ + O(1).

    Every triangle is detected by the owner of its group signature;
    completeness against ground truth is part of the result. *)

type result = {
  triangles : Exact.triangle list; (** detected, sorted *)
  complete : bool; (** equals ground truth *)
  rounds : int;
  groups : int; (** g *)
  triples : int; (** number of group triples *)
  max_receive_words : int; (** heaviest receiver load *)
  max_send_words : int; (** heaviest sender load *)
}

(** [run g] executes the algorithm structure on [g]. *)
val run : Dex_graph.Graph.t -> result

(** [group_of ~n ~groups v] is the balanced block id of [v]. *)
val group_of : n:int -> groups:int -> int -> int

module Graph = Dex_graph.Graph
module Decomposition = Dex_decomp.Decomposition
module Hierarchy = Dex_routing.Hierarchy
module Rounds = Dex_congest.Rounds
module Trace = Dex_obs.Trace
module Rng = Dex_util.Rng

type level_report = {
  level : int;
  edges : int;
  components : int;
  detected : int;
  decomposition_rounds : int;
  routing_preprocess_rounds : int;
  routing_query_rounds : int;
  max_instances : int;
}

type result = {
  triangles : Exact.triangle list;
  levels : level_report list;
  total_rounds : int;
  enumeration_rounds : int;
  messages : int;
  words : int;
  complete : bool;
}

let instances_for ~n ~incident ~volume =
  let groups = max 1 (int_of_float (Float.ceil (float_of_int n ** (1.0 /. 3.0)))) in
  max 1 (int_of_float (Float.ceil (3.0 *. float_of_int groups *. float_of_int incident /. float_of_int (max 1 volume))))

let run ?preset ?ledger ?(epsilon = 1.0 /. 6.0) ?(k_decomp = 2) ?k_routing g rng =
  let in_span name f =
    match ledger with Some l -> Rounds.with_span l name f | None -> f ()
  in
  let charge label k =
    match ledger with Some l -> Rounds.charge l ~label k | None -> ()
  in
  let n = Graph.num_vertices g in
  let ground_truth = Exact.enumerate g in
  let detected = Hashtbl.create (2 * List.length ground_truth + 16) in
  let levels = ref [] in
  let total_rounds = ref 0 in
  let enumeration_rounds = ref 0 in
  let messages = ref 0 in
  let words = ref 0 in
  let current = ref g in
  let level = ref 0 in
  let max_levels =
    2 * max 1 (int_of_float (Float.ceil (log (Float.max 2.0 (float_of_int (Graph.num_edges g))) /. log 2.0)))
  in
  let continue = ref (Graph.num_plain_edges g > 0) in
  in_span "triangles" @@ fun () ->
  while !continue && !level < max_levels do
    incr level;
    in_span (Printf.sprintf "level-%d" !level) @@ fun () ->
    let gcur = !current in
    let decomp = Decomposition.run ?preset ?ledger ~epsilon ~k:k_decomp gcur rng in
    total_rounds := !total_rounds + decomp.Decomposition.stats.Decomposition.rounds;
    messages := !messages + decomp.Decomposition.stats.Decomposition.messages;
    words := !words + decomp.Decomposition.stats.Decomposition.words;
    let part_of = decomp.Decomposition.part_of in
    (* triangles of the current graph with ≥1 intra-component edge are
       detected at this level: the component owning that edge learns
       every edge incident to itself, which includes the other two *)
    let intra u v = part_of.(u) = part_of.(v) in
    let found, _survive = Exact.triangles_with_edge_pred gcur intra in
    let fresh = ref 0 in
    List.iter
      (fun t ->
        if not (Hashtbl.mem detected t) then begin
          Hashtbl.replace detected t ();
          incr fresh
        end)
      found;
    (* measured routing cost per component, components in parallel *)
    let max_pre = ref 0 and max_query = ref 0 and max_inst = ref 0 in
    List.iter
      (fun part ->
        if Array.length part > 1 then begin
          let sub, _ = Graph.induced_subgraph gcur part in
          if Graph.num_plain_edges sub > 0 then begin
            (* edges of the current graph incident to the component *)
            let mask = Dex_graph.Metrics.mask_of gcur part in
            let incident = ref 0 in
            Graph.iter_edges gcur (fun u v ->
                if u <> v && (mask.(u) || mask.(v)) then incr incident);
            let volume = Graph.volume gcur part in
            let instances = instances_for ~n ~incident:!incident ~volume in
            let hierarchy =
              match k_routing with
              | Some k -> Hierarchy.build sub rng ~k
              | None -> Hierarchy.best_k_for sub rng ~queries:instances ~k_max:4
            in
            max_pre := max !max_pre hierarchy.Hierarchy.preprocess_rounds;
            max_query := max !max_query (instances * hierarchy.Hierarchy.query_rounds);
            max_inst := max !max_inst instances
          end
        end)
      decomp.Decomposition.parts;
    total_rounds := !total_rounds + !max_pre + !max_query;
    enumeration_rounds := !enumeration_rounds + !max_pre + !max_query;
    charge "routing-preprocess" !max_pre;
    charge "routing-query" !max_query;
    levels :=
      { level = !level;
        edges = Graph.num_plain_edges gcur;
        components = List.length decomp.Decomposition.parts;
        detected = !fresh;
        decomposition_rounds = decomp.Decomposition.stats.Decomposition.rounds;
        routing_preprocess_rounds = !max_pre;
        routing_query_rounds = !max_query;
        max_instances = !max_inst }
      :: !levels;
    (* recurse on E-star = inter-component edges *)
    let estar = ref [] in
    Graph.iter_edges gcur (fun u v ->
        if u <> v && part_of.(u) <> part_of.(v) then estar := (u, v) :: !estar);
    let next = Graph.of_edges ~n !estar in
    if Graph.num_plain_edges next = 0 then continue := false
    else if Graph.num_plain_edges next >= Graph.num_plain_edges gcur then begin
      (* no progress (decomposition kept everything separate):
         fall back to detecting the rest locally — costs the trivial
         exchange on the residual graph *)
      let rest = Exact.enumerate next in
      List.iter (fun t -> Hashtbl.replace detected t ()) rest;
      let cost = Baselines.trivial_rounds next in
      total_rounds := !total_rounds + cost;
      enumeration_rounds := !enumeration_rounds + cost;
      charge "residual-trivial" cost;
      continue := false
    end
    else current := next
  done;
  let triangles = Dex_util.Table.keys_sorted detected in
  { triangles;
    levels = List.rev !levels;
    total_rounds = !total_rounds;
    enumeration_rounds = !enumeration_rounds;
    messages = !messages;
    words = !words;
    complete = triangles = ground_truth }

type attempt_outcome = { value : result; attempts : int; rounds_total : int }

let run_verified ?preset ?ledger ?epsilon ?k_decomp ?k_routing ?(attempts = 3) g rng =
  if attempts < 1 then invalid_arg "Expander_enum.run_verified: attempts must be >= 1";
  let retry certified i =
    match ledger with
    | Some l ->
      (match Rounds.trace l with
      | Some tr -> Trace.retry tr ~label:"triangles" ~attempt:i ~certified
      | None -> ())
    | None -> ()
  in
  let rounds_total = ref 0 in
  let rec go i =
    let r = run ?preset ?ledger ?epsilon ?k_decomp ?k_routing g (Rng.split rng i) in
    rounds_total := !rounds_total + r.total_rounds;
    retry r.complete i;
    if r.complete then Ok { value = r; attempts = i; rounds_total = !rounds_total }
    else if i >= attempts then
      Error { value = r; attempts = i; rounds_total = !rounds_total }
    else go (i + 1)
  in
  go 1

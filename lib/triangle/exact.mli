(** Ground-truth triangle enumeration (centralized).

    The forward algorithm: orient every edge from lower to higher
    degree (ties by id) and intersect out-neighborhoods — O(m^{3/2})
    and the reference answer every distributed algorithm is checked
    against. *)

(** A triangle as an ordered triple [u < v < w]. *)
type triangle = int * int * int

(** [enumerate g] lists all triangles, sorted. Self-loops and parallel
    edges never form triangles. *)
val enumerate : Dex_graph.Graph.t -> triangle list

(** [count g] is [List.length (enumerate g)] without materializing. *)
val count : Dex_graph.Graph.t -> int

(** [iter g f] calls [f] on each triangle once. *)
val iter : Dex_graph.Graph.t -> (triangle -> unit) -> unit

(** [triangles_with_edge_pred g pred] lists the triangles for which at
    least one edge satisfies [pred u v] (with u < v) — the helper the
    expander-decomposition enumerator uses to split "detected at this
    level" from "survives into E-star". *)
val triangles_with_edge_pred :
  Dex_graph.Graph.t -> (int -> int -> bool) -> triangle list * triangle list

module Graph = Dex_graph.Graph
module Rng = Dex_util.Rng

let trivial_rounds g =
  let n = Graph.num_vertices g in
  let worst = ref 0 in
  for v = 0 to n - 1 do
    let deg = Graph.plain_degree g v in
    if deg > 0 then begin
      let incoming = ref 0 in
      Graph.iter_neighbors g v (fun u -> incoming := !incoming + Graph.plain_degree g u);
      worst := max !worst ((!incoming + deg - 1) / deg)
    end
  done;
  !worst

let dlp_clique_rounds g rng =
  let n = Graph.num_vertices g in
  if n = 0 then 0
  else begin
    let groups = max 1 (int_of_float (Float.ceil (float_of_int n ** (1.0 /. 3.0)))) in
    let group_of = Array.init n (fun _ -> Rng.int rng groups) in
    (* pairwise edge counts between groups, from the actual graph *)
    let pair_edges = Array.make_matrix groups groups 0 in
    Graph.iter_edges g (fun u v ->
        if u <> v then begin
          let a = group_of.(u) and b = group_of.(v) in
          pair_edges.(a).(b) <- pair_edges.(a).(b) + 1;
          if a <> b then pair_edges.(b).(a) <- pair_edges.(b).(a) + 1
        end);
    (* each vertex handles ~g³/n group triples; words per triple are
       the three pair edge sets; bandwidth n-1 words/round all-to-all *)
    let triples_total = groups * groups * groups in
    let per_vertex = (triples_total + n - 1) / n in
    (* average triple cost: sample the worst vertex as the one with the
       heaviest triples — conservatively use the max pair count *)
    let max_pair = ref 0 in
    for a = 0 to groups - 1 do
      for b = 0 to groups - 1 do
        if pair_edges.(a).(b) > !max_pair then max_pair := pair_edges.(a).(b)
      done
    done;
    let words = per_vertex * 3 * !max_pair in
    max 1 ((words + n - 2) / max 1 (n - 1))
  end

let izumi_le_gall_rounds ~n =
  let nf = float_of_int n in
  max 1 (int_of_float (Float.ceil ((nf ** 0.75) *. (log nf /. log 2.0))))

let lower_bound_rounds ~n =
  let nf = float_of_int n in
  max 1 (int_of_float (Float.ceil ((nf ** (1.0 /. 3.0)) /. (log nf /. log 2.0))))

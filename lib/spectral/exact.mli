(** Exact cut computations by subset enumeration — ground truth for
    testing the approximation guarantees on small graphs (n ≤ ~20). *)

(** [min_conductance g] is Φ_G = min over non-degenerate cuts S of
    Φ(S), together with a witness S. Raises [Invalid_argument] when
    [n > 24] (2^n enumeration) or when no non-degenerate cut exists. *)
val min_conductance : Dex_graph.Graph.t -> float * int array

(** [most_balanced_sparse_cut g ~phi] is the cut of conductance ≤ phi
    maximizing balance, if any: the paper's quantity b = bal(S) in
    Theorem 3. Same size limit. *)
val most_balanced_sparse_cut : Dex_graph.Graph.t -> phi:float -> (float * int array) option

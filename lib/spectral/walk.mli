(** Lazy random walks.

    The walk matrix is M = (A·D⁻¹ + I)/2 (the paper's Appendix A): in
    one step half the mass stays put and half spreads across incident
    edges. A self-loop at [v] routes its share of the moving mass back
    to [v], which is what makes the saturated subgraph G{S} behave
    like G for walk purposes.

    Distributions come in a dense form (float arrays indexed by
    vertex) and a sparse form (hash tables over the support) — the
    sparse form is what makes truncated Nibble walks cheap. *)

type sparse = (int, float) Hashtbl.t

(** [indicator v] is χ_v as a sparse distribution. *)
val indicator : int -> sparse

(** [degree_distribution g] is ψ_V: mass deg(v)/Vol(V) at each v. *)
val degree_distribution : Dex_graph.Graph.t -> float array

(** [step_dense g p] is M·p for a dense distribution. *)
val step_dense : Dex_graph.Graph.t -> float array -> float array

(** [step_sparse g p] is M·p for a sparse distribution. *)
val step_sparse : Dex_graph.Graph.t -> sparse -> sparse

(** [truncate g ~eps p] is the paper's [\[p\]_ε]: zero out entries with
    [p(v) < 2·eps·deg(v)] (in place on a copy; the argument is not
    modified). *)
val truncate : Dex_graph.Graph.t -> eps:float -> sparse -> sparse

(** [walk_from g ~src ~steps] runs [steps] un-truncated dense steps
    from χ_src. *)
val walk_from : Dex_graph.Graph.t -> src:int -> steps:int -> float array

(** [truncated_walk g ~src ~eps ~steps] runs the truncated walk
    p̃_t = \[M·p̃_{t-1}\]_ε and returns the distributions p̃_0 … p̃_steps
    (index t = step count). This is the computation at the heart of
    Nibble. *)
val truncated_walk :
  Dex_graph.Graph.t -> src:int -> eps:float -> steps:int -> sparse array

(** [rho g p v] is p(v)/deg(v), the normalized mass ρ(v); 0 when
    deg(v) = 0 or v unsupported. *)
val rho : Dex_graph.Graph.t -> sparse -> int -> float

(** [mass p] is the total mass of a sparse distribution. *)
val mass : sparse -> float

(** [support p] is the supported vertex list, unsorted. *)
val support : sparse -> int list

module Graph = Dex_graph.Graph

type sparse = (int, float) Hashtbl.t

let indicator v =
  let t = Hashtbl.create 4 in
  Hashtbl.replace t v 1.0;
  t

let degree_distribution g =
  let total = float_of_int (Graph.total_volume g) in
  Array.init (Graph.num_vertices g) (fun v -> float_of_int (Graph.degree g v) /. total)

let step_dense g p =
  let n = Graph.num_vertices g in
  let q = Array.make n 0.0 in
  for v = 0 to n - 1 do
    let mass = p.(v) in
    if mass <> 0.0 then begin
      let deg = float_of_int (Graph.degree g v) in
      if deg = 0.0 then q.(v) <- q.(v) +. mass
      else begin
        let share = mass /. (2.0 *. deg) in
        (* lazy half plus the self-loop share that walks back home *)
        q.(v) <- q.(v) +. (mass /. 2.0) +. (share *. float_of_int (Graph.self_loops g v));
        Graph.iter_neighbors g v (fun u -> q.(u) <- q.(u) +. share)
      end
    end
  done;
  q

let step_sparse g p =
  let q = Hashtbl.create (2 * Hashtbl.length p) in
  let add v x =
    let prev = try Hashtbl.find q v with Not_found -> 0.0 in
    Hashtbl.replace q v (prev +. x)
  in
  Dex_util.Table.iter_sorted
    (fun v mass ->
      let deg = float_of_int (Graph.degree g v) in
      if deg = 0.0 then add v mass
      else begin
        let share = mass /. (2.0 *. deg) in
        add v ((mass /. 2.0) +. (share *. float_of_int (Graph.self_loops g v)));
        Graph.iter_neighbors g v (fun u -> add u share)
      end)
    p;
  q

let truncate g ~eps p =
  let q = Hashtbl.create (Hashtbl.length p) in
  Dex_util.Table.iter_sorted
    (fun v mass ->
      if mass >= 2.0 *. eps *. float_of_int (Graph.degree g v) then Hashtbl.replace q v mass)
    p;
  q

let walk_from g ~src ~steps =
  let n = Graph.num_vertices g in
  let p = Array.make n 0.0 in
  p.(src) <- 1.0;
  let cur = ref p in
  for _ = 1 to steps do
    cur := step_dense g !cur
  done;
  !cur

let truncated_walk g ~src ~eps ~steps =
  let out = Array.make (steps + 1) (Hashtbl.create 1) in
  out.(0) <- indicator src;
  for t = 1 to steps do
    out.(t) <- truncate g ~eps (step_sparse g out.(t - 1))
  done;
  out

let rho g p v =
  let deg = Graph.degree g v in
  if deg = 0 then 0.0
  else
    match Hashtbl.find_opt p v with
    | None -> 0.0
    | Some mass -> mass /. float_of_int deg

let mass p = Dex_util.Table.fold_sorted (fun _ x acc -> acc +. x) p 0.0
let support p = Dex_util.Table.keys_sorted p

module Graph = Dex_graph.Graph
module Rng = Dex_util.Rng

let mixing_time ?(threshold = 0.25) ?(max_steps = 0) ?(samples = 3) g rng =
  let n = Graph.num_vertices g in
  if n <= 1 then 0
  else begin
    let max_steps = if max_steps > 0 then max_steps else 4 * n in
    let pi = Walk.degree_distribution g in
    let mixed p =
      let ok = ref true in
      for v = 0 to n - 1 do
        if pi.(v) > 0.0 && Float.abs (p.(v) -. pi.(v)) > threshold *. pi.(v) then
          ok := false
      done;
      !ok
    in
    let degrees = Array.init n (fun v -> float_of_int (Graph.degree g v)) in
    let worst = ref 0 in
    for _ = 1 to samples do
      let src = Rng.weighted_index rng degrees in
      let p = ref (Array.init n (fun v -> if v = src then 1.0 else 0.0)) in
      let t = ref 0 in
      while (not (mixed !p)) && !t < max_steps do
        p := Walk.step_dense g !p;
        incr t
      done;
      worst := max !worst !t
    done;
    !worst
  end

let spectral_gap ?(iters = 200) g rng =
  let n = Graph.num_vertices g in
  if n <= 1 then (1.0, Array.make n 0.0)
  else begin
    (* Work with the symmetric normalized lazy matrix
       S = D^{-1/2} M D^{1/2} = (I + D^{-1/2} A D^{-1/2})/2,
       whose top eigenvector is d^{1/2}. Iterate x <- S x with
       deflation against d^{1/2}; λ₂ from the Rayleigh quotient. *)
    let sqrt_deg = Array.init n (fun v -> sqrt (float_of_int (Graph.degree g v))) in
    let norm x = sqrt (Array.fold_left (fun acc xi -> acc +. (xi *. xi)) 0.0 x) in
    let top_norm = norm sqrt_deg in
    let top = Array.map (fun x -> x /. top_norm) sqrt_deg in
    let deflate x =
      let dot = ref 0.0 in
      for v = 0 to n - 1 do
        dot := !dot +. (x.(v) *. top.(v))
      done;
      Array.mapi (fun v xv -> xv -. (!dot *. top.(v))) x
    in
    let apply x =
      let y = Array.make n 0.0 in
      for v = 0 to n - 1 do
        let deg = float_of_int (Graph.degree g v) in
        if deg > 0.0 then begin
          let lazy_part = x.(v) /. 2.0 in
          let loop_part =
            x.(v) *. float_of_int (Graph.self_loops g v) /. (2.0 *. deg)
          in
          y.(v) <- y.(v) +. lazy_part +. loop_part;
          let coeff = x.(v) /. (2.0 *. sqrt_deg.(v)) in
          Graph.iter_neighbors g v (fun u ->
              y.(u) <- y.(u) +. (coeff /. sqrt_deg.(u)))
        end
        else y.(v) <- y.(v) +. x.(v)
      done;
      y
    in
    let x = ref (deflate (Array.init n (fun _ -> Rng.float rng 1.0 -. 0.5))) in
    let lambda = ref 0.0 in
    for _ = 1 to iters do
      let y = deflate (apply !x) in
      let ny = norm y in
      if ny > 1e-30 then begin
        lambda := ny /. max (norm !x) 1e-30;
        x := Array.map (fun v -> v /. ny) y
      end
    done;
    (* Rayleigh quotient for a stabler eigenvalue estimate *)
    let y = apply !x in
    let num = ref 0.0 and den = ref 0.0 in
    for v = 0 to n - 1 do
      num := !num +. (!x.(v) *. y.(v));
      den := !den +. (!x.(v) *. !x.(v))
    done;
    let lambda2 = if !den > 1e-30 then !num /. !den else !lambda in
    let gap = Float.max 0.0 (1.0 -. lambda2) in
    (* convert the embedding back: eigenvector of M is D^{1/2}-scaled *)
    let embedding = Array.mapi (fun v xv -> if sqrt_deg.(v) > 0.0 then xv /. sqrt_deg.(v) else xv) !x in
    (gap, embedding)
  end

let second_eigenvector ?iters g rng = snd (spectral_gap ?iters g rng)

module Graph = Dex_graph.Graph
module Metrics = Dex_graph.Metrics

let enumerate g f =
  let n = Graph.num_vertices g in
  if n > 24 then invalid_arg "Exact: graph too large for subset enumeration";
  if n >= 2 then begin
    (* fix vertex n-1 outside S: each cut {S, S̄} visited once *)
    let limit = 1 lsl (n - 1) in
    let members = Array.make n 0 in
    for mask = 1 to limit - 1 do
      let k = ref 0 in
      for v = 0 to n - 2 do
        if mask land (1 lsl v) <> 0 then begin
          members.(!k) <- v;
          incr k
        end
      done;
      f (Array.sub members 0 !k)
    done
  end

let min_conductance g =
  let best = ref None in
  enumerate g (fun s ->
      let c = Metrics.conductance g s in
      if Float.is_finite c then
        match !best with
        | Some (bc, _) when bc <= c -> ()
        | _ -> best := Some (c, Array.copy s));
  match !best with
  | Some (c, s) -> (c, s)
  | None -> invalid_arg "Exact.min_conductance: no non-degenerate cut"

let most_balanced_sparse_cut g ~phi =
  let best = ref None in
  enumerate g (fun s ->
      let c = Metrics.conductance g s in
      if Float.is_finite c && c <= phi then begin
        let b = Metrics.balance g s in
        match !best with
        | Some (bb, _) when bb >= b -> ()
        | _ -> best := Some (b, Array.copy s)
      end);
  !best

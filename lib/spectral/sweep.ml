module Graph = Dex_graph.Graph

type prefix = {
  len : int;
  volume : int;
  cut : int;
  conductance : float;
  last_rho : float;
}

type t = { ordered : int array; prefixes : prefix array }

let take sweep j =
  if j < 0 || j > Array.length sweep.ordered then invalid_arg "Sweep.take";
  Array.sub sweep.ordered 0 j

let order g p =
  let entries =
    Dex_util.Table.fold_sorted (fun v mass acc -> (v, mass) :: acc) p []
    |> List.filter (fun (v, _) -> Graph.degree g v > 0)
    |> List.map (fun (v, mass) -> (v, mass /. float_of_int (Graph.degree g v)))
  in
  let sorted =
    List.sort
      (fun (v1, r1) (v2, r2) ->
        match compare r2 r1 with 0 -> compare v1 v2 | c -> c)
      entries
  in
  Array.of_list (List.map fst sorted)

let scan_order g ordered rho_of =
  let total_volume = Graph.total_volume g in
  let n = Array.length ordered in
  let in_set = Hashtbl.create (2 * n) in
  let volume = ref 0 in
  let cut = ref 0 in
  let dummy = { len = 0; volume = 0; cut = 0; conductance = 0.0; last_rho = 0.0 } in
  let prefixes = Array.make n dummy in
  for j = 0 to n - 1 do
    let v = ordered.(j) in
    let inside = ref 0 in
    Graph.iter_neighbors g v (fun u -> if Hashtbl.mem in_set u then incr inside);
    Hashtbl.replace in_set v ();
    volume := !volume + Graph.degree g v;
    cut := !cut + Graph.plain_degree g v - (2 * !inside);
    let small = min !volume (total_volume - !volume) in
    let conductance =
      if small <= 0 then Float.infinity else float_of_int !cut /. float_of_int small
    in
    prefixes.(j) <-
      { len = j + 1; volume = !volume; cut = !cut; conductance; last_rho = rho_of v }
  done;
  { ordered; prefixes }

let scan g p = scan_order g (order g p) (fun v -> Walk.rho g p v)

let best_cut g p =
  let sweep = scan g p in
  let best = ref None in
  Array.iter
    (fun pref ->
      if Float.is_finite pref.conductance then
        match !best with
        | None -> best := Some pref
        | Some b -> if pref.conductance < b.conductance then best := Some pref)
    sweep.prefixes;
  Option.map (fun pref -> (sweep, pref.len)) !best

let scan_vector g x =
  let n = Graph.num_vertices g in
  let idx = Array.init n (fun v -> v) in
  Array.sort
    (fun a b -> match compare x.(b) x.(a) with 0 -> compare a b | c -> c)
    idx;
  scan_order g idx (fun v -> x.(v))

(** Mixing time and spectral gap estimation.

    Section 1 of the paper uses the Jerrum–Sinclair relation
    Θ(1/Φ) ≤ τ_mix ≤ Θ(log n / Φ²). The routing layer needs a
    concrete τ_mix for its cost model; we measure it by running the
    lazy walk until the relative ∞-distance to stationarity drops
    below a threshold, and we estimate the spectral gap by power
    iteration on the normalized lazy walk matrix. *)

(** [mixing_time ?threshold ?max_steps ?samples g rng] is the number
    of lazy-walk steps after which, for each of [samples] random start
    vertices (degree-weighted), every vertex satisfies
    [|p_t(u) - π(u)| ≤ threshold·π(u)] (default threshold 0.25).
    Returns [max_steps] (default 4·n) if never reached — e.g. on
    disconnected graphs. *)
val mixing_time :
  ?threshold:float -> ?max_steps:int -> ?samples:int ->
  Dex_graph.Graph.t -> Dex_util.Rng.t -> int

(** [spectral_gap ?iters g rng] estimates 1 - λ₂ of the lazy walk
    matrix via power iteration with deflation of the stationary
    direction; the Cheeger bounds give gap/1 ≤ Φ ≤ √(2·gap) for the
    normalized gap 2·(lazy gap). Also returns the (approximate)
    second eigenvector, usable for a sweep-cut baseline. *)
val spectral_gap :
  ?iters:int -> Dex_graph.Graph.t -> Dex_util.Rng.t -> float * float array

(** [second_eigenvector ?iters g rng] is just the vector part. *)
val second_eigenvector :
  ?iters:int -> Dex_graph.Graph.t -> Dex_util.Rng.t -> float array

(** Sweep cuts: order vertices by normalized walk mass ρ(v) = p(v)/deg(v)
    and scan prefixes π(1..j), maintaining the cut size incrementally.
    This is the π̃_t machinery of the paper's Appendix A.1. *)

(** Measurements of one prefix π(1..j) of a sweep order. *)
type prefix = {
  len : int; (** j: number of vertices in the prefix *)
  volume : int; (** Vol(π(1..j)) in the ambient graph *)
  cut : int; (** \|∂(π(1..j))\| *)
  conductance : float; (** Φ as defined for the ambient graph *)
  last_rho : float; (** ρ of the j-th (last) vertex of the prefix *)
}

(** A completed sweep: the order and the stats of all its prefixes
    ([prefixes.(j-1)] describes π(1..j)). *)
type t = { ordered : int array; prefixes : prefix array }

(** [take sweep j] materializes π(1..j) as a vertex array. *)
val take : t -> int -> int array

(** [order g p] is the support of [p] sorted by decreasing ρ (ties by
    vertex id — the paper breaks ties by ID). *)
val order : Dex_graph.Graph.t -> Walk.sparse -> int array

(** [scan g p] measures every prefix of the sweep order of [p];
    O(\|support\|·avg-deg + sort). *)
val scan : Dex_graph.Graph.t -> Walk.sparse -> t

(** [best_cut g p] is [(sweep, j)] minimizing prefix conductance with
    both sides of positive volume, if any. *)
val best_cut : Dex_graph.Graph.t -> Walk.sparse -> (t * int) option

(** [scan_vector g x] sweeps an arbitrary dense vector over all
    vertices in decreasing [x] order (spectral baseline). *)
val scan_vector : Dex_graph.Graph.t -> float array -> t

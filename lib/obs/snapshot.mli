(** Machine-readable benchmark snapshots.

    The bench harness renders every section as aligned text tables for
    humans; this module captures the same rows as one JSON document so
    the perf trajectory can be tracked across PRs (CI uploads the
    snapshot of every run as an artifact).

    Schema, version ["dexpander-bench/1"], keys always in this order:

    {v
    { "schema":   "dexpander-bench/1",
      "mode":     "quick" | "full",
      "sections": [
        { "id":     "e5",
          "title":  "Theorem 1: rounds scaling",
          "tables": [
            { "title":   "...",
              "headers": ["n", "m", ...],
              "rows":    [["128", "812", ...], ...] } ],
          "notes":  ["log-log slope ...", ...] } ] }
    v}

    Every row of a table has exactly as many cells as the table has
    headers (short rows are padded with [""] at construction), and all
    cells are the strings the text renderer printed — a snapshot is a
    faithful transcript of the human-readable output. [validate]
    enforces exactly this shape, and the test suite round-trips a
    snapshot through {!Json.parse}. *)

type table = { title : string; headers : string list; rows : string list list }
type section = { id : string; title : string; tables : table list; notes : string list }

(** The schema identifier embedded in (and required of) every
    snapshot. *)
val version : string

(** [table ~title ~headers rows] builds a table, padding every short
    row with empty cells to the header arity.
    Raises [Invalid_argument] if a row is longer than [headers]. *)
val table : title:string -> headers:string list -> string list list -> table

(** [to_json ~mode sections] renders the snapshot document. *)
val to_json : mode:string -> section list -> Json.t

(** [validate v] checks [v] against the schema above, returning a
    descriptive error for the first violation found. *)
val validate : Json.t -> (unit, string) result

(** [write ~path ~mode sections] writes the document (plus a trailing
    newline) to [path]. *)
val write : path:string -> mode:string -> section list -> unit

(** Structured tracing for the CONGEST kernel.

    A trace is a stream of typed events — hierarchical span open/close,
    per-round ticks (messages, words, max per-edge congestion, active
    vertices), fault events bridged from the fault schedule, and Las
    Vegas retry attempts — kept in a bounded in-memory ring and
    optionally mirrored as JSON-Lines (one compact JSON object per
    event) to a sink channel.

    The trace also aggregates cross-cutting metrics as events flow
    through it: cumulative message/word counts, a per-edge load
    histogram (in the vertex ids of the {e original} graph when the
    emitting network carries a vertex map — subgraph simulations then
    account onto real edges), and fault/retry counters.

    Tracing is opt-in: components accept a trace handle (usually via
    {!val:Dex_congest.Rounds.attach_trace}) and skip all accounting when
    none is attached, so the disabled path costs one pointer test per
    round. *)

type event =
  | Span_open of { id : int; parent : int; name : string; rounds_before : int }
      (** A hierarchical span opened. [parent] is the enclosing span id,
          [-1] at top level; [rounds_before] the ledger total when it
          opened. *)
  | Span_close of { id : int; name : string; rounds : int; wall_ns : int }
      (** The span closed after charging [rounds] simulated rounds and
          spending [wall_ns] wall-clock nanoseconds of simulator time. *)
  | Round_tick of {
      round : int;
      messages : int;
      words : int;
      max_edge_load : int;
      active : int;
    }
      (** One executed network round: messages/words delivered, the
          maximum number of messages any single undirected edge carried
          (≥ 2 only under duplication faults or bidirectional traffic),
          and the number of vertices that sent or received anything. *)
  | Fault of { kind : string; round : int; src : int; dst : int }
      (** A fault event bridged from the schedule; [kind] is one of
          ["drop"], ["duplicate"], ["link-down"], ["crash"] ([dst] is
          [-1] for crashes). *)
  | Retry of { label : string; attempt : int; certified : bool }
      (** A Las Vegas attempt finished: [certified] says whether the
          self-check accepted the output. *)
  | Note of { key : string; value : string }  (** Freeform annotation. *)

type t

(** [create ?capacity ?sink ()] is an empty trace. The ring retains the
    last [capacity] events (default 65536); when [sink] is given every
    event is also written immediately as one JSON line. *)
val create : ?capacity:int -> ?sink:out_channel -> unit -> t

(** [set_sink t sink] replaces the JSONL sink (the previous one is not
    closed — channels belong to the caller). *)
val set_sink : t -> out_channel option -> unit

(** [emit t ev] appends [ev] to the ring (evicting the oldest event
    when full), updates the aggregate counters and writes the JSON line
    to the sink, if any. *)
val emit : t -> event -> unit

(** [events t] is the retained events, oldest first. *)
val events : t -> event list

(** [emitted t] counts every event ever emitted; [dropped t] how many
    of those the ring has already evicted. *)
val emitted : t -> int

val dropped : t -> int

(** {2 Span stack}

    Spans nest: [span_open] pushes, [span_close] pops. Components
    normally drive these through [Rounds.with_span] rather than
    directly. *)

(** [span_open t ~name ~rounds_before] opens a span and returns its id
    (parented to the innermost open span). *)
val span_open : t -> name:string -> rounds_before:int -> int

(** [span_close t ~id ~name ~rounds ~wall_ns] closes span [id]. *)
val span_close : t -> id:int -> name:string -> rounds:int -> wall_ns:int -> unit

(** {2 Convenience emitters} *)

val round_tick :
  t -> round:int -> messages:int -> words:int -> max_edge_load:int -> active:int -> unit

val fault : t -> kind:string -> round:int -> src:int -> dst:int -> unit
val retry : t -> label:string -> attempt:int -> certified:bool -> unit
val note : t -> key:string -> value:string -> unit

(** {2 Aggregate metrics} *)

(** [count_edge t u v ~by] adds [by] deliveries to the load of the
    undirected edge [(u, v)]. Called by the kernel with original-graph
    vertex ids. *)
val count_edge : t -> int -> int -> by:int -> unit

(** [edge_load t (u, v)] is the cumulative load of that edge. *)
val edge_load : t -> int * int -> int

(** [top_edges t k] is the [k] most loaded edges, descending by load,
    ties broken by edge (so the listing is deterministic). *)
val top_edges : t -> int -> ((int * int) * int) list

(** Cumulative counters aggregated from the emitted events: messages
    and words summed over [Round_tick]s, fault and retry event counts. *)

val messages : t -> int
val words : t -> int
val faults : t -> int
val retries : t -> int

(** {2 JSON codec}

    Every event renders as a single-line JSON object whose first field
    ["ev"] discriminates the variant; remaining keys appear in the
    fixed order documented in DESIGN.md §8. [event_of_json] inverts
    [event_to_json] exactly (tested round-trip). *)

val event_to_json : event -> Json.t
val event_of_json : Json.t -> (event, string) result

(** [to_jsonl_line ev] is the compact JSON line for [ev] (no trailing
    newline). *)
val to_jsonl_line : event -> string

(** Minimal JSON representation: just enough for the observability
    layer to emit trace events and benchmark snapshots and to read its
    own output back (tests round-trip every line we write). Object key
    order is preserved verbatim, so emitted documents have a stable,
    documented key order — diffs across PRs stay meaningful. *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of t list
  | Obj of (string * t) list

(** [to_string v] is the compact (single-line) rendering of [v].
    Strings are escaped per RFC 8259; non-finite floats render as
    [null] (JSON has no representation for them). *)
val to_string : t -> string

(** [to_buffer buf v] appends the compact rendering to [buf]. *)
val to_buffer : Buffer.t -> t -> unit

(** [parse s] reads one JSON document (surrounding whitespace allowed).
    Numbers with a fraction or exponent parse as [Float], others as
    [Int]. Returns [Error msg] with a position on malformed input. *)
val parse : string -> (t, string) result

(** {2 Accessors} *)

(** [member key v] is the value under [key] when [v] is an object. *)
val member : string -> t -> t option

(** Typed projections; [None] on shape mismatch. [to_int] accepts
    [Int]; [to_float] accepts both [Int] and [Float]. *)

val to_int : t -> int option
val to_float : t -> float option
val to_bool : t -> bool option
val to_str : t -> string option
val to_list : t -> t list option

(** Wall-clock access for the observability layer.

    Lint rule D004 forbids [Sys.time]/[Unix.gettimeofday] outside
    [bench/] and [lib/obs]: the simulated rounds must be a function of
    (graph, seed) alone. Components that want self-profiling wall time
    (e.g. {!Dex_congest.Rounds.with_span}-style spans) read it through
    this module, whose clock can be frozen in tests. *)

(** [now_ns ()] is the current wall-clock time in integer nanoseconds
    (or the frozen value, if {!freeze} is active). *)
val now_ns : unit -> int

(** [freeze t] pins [now_ns] to [t] until {!unfreeze} — useful to make
    span wall-times reproducible in tests. *)
val freeze : int -> unit

val unfreeze : unit -> unit

type table = { title : string; headers : string list; rows : string list list }
type section = { id : string; title : string; tables : table list; notes : string list }

let version = "dexpander-bench/1"

let table ~title ~headers rows =
  let arity = List.length headers in
  let pad row =
    let len = List.length row in
    if len > arity then
      invalid_arg
        (Printf.sprintf "Snapshot.table: row of %d cells in a %d-column table %S" len
           arity title)
    else if len = arity then row
    else row @ List.init (arity - len) (fun _ -> "")
  in
  { title; headers; rows = List.map pad rows }

let to_json ~mode sections =
  let open Json in
  let table_json (t : table) =
    Obj
      [ ("title", String t.title);
        ("headers", List (List.map (fun h -> String h) t.headers));
        ("rows", List (List.map (fun r -> List (List.map (fun c -> String c) r)) t.rows)) ]
  in
  let section_json (s : section) =
    Obj
      [ ("id", String s.id);
        ("title", String s.title);
        ("tables", List (List.map table_json s.tables));
        ("notes", List (List.map (fun n -> String n) s.notes)) ]
  in
  Obj
    [ ("schema", String version);
      ("mode", String mode);
      ("sections", List (List.map section_json sections)) ]

(* ---------------- validation ---------------- *)

let ( let* ) r f = match r with Ok v -> f v | Error _ as e -> e

let need what = function
  | Some v -> Ok v
  | None -> Error (Printf.sprintf "snapshot: missing or ill-typed %s" what)

let str_field ctx key v =
  need (Printf.sprintf "string %S in %s" key ctx)
    (Option.bind (Json.member key v) Json.to_str)

let list_field ctx key v =
  need (Printf.sprintf "array %S in %s" key ctx)
    (Option.bind (Json.member key v) Json.to_list)

let ok_unit r = Result.map (fun _ -> ()) r

let rec validate_all f = function
  | [] -> Ok ()
  | x :: rest ->
    let* () = f x in
    validate_all f rest

let validate_table ctx v =
  let* title = str_field ctx "title" v in
  let ctx = Printf.sprintf "table %S of %s" title ctx in
  let* headers = list_field ctx "headers" v in
  let* () =
    validate_all
      (fun h -> ok_unit (need (ctx ^ ": non-string header") (Json.to_str h)))
      headers
  in
  let arity = List.length headers in
  let* rows = list_field ctx "rows" v in
  validate_all
    (fun row ->
      let* cells = need (ctx ^ ": non-array row") (Json.to_list row) in
      let* () =
        validate_all
          (fun c -> ok_unit (need (ctx ^ ": non-string cell") (Json.to_str c)))
          cells
      in
      if List.length cells = arity then Ok ()
      else
        Error
          (Printf.sprintf "snapshot: %s: row of %d cells, expected %d" ctx
             (List.length cells) arity))
    rows

let validate_section v =
  let* id = str_field "section" "id" v in
  let ctx = Printf.sprintf "section %S" id in
  let* _title = str_field ctx "title" v in
  let* tables = list_field ctx "tables" v in
  let* () = validate_all (validate_table ctx) tables in
  let* notes = list_field ctx "notes" v in
  validate_all (fun n -> ok_unit (need (ctx ^ ": non-string note") (Json.to_str n))) notes

let validate v =
  let* schema = str_field "document" "schema" v in
  if schema <> version then
    Error (Printf.sprintf "snapshot: schema %S, expected %S" schema version)
  else
    let* _mode = str_field "document" "mode" v in
    let* sections = list_field "document" "sections" v in
    validate_all validate_section sections

let write ~path ~mode sections =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () ->
      output_string oc (Json.to_string (to_json ~mode sections));
      output_char oc '\n')

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of t list
  | Obj of (string * t) list

(* ---------------- emission ---------------- *)

let escape_to buf s =
  Buffer.add_char buf '"';
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | '\b' -> Buffer.add_string buf "\\b"
      | '\012' -> Buffer.add_string buf "\\f"
      | c when Char.code c < 0x20 ->
        Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.add_char buf '"'

let float_to_string x =
  (* shortest round-trippable decimal; force a '.' so the value parses
     back as Float, not Int *)
  let s = Printf.sprintf "%.17g" x in
  let s =
    let shorter = Printf.sprintf "%.15g" x in
    if float_of_string shorter = x then shorter else s
  in
  if String.exists (fun c -> c = '.' || c = 'e' || c = 'E') s then s else s ^ ".0"

let rec to_buffer buf = function
  | Null -> Buffer.add_string buf "null"
  | Bool b -> Buffer.add_string buf (if b then "true" else "false")
  | Int i -> Buffer.add_string buf (string_of_int i)
  | Float x ->
    if Float.is_finite x then Buffer.add_string buf (float_to_string x)
    else Buffer.add_string buf "null"
  | String s -> escape_to buf s
  | List l ->
    Buffer.add_char buf '[';
    List.iteri
      (fun i v ->
        if i > 0 then Buffer.add_char buf ',';
        to_buffer buf v)
      l;
    Buffer.add_char buf ']'
  | Obj fields ->
    Buffer.add_char buf '{';
    List.iteri
      (fun i (k, v) ->
        if i > 0 then Buffer.add_char buf ',';
        escape_to buf k;
        Buffer.add_char buf ':';
        to_buffer buf v)
      fields;
    Buffer.add_char buf '}'

let to_string v =
  let buf = Buffer.create 256 in
  to_buffer buf v;
  Buffer.contents buf

(* ---------------- parsing ---------------- *)

exception Bad of string * int

let parse s =
  let len = String.length s in
  let pos = ref 0 in
  let fail msg = raise (Bad (msg, !pos)) in
  let peek () = if !pos < len then Some s.[!pos] else None in
  let advance () = incr pos in
  let skip_ws () =
    while !pos < len && (match s.[!pos] with ' ' | '\t' | '\n' | '\r' -> true | _ -> false) do
      advance ()
    done
  in
  let expect c =
    match peek () with
    | Some d when d = c -> advance ()
    | _ -> fail (Printf.sprintf "expected %C" c)
  in
  let literal word value =
    let n = String.length word in
    if !pos + n <= len && String.sub s !pos n = word then begin
      pos := !pos + n;
      value
    end
    else fail (Printf.sprintf "expected %s" word)
  in
  let utf8_of_code buf code =
    (* encode one scalar value; surrogate pairs are handled by the caller *)
    if code < 0x80 then Buffer.add_char buf (Char.chr code)
    else if code < 0x800 then begin
      Buffer.add_char buf (Char.chr (0xc0 lor (code lsr 6)));
      Buffer.add_char buf (Char.chr (0x80 lor (code land 0x3f)))
    end
    else if code < 0x10000 then begin
      Buffer.add_char buf (Char.chr (0xe0 lor (code lsr 12)));
      Buffer.add_char buf (Char.chr (0x80 lor ((code lsr 6) land 0x3f)));
      Buffer.add_char buf (Char.chr (0x80 lor (code land 0x3f)))
    end
    else begin
      Buffer.add_char buf (Char.chr (0xf0 lor (code lsr 18)));
      Buffer.add_char buf (Char.chr (0x80 lor ((code lsr 12) land 0x3f)));
      Buffer.add_char buf (Char.chr (0x80 lor ((code lsr 6) land 0x3f)));
      Buffer.add_char buf (Char.chr (0x80 lor (code land 0x3f)))
    end
  in
  let hex4 () =
    if !pos + 4 > len then fail "truncated \\u escape";
    let v = int_of_string ("0x" ^ String.sub s !pos 4) in
    pos := !pos + 4;
    v
  in
  let parse_string () =
    expect '"';
    let buf = Buffer.create 16 in
    let rec go () =
      if !pos >= len then fail "unterminated string";
      match s.[!pos] with
      | '"' -> advance ()
      | '\\' ->
        advance ();
        (if !pos >= len then fail "truncated escape";
         let c = s.[!pos] in
         advance ();
         match c with
         | '"' -> Buffer.add_char buf '"'
         | '\\' -> Buffer.add_char buf '\\'
         | '/' -> Buffer.add_char buf '/'
         | 'n' -> Buffer.add_char buf '\n'
         | 'r' -> Buffer.add_char buf '\r'
         | 't' -> Buffer.add_char buf '\t'
         | 'b' -> Buffer.add_char buf '\b'
         | 'f' -> Buffer.add_char buf '\012'
         | 'u' ->
           let hi = hex4 () in
           if hi >= 0xd800 && hi <= 0xdbff then begin
             (* surrogate pair *)
             if !pos + 2 > len || s.[!pos] <> '\\' || s.[!pos + 1] <> 'u' then
               fail "unpaired surrogate";
             pos := !pos + 2;
             let lo = hex4 () in
             if lo < 0xdc00 || lo > 0xdfff then fail "invalid low surrogate";
             utf8_of_code buf (0x10000 + ((hi - 0xd800) lsl 10) + (lo - 0xdc00))
           end
           else utf8_of_code buf hi
         | _ -> fail "bad escape");
        go ()
      | c ->
        Buffer.add_char buf c;
        advance ();
        go ()
    in
    go ();
    Buffer.contents buf
  in
  let parse_number () =
    let start = !pos in
    let is_float = ref false in
    if peek () = Some '-' then advance ();
    let digits () =
      let n0 = !pos in
      while !pos < len && s.[!pos] >= '0' && s.[!pos] <= '9' do
        advance ()
      done;
      if !pos = n0 then fail "expected digit"
    in
    digits ();
    if peek () = Some '.' then begin
      is_float := true;
      advance ();
      digits ()
    end;
    (match peek () with
    | Some ('e' | 'E') ->
      is_float := true;
      advance ();
      (match peek () with Some ('+' | '-') -> advance () | _ -> ());
      digits ()
    | _ -> ());
    let text = String.sub s start (!pos - start) in
    if !is_float then Float (float_of_string text)
    else
      match int_of_string_opt text with
      | Some i -> Int i
      | None -> Float (float_of_string text)
  in
  let rec parse_value () =
    skip_ws ();
    match peek () with
    | None -> fail "unexpected end of input"
    | Some '{' ->
      advance ();
      skip_ws ();
      if peek () = Some '}' then begin
        advance ();
        Obj []
      end
      else begin
        let fields = ref [] in
        let rec fields_go () =
          skip_ws ();
          let key = parse_string () in
          skip_ws ();
          expect ':';
          let v = parse_value () in
          fields := (key, v) :: !fields;
          skip_ws ();
          match peek () with
          | Some ',' ->
            advance ();
            fields_go ()
          | Some '}' -> advance ()
          | _ -> fail "expected ',' or '}'"
        in
        fields_go ();
        Obj (List.rev !fields)
      end
    | Some '[' ->
      advance ();
      skip_ws ();
      if peek () = Some ']' then begin
        advance ();
        List []
      end
      else begin
        let items = ref [] in
        let rec items_go () =
          let v = parse_value () in
          items := v :: !items;
          skip_ws ();
          match peek () with
          | Some ',' ->
            advance ();
            items_go ()
          | Some ']' -> advance ()
          | _ -> fail "expected ',' or ']'"
        in
        items_go ();
        List (List.rev !items)
      end
    | Some '"' -> String (parse_string ())
    | Some 't' -> literal "true" (Bool true)
    | Some 'f' -> literal "false" (Bool false)
    | Some 'n' -> literal "null" Null
    | Some ('-' | '0' .. '9') -> parse_number ()
    | Some c -> fail (Printf.sprintf "unexpected character %C" c)
  in
  match
    let v = parse_value () in
    skip_ws ();
    if !pos <> len then fail "trailing garbage";
    v
  with
  | v -> Ok v
  | exception Bad (msg, at) -> Error (Printf.sprintf "%s at offset %d" msg at)

(* ---------------- accessors ---------------- *)

let member key = function
  | Obj fields -> List.assoc_opt key fields
  | _ -> None

let to_int = function Int i -> Some i | _ -> None
let to_float = function Float x -> Some x | Int i -> Some (float_of_int i) | _ -> None
let to_bool = function Bool b -> Some b | _ -> None
let to_str = function String s -> Some s | _ -> None
let to_list = function List l -> Some l | _ -> None

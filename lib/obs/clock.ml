(* The single sanctioned wall-clock read point (lint rule D004): the
   simulation proper must be a function of (graph, seed) alone, so
   algorithm libraries may not read the host clock directly. Spans and
   benches read it through here, which also gives tests a hook to
   freeze time. *)

let frozen : int option ref = ref None

let now_ns () =
  match !frozen with
  | Some t -> t
  | None -> int_of_float (Unix.gettimeofday () *. 1e9)

let freeze t = frozen := Some t
let unfreeze () = frozen := None

type event =
  | Span_open of { id : int; parent : int; name : string; rounds_before : int }
  | Span_close of { id : int; name : string; rounds : int; wall_ns : int }
  | Round_tick of {
      round : int;
      messages : int;
      words : int;
      max_edge_load : int;
      active : int;
    }
  | Fault of { kind : string; round : int; src : int; dst : int }
  | Retry of { label : string; attempt : int; certified : bool }
  | Note of { key : string; value : string }

type t = {
  capacity : int;
  ring : event option array;
  mutable emitted : int;
  mutable sink : out_channel option;
  mutable stack : int list;
  mutable next_span : int;
  edge_loads : (int * int, int) Hashtbl.t;
  mutable messages : int;
  mutable words : int;
  mutable fault_count : int;
  mutable retry_count : int;
}

let create ?(capacity = 65536) ?sink () =
  if capacity < 1 then invalid_arg "Trace.create: capacity must be >= 1";
  { capacity;
    ring = Array.make capacity None;
    emitted = 0;
    sink;
    stack = [];
    next_span = 0;
    edge_loads = Hashtbl.create 256;
    messages = 0;
    words = 0;
    fault_count = 0;
    retry_count = 0 }

let set_sink t sink = t.sink <- sink

(* ---------------- JSON codec ---------------- *)

let event_to_json ev =
  let open Json in
  match ev with
  | Span_open { id; parent; name; rounds_before } ->
    Obj
      [ ("ev", String "span-open"); ("id", Int id); ("parent", Int parent);
        ("name", String name); ("rounds-before", Int rounds_before) ]
  | Span_close { id; name; rounds; wall_ns } ->
    Obj
      [ ("ev", String "span-close"); ("id", Int id); ("name", String name);
        ("rounds", Int rounds); ("wall-ns", Int wall_ns) ]
  | Round_tick { round; messages; words; max_edge_load; active } ->
    Obj
      [ ("ev", String "round"); ("round", Int round); ("messages", Int messages);
        ("words", Int words); ("max-edge-load", Int max_edge_load);
        ("active", Int active) ]
  | Fault { kind; round; src; dst } ->
    Obj
      [ ("ev", String "fault"); ("kind", String kind); ("round", Int round);
        ("src", Int src); ("dst", Int dst) ]
  | Retry { label; attempt; certified } ->
    Obj
      [ ("ev", String "retry"); ("label", String label); ("attempt", Int attempt);
        ("certified", Bool certified) ]
  | Note { key; value } ->
    Obj [ ("ev", String "note"); ("key", String key); ("value", String value) ]

let event_of_json v =
  let str key = match Json.member key v with Some j -> Json.to_str j | None -> None in
  let int key = match Json.member key v with Some j -> Json.to_int j | None -> None in
  let bool key = match Json.member key v with Some j -> Json.to_bool j | None -> None in
  let missing what = Error (Printf.sprintf "trace event: missing or ill-typed %S" what) in
  match str "ev" with
  | None -> Error "trace event: missing \"ev\" discriminator"
  | Some "span-open" -> (
    match (int "id", int "parent", str "name", int "rounds-before") with
    | Some id, Some parent, Some name, Some rounds_before ->
      Ok (Span_open { id; parent; name; rounds_before })
    | _ -> missing "span-open fields")
  | Some "span-close" -> (
    match (int "id", str "name", int "rounds", int "wall-ns") with
    | Some id, Some name, Some rounds, Some wall_ns ->
      Ok (Span_close { id; name; rounds; wall_ns })
    | _ -> missing "span-close fields")
  | Some "round" -> (
    match (int "round", int "messages", int "words", int "max-edge-load", int "active") with
    | Some round, Some messages, Some words, Some max_edge_load, Some active ->
      Ok (Round_tick { round; messages; words; max_edge_load; active })
    | _ -> missing "round fields")
  | Some "fault" -> (
    match (str "kind", int "round", int "src", int "dst") with
    | Some kind, Some round, Some src, Some dst -> Ok (Fault { kind; round; src; dst })
    | _ -> missing "fault fields")
  | Some "retry" -> (
    match (str "label", int "attempt", bool "certified") with
    | Some label, Some attempt, Some certified -> Ok (Retry { label; attempt; certified })
    | _ -> missing "retry fields")
  | Some "note" -> (
    match (str "key", str "value") with
    | Some key, Some value -> Ok (Note { key; value })
    | _ -> missing "note fields")
  | Some other -> Error (Printf.sprintf "trace event: unknown kind %S" other)

let to_jsonl_line ev = Json.to_string (event_to_json ev)

(* ---------------- emission ---------------- *)

let emit t ev =
  (match ev with
  | Round_tick { messages; words; _ } ->
    t.messages <- t.messages + messages;
    t.words <- t.words + words
  | Fault _ -> t.fault_count <- t.fault_count + 1
  | Retry _ -> t.retry_count <- t.retry_count + 1
  | Span_open _ | Span_close _ | Note _ -> ());
  t.ring.(t.emitted mod t.capacity) <- Some ev;
  t.emitted <- t.emitted + 1;
  match t.sink with
  | Some oc ->
    output_string oc (to_jsonl_line ev);
    output_char oc '\n'
  | None -> ()

let emitted t = t.emitted
let dropped t = max 0 (t.emitted - t.capacity)

let events t =
  let kept = min t.emitted t.capacity in
  let first = t.emitted - kept in
  List.init kept (fun i ->
      match t.ring.((first + i) mod t.capacity) with
      | Some ev -> ev
      | None -> assert false)

(* ---------------- spans ---------------- *)

let span_open t ~name ~rounds_before =
  let id = t.next_span in
  t.next_span <- id + 1;
  let parent = match t.stack with p :: _ -> p | [] -> -1 in
  t.stack <- id :: t.stack;
  emit t (Span_open { id; parent; name; rounds_before });
  id

let span_close t ~id ~name ~rounds ~wall_ns =
  (match t.stack with
  | top :: rest when top = id -> t.stack <- rest
  | _ ->
    (* tolerate mismatched closes (an exception may have skipped inner
       closes): drop everything down to and including [id] *)
    let rec unwind = function
      | top :: rest -> if top = id then rest else unwind rest
      | [] -> []
    in
    t.stack <- unwind t.stack);
  emit t (Span_close { id; name; rounds; wall_ns })

(* ---------------- convenience emitters ---------------- *)

let round_tick t ~round ~messages ~words ~max_edge_load ~active =
  emit t (Round_tick { round; messages; words; max_edge_load; active })

let fault t ~kind ~round ~src ~dst = emit t (Fault { kind; round; src; dst })
let retry t ~label ~attempt ~certified = emit t (Retry { label; attempt; certified })
let note t ~key ~value = emit t (Note { key; value })

(* ---------------- edge loads ---------------- *)

let count_edge t u v ~by =
  if by > 0 then begin
    let e = (min u v, max u v) in
    let prev = try Hashtbl.find t.edge_loads e with Not_found -> 0 in
    Hashtbl.replace t.edge_loads e (prev + by)
  end

let edge_load t (u, v) =
  let e = (min u v, max u v) in
  try Hashtbl.find t.edge_loads e with Not_found -> 0

let top_edges t k =
  if k <= 0 then []
  else
    Dex_util.Table.fold_sorted (fun e load acc -> (e, load) :: acc) t.edge_loads []
    |> List.sort (fun (ea, la) (eb, lb) -> if la <> lb then compare lb la else compare ea eb)
    |> List.filteri (fun i _ -> i < k)

let messages t = t.messages
let words t = t.words
let faults t = t.fault_count
let retries t = t.retry_count

(* Shared driver for both lint engines, used by the standalone
   dex_lint executable and the `dexpander lint` subcommand.

   Exit status: 0 clean, 1 unsuppressed findings, 2 parse/IO errors. *)

type opts = {
  json : bool;
  all_rules : bool;
  typed_only : bool;
  no_typed : bool;
  cmt_root : string;
  source_root : string;
  graph_json : string option;
  dead_scope : string list;
  include_fixtures : bool;
  targets : string list;
}

let default_opts =
  { json = false;
    all_rules = false;
    typed_only = false;
    no_typed = false;
    cmt_root = "_build/default";
    source_root = ".";
    graph_json = None;
    dead_scope = [ "lib" ];
    include_fixtures = false;
    targets = [] }

let rec collect_sources ~include_fixtures path acc =
  if Sys.is_directory path then
    Array.fold_left
      (fun acc entry ->
        if entry = "_build" || entry = ".git"
           || ((not include_fixtures) && entry = "fixtures")
        then acc
        else collect_sources ~include_fixtures (Filename.concat path entry) acc)
      acc
      (let entries = Sys.readdir path in
       Array.sort compare entries;
       entries)
  else if Filename.check_suffix path ".ml" || Filename.check_suffix path ".mli"
  then path :: acc
  else acc

(* does [path] live under one of the targets? compares repo-relative
   segment lists so "./lib" and "lib/congest/x.ml" agree *)
let under_targets targets path =
  let segs = Lint.rel_segments path in
  let known_roots = [ "lib"; "bench"; "bin"; "test"; "tools" ] in
  List.exists
    (fun t ->
      match Lint.rel_segments t with
      | [] -> true
      (* a target outside the recognized roots (".", the repo root, a
         checkout path) scopes everything *)
      | s :: _ when not (List.mem s known_roots) -> true
      | tsegs -> Lint.under tsegs segs)
    targets

let run opts =
  if opts.targets = [] then begin
    prerr_endline "dex_lint: no targets given";
    2
  end
  else begin
    let findings = ref [] in
    let errors = ref [] in
    let add_findings fs = findings := !findings @ fs in
    let add_error path msg = errors := !errors @ [ (path, msg) ] in
    let files =
      List.concat_map
        (fun t ->
          if not (Sys.file_exists t) then begin
            Printf.eprintf "dex_lint: no such file or directory: %s\n" t;
            exit 2
          end;
          List.rev
            (collect_sources ~include_fixtures:opts.include_fixtures t []))
        opts.targets
    in
    let ml_files = List.filter (fun f -> Filename.check_suffix f ".ml") files in
    let mli_files =
      List.filter (fun f -> Filename.check_suffix f ".mli") files
    in
    (* engine 1: parsetree D-rules *)
    if not opts.typed_only then
      List.iter
        (fun path ->
          match Lint.lint_file ~all_rules:opts.all_rules path with
          | Ok fs -> add_findings fs
          | Error msg -> add_error path msg)
        ml_files;
    (* engine 2a: C003 on interfaces (parsed, path-scoped) *)
    if not opts.no_typed then
      List.iter
        (fun path ->
          match Typed_lint.lint_mli_file ~all_rules:opts.all_rules path with
          | Ok fs -> add_findings fs
          | Error msg -> add_error path msg)
        mli_files;
    (* engine 2b: W- and X-rules over the .cmt forest *)
    if not opts.no_typed then begin
      if not (Sys.file_exists opts.cmt_root) then begin
        if opts.typed_only then begin
          Printf.eprintf
            "dex_lint: cmt root %s does not exist; run `dune build` first\n"
            opts.cmt_root;
          exit 2
        end
        else
          Printf.eprintf
            "dex_lint: note: cmt root %s not found, typed engine skipped \
             (run `dune build` to enable it)\n"
            opts.cmt_root
      end
      else begin
        let impls, intfs, load_errors =
          Typed_lint.load_units ~cmt_root:opts.cmt_root
        in
        List.iter (fun (p, m) -> add_error p m) load_errors;
        (* W-rules on units whose source is in scope *)
        List.iter
          (fun (u : Typed_lint.unit_info) ->
            match (u.source, u.annots) with
            | Some src, Cmt_format.Implementation str
              when under_targets opts.targets src
                   && (opts.include_fixtures
                      || not (Typed_lint.is_fixture_path src)) ->
              let fs = Typed_lint.w_rules ~file:src str in
              let abs = Filename.concat opts.source_root src in
              if fs <> [] && Sys.file_exists abs then
                add_findings
                  (Typed_lint.suppress ~path:src
                     ~src:(Typed_lint.read_file abs) fs)
              else add_findings fs
            | _ -> ())
          impls;
        (* X-rules: reference graph, dead exports, layering *)
        let db = Typed_lint.build_ref_db impls in
        let dead =
          Typed_lint.dead_exports ~scope:opts.dead_scope
            ~include_fixtures:opts.include_fixtures db impls intfs
          |> List.filter (fun (f : Lint.finding) ->
                 under_targets opts.targets f.Lint.file)
        in
        let dead =
          List.concat_map
            (fun (f : Lint.finding) ->
              let abs = Filename.concat opts.source_root f.Lint.file in
              if Sys.file_exists abs then
                Typed_lint.suppress ~path:f.Lint.file
                  ~src:(Typed_lint.read_file abs) [ f ]
              else [ f ])
            dead
        in
        add_findings dead;
        let lay =
          Typed_lint.layering ~source_root:opts.source_root db impls
          |> List.concat_map (fun (f : Lint.finding) ->
                 let abs = Filename.concat opts.source_root f.Lint.file in
                 if Sys.file_exists abs then
                   Typed_lint.suppress ~path:f.Lint.file
                     ~src:(Typed_lint.read_file abs) [ f ]
                 else [ f ])
        in
        add_findings lay;
        match opts.graph_json with
        | Some path ->
          let oc = open_out path in
          Fun.protect
            ~finally:(fun () -> close_out_noerr oc)
            (fun () ->
              output_string oc
                (Dex_obs.Json.to_string (Typed_lint.graph_to_json db impls));
              output_char oc '\n')
        | None -> ()
      end
    end;
    let findings =
      List.sort
        (fun (a : Lint.finding) (b : Lint.finding) ->
          compare (a.file, a.line, a.col, a.rule) (b.file, b.line, b.col, b.rule))
        !findings
    in
    if opts.json then
      print_endline
        (Dex_obs.Json.to_string
           (Lint.report_to_json ~files:(List.length files) ~errors:!errors
              findings))
    else begin
      List.iter (fun f -> print_endline (Lint.finding_to_string f)) findings;
      List.iter
        (fun (path, msg) -> Printf.eprintf "%s: error:\n%s\n" path msg)
        !errors;
      Printf.printf "dex_lint: %d file%s, %d finding%s, %d error%s\n"
        (List.length files)
        (if List.length files = 1 then "" else "s")
        (List.length findings)
        (if List.length findings = 1 then "" else "s")
        (List.length !errors)
        (if List.length !errors = 1 then "" else "s")
    end;
    if !errors <> [] then 2 else if findings <> [] then 1 else 0
  end

let all_rules_table = Lint.rules @ Typed_lint.rules

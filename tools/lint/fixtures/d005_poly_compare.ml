(* D005: polymorphic comparison of graph/network values *)
let same g other_graph = g = other_graph
let order net x = compare net x

(* must pass: literal lengths within the literal budget, including a
   length decided through a local binding and a local helper *)

let create ~word_size () = word_size
let budget = create ~word_size:2 ()
let pair = [| 4; 5 |]
let encode x = [| x |]
let direct () : int * int array = (budget, [| 1; 2 |])
let via_binding () : int * int array = (0, pair)
let via_helper x : int * int array = (1, encode x)

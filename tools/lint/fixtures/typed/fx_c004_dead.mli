(* [used] is referenced by Fx_c004_user; [never_used] must fail C004 *)

val used : int
val never_used : int

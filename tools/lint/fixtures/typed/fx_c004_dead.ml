let used = 1
let never_used = 2

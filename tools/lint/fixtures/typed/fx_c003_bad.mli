(* must fail twice: a raw-int vertex parameter and a raw vertex map *)

val bfs : root:int -> unit
val relabel : vertex_map:int array -> unit

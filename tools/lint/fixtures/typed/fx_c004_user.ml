(* the cross-unit reference that keeps Fx_c004_dead.used alive *)

let answer = Fx_c004_dead.used

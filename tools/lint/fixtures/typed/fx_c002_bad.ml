(* must fail: a dynamic-length message with no Invariant.words guard *)

let site n : int * int array = (1, Array.make n 0)

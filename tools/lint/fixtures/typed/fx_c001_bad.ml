(* must fail: a 3-word message against a literal 2-word budget *)

let create ~word_size () = word_size
let budget = create ~word_size:2 ()
let site () : int * int array = (budget, [| 1; 2; 3 |])

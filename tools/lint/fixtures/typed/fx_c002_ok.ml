(* must pass: the dynamic length is dominated by the runtime guard the
   certifier recognizes, Dex_util.Invariant.words *)

let site n : int * int array =
  (1, Dex_util.Invariant.words ~budget:1 ~where:"fx_c002_ok" (Array.make n 0))

let bfs ~root = ignore (root : int)
let relabel ~vertex_map = ignore (vertex_map : int array)

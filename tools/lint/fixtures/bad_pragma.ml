(* a pragma without a reason is inert and flagged as D000 *)
(* dex-lint: allow D002 *)
let coin () = Random.bool ()

(* D001: hash-order iteration *)
let sum tbl = Hashtbl.fold (fun _ v acc -> v + acc) tbl 0
let dump tbl = Hashtbl.iter (fun k v -> Printf.printf "%d %d\n" k v) tbl
let keys tbl = List.of_seq (Hashtbl.to_seq_keys tbl)

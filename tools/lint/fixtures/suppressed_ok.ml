(* a well-formed pragma silences the rule on the next line *)
(* dex-lint: allow D002 fixture demonstrating a valid suppression *)
let coin () = Random.bool ()

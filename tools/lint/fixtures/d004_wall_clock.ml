(* D004: wall-clock reads *)
let t0 () = Sys.time ()
let t1 () = Unix.gettimeofday ()

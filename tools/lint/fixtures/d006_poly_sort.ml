(* D006: bare polymorphic compare handed to a sort on a kernel hot
   path — exactly the defect Graph.build shipped with before the CSR
   arena work monomorphized it *)
let sort_adjacency arr = Array.sort compare arr
let dedupe_edges edges = List.sort_uniq compare edges
let stable xs = List.stable_sort Stdlib.compare xs

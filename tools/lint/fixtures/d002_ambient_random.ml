(* D002: ambient randomness *)
let coin () = Random.bool ()
let seeded () = Random.self_init ()

(* D003: untyped aborts *)
let check n = if n < 0 then invalid_arg "n"
let boom () = failwith "unexpected"
let unreachable () = assert false

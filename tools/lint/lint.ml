(* dex_lint engine: determinism & CONGEST-conformance rules, checked
   on the untyped parsetree (compiler-libs), path-scoped, with
   per-line suppression pragmas.

   The rules target the failure modes that break schedule-permutation
   reproducibility (see Dex_congest.Conformance and DESIGN.md §9):
   hash-order iteration, ambient randomness, untyped aborts in the
   protocol layers, wall-clock reads outside the sanctioned points,
   and polymorphic comparison of graph/network values. *)

module Json = Dex_obs.Json

type finding = {
  rule : string;
  file : string;
  line : int;
  col : int;
  message : string;
}

let rules =
  [ ( "D001",
      "no Hashtbl.iter/fold/to_seq* (hash-order nondeterminism); use \
       Dex_util.Table.iter_sorted / fold_sorted / keys_sorted" );
    ( "D002",
      "no Random.* outside lib/util/rng.ml; thread a Dex_util.Rng.t \
       explicitly" );
    ( "D003",
      "no failwith/invalid_arg/assert false in lib/congest, lib/routing, \
       lib/expander; raise a typed exception (Dex_util.Invariant.Violation \
       or a module-specific one)" );
    ( "D004",
      "no wall-clock (Sys.time, Unix.gettimeofday, Unix.time) outside \
       bench/ and lib/obs; use Dex_obs.Clock" );
    ( "D005",
      "no polymorphic compare/=/min/max on graph or network values; \
       compare explicit fields" );
    ( "D006",
      "no bare polymorphic [compare] passed to Array.sort / List.sort \
       family in lib/graph or lib/congest; use a monomorphic comparator \
       (Int.compare, String.compare, an explicit field comparator)" ) ]

(* ---------------- path scoping ---------------- *)

(* Paths are scoped on their segments, anchored at the last segment
   named like a top-level source directory, so "lib/congest/x.ml",
   "./lib/congest/x.ml" and "/root/repo/lib/congest/x.ml" scope
   identically. *)
let rel_segments path =
  let segs =
    List.filter (fun s -> s <> "" && s <> ".") (String.split_on_char '/' path)
  in
  let roots = [ "lib"; "bench"; "bin"; "test"; "tools" ] in
  let rec last_root i best = function
    | [] -> best
    | s :: rest -> last_root (i + 1) (if List.mem s roots then Some i else best) rest
  in
  match last_root 0 None segs with
  | None -> segs
  | Some i -> List.filteri (fun j _ -> j >= i) segs

let under prefix segs =
  let rec go p s =
    match (p, s) with
    | [], _ -> true
    | _, [] -> false
    | ph :: pt, sh :: st -> ph = sh && go pt st
  in
  go prefix segs

(* bench/, bin/ and tools/ are gated alongside lib/: the harness and
   the CLI feed the paper's tables, so hash-order iteration or ambient
   randomness there corrupts results just as silently *)
let gated segs =
  under [ "lib" ] segs || under [ "bench" ] segs || under [ "bin" ] segs
  || under [ "tools" ] segs

let rule_applies ~all_rules segs rule =
  all_rules
  ||
  match rule with
  | "D001" -> gated segs
  | "D002" -> gated segs && segs <> [ "lib"; "util"; "rng.ml" ]
  | "D003" ->
    under [ "lib"; "congest" ] segs
    || under [ "lib"; "routing" ] segs
    || under [ "lib"; "expander" ] segs
  | "D004" ->
    (* bench/ stays sanctioned: wall-clock timing is its whole job *)
    gated segs && not (under [ "lib"; "obs" ] segs) && not (under [ "bench" ] segs)
  | "D005" -> true
  | "D006" ->
    (* the kernel's hot paths: a polymorphic-compare sort here costs a
       generic-compare dispatch per element pair *)
    under [ "lib"; "graph" ] segs || under [ "lib"; "congest" ] segs
  | _ -> false

(* ---------------- suppression pragmas ---------------- *)

(* An allow pragma — the marker below followed by a rule id and a
   reason, inside a comment — suppresses that rule on its own line and
   the next one. The reason is mandatory: a pragma without one is
   inert and reported as a malformed-pragma finding, so suppressions
   stay auditable. The marker is spliced from two literals so the
   scanner does not match its own definition. *)
let pragma_marker = "dex-lint: " ^ "allow"

let find_sub hay needle from =
  let nh = String.length hay and nn = String.length needle in
  let rec go i =
    if i + nn > nh then None
    else if String.sub hay i nn = needle then Some i
    else go (i + 1)
  in
  if nn = 0 then None else go from

type pragmas = {
  allowed : (int * string, unit) Hashtbl.t; (* (line, rule) *)
  malformed : finding list;
}

let scan_pragmas ~path src =
  let allowed = Hashtbl.create 8 in
  let malformed = ref [] in
  let lines = String.split_on_char '\n' src in
  List.iteri
    (fun i line ->
      let lnum = i + 1 in
      match find_sub line pragma_marker 0 with
      | None -> ()
      | Some j ->
        let rest = String.sub line (j + String.length pragma_marker)
            (String.length line - j - String.length pragma_marker) in
        let rest = String.trim rest in
        let rule, reason =
          match String.index_opt rest ' ' with
          | Some k ->
            (String.sub rest 0 k,
             String.sub rest (k + 1) (String.length rest - k - 1))
          | None -> (rest, "")
        in
        let reason =
          (* the pragma sits inside a comment; drop the closer *)
          match find_sub reason "*)" 0 with
          | Some k -> String.trim (String.sub reason 0 k)
          | None -> String.trim reason
        in
        let rule = match find_sub rule "*)" 0 with
          | Some k -> String.sub rule 0 k
          | None -> rule
        in
        let well_formed_rule =
          (* any engine's rules: D0xx parsetree, C0xx typed-AST *)
          String.length rule = 4
          && rule.[0] >= 'A' && rule.[0] <= 'Z'
          && String.for_all (fun c -> c >= '0' && c <= '9') (String.sub rule 1 3)
        in
        if well_formed_rule && reason <> "" then begin
          Hashtbl.replace allowed (lnum, rule) ();
          Hashtbl.replace allowed (lnum + 1, rule) ()
        end
        else
          malformed :=
            { rule = "D000";
              file = path;
              line = lnum;
              col = j;
              message =
                Printf.sprintf
                  "malformed suppression pragma: expected (* %s <rule> \
                   <reason> *) with a non-empty reason"
                  pragma_marker }
            :: !malformed)
    lines;
  { allowed; malformed = List.rev !malformed }

(* ---------------- AST rules ---------------- *)

open Parsetree

let lident_path e =
  match e.pexp_desc with
  | Pexp_ident { txt; _ } -> ( try Some (Longident.flatten txt) with _ -> None)
  | _ -> None

let strip_stdlib = function "Stdlib" :: rest -> rest | l -> l

let hashtbl_unordered = [ "iter"; "fold"; "to_seq"; "to_seq_keys"; "to_seq_values" ]

let suffix s suf =
  let ls = String.length s and lf = String.length suf in
  ls >= lf && String.sub s (ls - lf) lf = suf

let graph_like_name n =
  List.mem n [ "g"; "graph"; "network"; "net"; "nw" ]
  || suffix n "_graph" || suffix n "_network" || suffix n "_net"

let graph_like_type ty =
  match ty.ptyp_desc with
  | Ptyp_constr ({ txt; _ }, _) ->
    let l = try Longident.flatten txt with _ -> [] in
    List.mem "Graph" l || List.mem "Network" l
  | _ -> false

let graph_like_operand e =
  match e.pexp_desc with
  | Pexp_ident { txt = Longident.Lident n; _ } -> graph_like_name n
  | Pexp_field (_, { txt; _ }) -> graph_like_name (Longident.last txt)
  | Pexp_constraint (_, ty) -> graph_like_type ty
  | _ -> false

let compare_like = [ "="; "<>"; "=="; "!="; "compare"; "min"; "max" ]

(* D006: the sort entry points whose comparator argument matters *)
let sort_family = function
  | "Array", ("sort" | "stable_sort" | "fast_sort") -> true
  | "List", ("sort" | "stable_sort" | "sort_uniq") -> true
  | _ -> false

let bare_compare arg =
  match Option.map strip_stdlib (lident_path arg) with
  | Some [ "compare" ] -> true
  | _ -> false

let collect ~path ~active src_ast =
  let findings = ref [] in
  let add loc rule message =
    let p = loc.Location.loc_start in
    findings :=
      { rule; file = path; line = p.Lexing.pos_lnum;
        col = p.Lexing.pos_cnum - p.Lexing.pos_bol; message }
      :: !findings
  in
  let on rule = List.mem rule active in
  let expr (self : Ast_iterator.iterator) e =
    (match lident_path e with
     | Some p -> (
       match strip_stdlib p with
       | [ "Hashtbl"; fn ] when on "D001" && List.mem fn hashtbl_unordered ->
         add e.pexp_loc "D001"
           (Printf.sprintf
              "Hashtbl.%s iterates in hash order; use Dex_util.Table.%s" fn
              (match fn with
               | "iter" -> "iter_sorted"
               | "fold" -> "fold_sorted"
               | _ -> "keys_sorted"))
       | "Random" :: _ when on "D002" ->
         add e.pexp_loc "D002"
           "ambient Random.* breaks replayability; thread a Dex_util.Rng.t"
       | [ "failwith" ] when on "D003" ->
         add e.pexp_loc "D003"
           "failwith in a protocol layer; raise a typed exception \
            (Dex_util.Invariant.fail)"
       | [ "invalid_arg" ] when on "D003" ->
         add e.pexp_loc "D003"
           "invalid_arg in a protocol layer; raise a typed exception \
            (Dex_util.Invariant.require)"
       | [ "Sys"; "time" ] when on "D004" ->
         add e.pexp_loc "D004" "wall-clock read; use Dex_obs.Clock.now_ns"
       | [ "Unix"; ("gettimeofday" | "time") ] when on "D004" ->
         add e.pexp_loc "D004" "wall-clock read; use Dex_obs.Clock.now_ns"
       | _ -> ())
     | None -> ());
    (match e.pexp_desc with
     | Pexp_assert { pexp_desc = Pexp_construct ({ txt = Longident.Lident "false"; _ }, None); _ }
       when on "D003" ->
       add e.pexp_loc "D003"
         "assert false in a protocol layer; raise a typed exception \
          (Dex_util.Invariant.fail)"
     | Pexp_apply (fn, args) -> (
       match Option.map strip_stdlib (lident_path fn) with
       | Some [ op ] when on "D005" && List.mem op compare_like ->
         if List.exists (fun (_, a) -> graph_like_operand a) args then
           add e.pexp_loc "D005"
             (Printf.sprintf
                "polymorphic %s on a graph/network value; compare explicit \
                 fields instead" op)
       | Some [ m; sfn ] when on "D006" && sort_family (m, sfn) -> (
         match
           List.find_opt (fun (lbl, _) -> lbl = Asttypes.Nolabel) args
         with
         | Some (_, cmp) when bare_compare cmp ->
           add e.pexp_loc "D006"
             (Printf.sprintf
                "polymorphic compare passed to %s.%s on a kernel hot path; \
                 use a monomorphic comparator (e.g. Int.compare)" m sfn)
         | _ -> ())
       | _ -> ())
     | _ -> ());
    Ast_iterator.default_iterator.expr self e
  in
  let iterator = { Ast_iterator.default_iterator with expr } in
  iterator.structure iterator src_ast;
  List.rev !findings

(* ---------------- driver ---------------- *)

let parse_error_message exn =
  match Location.error_of_exn exn with
  | Some (`Ok report) ->
    Location.print_report Format.str_formatter report;
    Format.flush_str_formatter ()
  | _ -> Printexc.to_string exn

(* [lint_source ~path src] lints [src] as if it lived at [path] (the
   path decides which rules are in scope). Returns the surviving
   findings, sorted by position. *)
let lint_source ?(all_rules = false) ~path src =
  let segs = rel_segments path in
  let active =
    List.filter (fun (r, _) -> rule_applies ~all_rules segs r) rules
    |> List.map fst
  in
  let lexbuf = Lexing.from_string src in
  Location.init lexbuf path;
  match Parse.implementation lexbuf with
  | exception exn -> Error (parse_error_message exn)
  | ast ->
    let pragmas = scan_pragmas ~path src in
    let raw = collect ~path ~active ast in
    let kept =
      List.filter
        (fun f -> not (Hashtbl.mem pragmas.allowed (f.line, f.rule)))
        raw
    in
    let all = pragmas.malformed @ kept in
    Ok
      (List.sort
         (fun a b ->
           compare (a.line, a.col, a.rule) (b.line, b.col, b.rule))
         all)

let lint_file ?all_rules path =
  match
    let ic = open_in_bin path in
    Fun.protect
      ~finally:(fun () -> close_in_noerr ic)
      (fun () -> really_input_string ic (in_channel_length ic))
  with
  | exception Sys_error msg -> Error msg
  | src -> lint_source ?all_rules ~path src

(* ---------------- output ---------------- *)

let finding_to_string f =
  Printf.sprintf "%s:%d:%d: [%s] %s" f.file f.line f.col f.rule f.message

let finding_to_json f =
  Json.Obj
    [ ("rule", Json.String f.rule);
      ("file", Json.String f.file);
      ("line", Json.Int f.line);
      ("col", Json.Int f.col);
      ("message", Json.String f.message) ]

let report_to_json ~files ~errors findings =
  Json.Obj
    [ ("tool", Json.String "dex_lint");
      ("files", Json.Int files);
      ("findings", Json.List (List.map finding_to_json findings));
      ( "errors",
        Json.List
          (List.map
             (fun (path, msg) ->
               Json.Obj
                 [ ("file", Json.String path); ("error", Json.String msg) ])
             errors) ) ]

(* dex_lint typed-AST engine: rules that need the compiler's verdict,
   checked on `-bin-annot` .cmt/.cmti files produced by the dune build
   (dune passes -bin-annot by default).

   Three rule families (see DESIGN.md §10):

   W-rules — word-budget certification. Every message-construction
   site (a typed tuple `(int, int array)`, the shape of an outbox or
   inbox entry) is classified: statically-decidable lengths (literal
   arrays, `Array.make k` with a literal k, local bindings and
   single-clause local helpers returning such arrays) are certified
   against the file's word budget (C001); dynamic lengths must be
   dominated by a `Dex_util.Invariant.words` guard (C002). The budget
   is the largest literal `~word_size` passed to a `create` call in
   the same file, 1 (the CONGEST default: O(log n) bits = one machine
   word) otherwise; a non-literal `~word_size` makes the budget
   undecidable and disables C001 for the file, never C002.

   V-rules — coordinate-space safety. C003 parses protocol-layer
   `.mli`s (lib/congest, lib/ldd, lib/expander) and rejects raw `int`
   vertex-valued labelled parameters — the phantom ids
   `Dex_graph.Vertex.local`/`orig` and `Vertex.Map.t` are free at
   runtime and make cross-space indexing a type error.

   X-rules — cross-module reference graph. The .cmts of the whole
   build yield a unit-level reference graph (value uses, module
   aliases, type constructors), exported as JSON for the obs layer.
   C004 reports `.mli` value exports referenced by no other
   compilation unit; C005 reports layering violations: a library
   referencing a peer or higher layer, and library dependencies
   declared in a dune file that no unit of the library references.

   Decidability limits are deliberate: lengths flowing through
   function parameters, arrays built by non-local helpers, and
   budgets threaded as values classify as dynamic — guard them with
   `Invariant.words` at the construction site or suppress with an
   allow pragma naming the rule and a reason (see [Lint.scan_pragmas]). *)

module Json = Dex_obs.Json

type finding = Lint.finding = {
  rule : string;
  file : string;
  line : int;
  col : int;
  message : string;
}

let rules =
  [ ( "C001",
      "statically-decidable message length exceeds the word budget \
       (literal array or Array.make with literal size vs the file's \
       literal ~word_size, default 1)" );
    ( "C002",
      "dynamic-length message construction not dominated by a \
       Dex_util.Invariant.words length guard" );
    ( "C003",
      "raw int vertex parameter in a protocol-layer .mli; use \
       Dex_graph.Vertex.local / Vertex.orig (and Vertex.Map.t for \
       vertex maps)" );
    ( "C004",
      "dead .mli export: value referenced by no other compilation \
       unit" );
    ( "C005",
      "layering violation: reference against the layer order, or a \
       dune-declared library dependency no unit of the library uses" ) ]

let mk_finding ~rule ~file ~line ~col message = { rule; file; line; col; message }

let finding_of_loc ~rule ~file loc message =
  let p = loc.Location.loc_start in
  mk_finding ~rule ~file ~line:p.Lexing.pos_lnum
    ~col:(p.Lexing.pos_cnum - p.Lexing.pos_bol)
    message

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

(* suppress findings with the shared pragma syntax, reading [src] as
   the text the findings' lines refer to *)
let suppress ~path ~src findings =
  let pragmas = Lint.scan_pragmas ~path src in
  List.filter
    (fun f -> not (Hashtbl.mem pragmas.Lint.allowed (f.line, f.rule)))
    findings

let is_fixture_path path = List.mem "fixtures" (Lint.rel_segments path)

(* ================= W-rules: word-budget certification ============= *)

open Typedtree

type len_class = Static of int | Guarded | Dynamic

(* what a local binding tells us about lengths *)
type binding = Arr of len_class | Fn of len_class

let path_comps p = String.split_on_char '.' (Path.name p)

let ident_comps e =
  match e.exp_desc with Texp_ident (p, _, _) -> Some (path_comps p) | _ -> None

let strip_stdlib = function "Stdlib" :: rest -> rest | l -> l

let is_invariant_words comps =
  match List.rev comps with
  | "words" :: "Invariant" :: _ -> true
  | _ -> false

let is_array_make comps =
  match List.rev (strip_stdlib comps) with
  | ("make" | "create" | "init") :: "Array" :: _ -> true
  | [ ("make" | "create" | "init") ] -> false
  | _ -> false

let constant_int e =
  match e.exp_desc with
  | Texp_constant (Asttypes.Const_int k) -> Some k
  (* a labelled arg to an Optional parameter arrives as [Some k] *)
  | Texp_construct ({ txt = Longident.Lident "Some"; _ }, _, [ inner ]) -> (
    match inner.exp_desc with
    | Texp_constant (Asttypes.Const_int k) -> Some k
    | _ -> None)
  | _ -> None

let is_int_type ty =
  match Types.get_desc ty with
  | Types.Tconstr (p, [], _) -> Path.name p = "int"
  | _ -> false

(* [int array], or any alias whose tail name is [message] (the
   Network/Clique message abbreviation survives unexpanded in cmts) *)
let is_word_array_type ty =
  match Types.get_desc ty with
  | Types.Tconstr (p, [ elt ], _) when Path.name p = "array" -> is_int_type elt
  | Types.Tconstr (p, _, _) -> (
    match List.rev (path_comps p) with "message" :: _ -> true | _ -> false)
  | _ -> false

let rec classify env e =
  match e.exp_desc with
  | Texp_array elems -> Static (List.length elems)
  | Texp_apply (f, args) -> (
    match ident_comps f with
    | Some comps when is_invariant_words comps -> Guarded
    | Some comps when is_array_make comps -> (
      match
        List.find_map
          (function Asttypes.Nolabel, Some a -> Some a | _ -> None)
          args
      with
      | Some a -> (
        match constant_int a with Some k -> Static k | None -> Dynamic)
      | None -> Dynamic)
    | Some comps -> (
      match Hashtbl.find_opt env (List.nth comps (List.length comps - 1)) with
      | Some (Fn cls) -> cls
      | _ -> Dynamic)
    | None -> Dynamic)
  | Texp_ident (p, _, _) -> (
    let comps = path_comps p in
    match Hashtbl.find_opt env (List.nth comps (List.length comps - 1)) with
    | Some (Arr cls) -> cls
    | _ -> Dynamic)
  | Texp_let (_, vbs, body) ->
    List.iter (record_binding env) vbs;
    classify env body
  | Texp_sequence (_, e2) -> classify env e2
  | Texp_open (_, e2) -> classify env e2
  | Texp_ifthenelse (_, t, Some f) ->
    let a = classify env t and b = classify env f in
    if a = b then a else Dynamic
  | _ -> Dynamic

and record_binding env vb =
  match vb.vb_pat.pat_desc with
  | Tpat_var (id, _) -> (
    let name = Ident.name id in
    let rec through_fun e =
      match e.exp_desc with
      | Texp_function { cases = [ { c_rhs; c_guard = None; _ } ]; _ } ->
        Some (through_fun_body c_rhs)
      | _ -> None
    and through_fun_body e =
      match e.exp_desc with
      | Texp_function { cases = [ { c_rhs; c_guard = None; _ } ]; _ } ->
        through_fun_body c_rhs
      | _ -> e
    in
    match through_fun vb.vb_expr with
    | Some body -> (
      match classify env body with
      | Dynamic -> ()
      | cls -> Hashtbl.replace env name (Fn cls))
    | None -> (
      match classify env vb.vb_expr with
      | Dynamic -> ()
      | cls -> Hashtbl.replace env name (Arr cls)))
  | _ -> ()

(* W-rule pass over one implementation: find the word budget and every
   message site, then certify *)
let w_rules ~file str =
  let env : (string, binding) Hashtbl.t = Hashtbl.create 32 in
  let budgets = ref [] in
  let undecidable_budget = ref false in
  let sites = ref [] in
  let expr (self : Tast_iterator.iterator) e =
    (match e.exp_desc with
     | Texp_let (_, vbs, _) -> List.iter (record_binding env) vbs
     | Texp_apply (f, args) -> (
       match ident_comps f with
       | Some comps
         when (match List.rev comps with
               | "create" :: _ -> true
               | _ -> false) ->
         List.iter
           (function
             | (Asttypes.Labelled "word_size" | Asttypes.Optional "word_size"), Some a
               -> (
               match constant_int a with
               | Some k -> budgets := k :: !budgets
               | None -> undecidable_budget := true)
             | _ -> ())
           args
       | _ -> ())
     | Texp_tuple [ e1; e2 ]
       when is_int_type e1.exp_type && is_word_array_type e2.exp_type ->
       sites := (e2, e2.exp_loc) :: !sites
     | _ -> ());
    Tast_iterator.default_iterator.expr self e
  in
  let structure_item (self : Tast_iterator.iterator) si =
    (match si.str_desc with
     | Tstr_value (_, vbs) -> List.iter (record_binding env) vbs
     | _ -> ());
    Tast_iterator.default_iterator.structure_item self si
  in
  let it = { Tast_iterator.default_iterator with expr; structure_item } in
  it.structure it str;
  let budget = List.fold_left max 1 !budgets in
  List.filter_map
    (fun (e, loc) ->
      match classify env e with
      | Guarded -> None
      | Static n ->
        if (not !undecidable_budget) && n > budget then
          Some
            (finding_of_loc ~rule:"C001" ~file loc
               (Printf.sprintf
                  "message of %d words exceeds the %d-word budget; shrink it \
                   or raise ~word_size with a literal"
                  n budget))
        else None
      | Dynamic ->
        Some
          (finding_of_loc ~rule:"C002" ~file loc
             "dynamic-length message construction; dominate it with \
              Dex_util.Invariant.words ~budget ~where at the construction \
              site"))
    (List.rev !sites)

(* ================= loading .cmt units ============================= *)

type unit_info = {
  canon : string; (* "Dex_congest.Network", "Dexpander", ... *)
  lib : string option; (* owning dune library, from the .objs dir *)
  dir : string; (* source dir relative to the build root *)
  source : string option; (* relative source path, when recorded *)
  imports : string list; (* raw unit names from cmt_imports *)
  annots : Cmt_format.binary_annots;
}

(* "Dex_congest__Network" -> ["Dex_congest"; "Network"];
   a trailing "__" (dune's generated alias unit) drops cleanly *)
let split_wrapped name =
  let n = String.length name in
  let rec go acc start i =
    if i + 1 >= n then
      let last = String.sub name start (n - start) in
      List.rev (if last = "" then acc else last :: acc)
    else if name.[i] = '_' && name.[i + 1] = '_' then
      let seg = String.sub name start (i - start) in
      go (if seg = "" then acc else seg :: acc) (i + 2) (i + 2)
    else go acc start (i + 1)
  in
  go [] 0 0

let canon_of_unit_name name = String.concat "." (split_wrapped name)

(* lib name from ".../.dex_congest.objs/..." or ".../.main.eobjs/..." *)
let lib_of_cmt_path path =
  let segs = String.split_on_char '/' path in
  List.find_map
    (fun s ->
      if String.length s > 6 && s.[0] = '.' && Filename.check_suffix s ".objs"
      then
        let core = Filename.remove_extension (String.sub s 1 (String.length s - 1)) in
        if Filename.check_suffix core ".e" then None
        else Some core
      else None)
    segs

let dir_of_cmt_path path =
  let segs = String.split_on_char '/' path in
  let rec take acc = function
    | [] -> List.rev acc
    | s :: _ when String.length s > 0 && s.[0] = '.' && not (s = ".") -> List.rev acc
    | s :: rest -> take (s :: acc) rest
  in
  String.concat "/" (take [] segs)

let rec collect_suffix root suffix acc =
  if Sys.is_directory root then
    Array.fold_left
      (fun acc entry -> collect_suffix (Filename.concat root entry) suffix acc)
      acc (Sys.readdir root)
  else if Filename.check_suffix root suffix then root :: acc
  else acc

let load_units ~cmt_root =
  let errors = ref [] in
  let load suffix path =
    match Cmt_format.read_cmt path with
    | exception exn ->
      errors := (path, Printexc.to_string exn) :: !errors;
      None
    | cmt ->
      let rel =
        if String.length path > String.length cmt_root
           && String.sub path 0 (String.length cmt_root) = cmt_root
        then
          let r = String.sub path (String.length cmt_root)
              (String.length path - String.length cmt_root) in
          if r <> "" && r.[0] = '/' then String.sub r 1 (String.length r - 1)
          else r
        else path
      in
      ignore suffix;
      Some
        { canon = canon_of_unit_name cmt.Cmt_format.cmt_modname;
          lib = lib_of_cmt_path rel;
          dir = dir_of_cmt_path rel;
          source = cmt.Cmt_format.cmt_sourcefile;
          imports = List.map fst cmt.Cmt_format.cmt_imports;
          annots = cmt.Cmt_format.cmt_annots }
  in
  let cmts = List.sort compare (collect_suffix cmt_root ".cmt" []) in
  let cmtis = List.sort compare (collect_suffix cmt_root ".cmti" []) in
  let impls = List.filter_map (load ".cmt") cmts in
  let intfs = List.filter_map (load ".cmti") cmtis in
  (impls, intfs, List.rev !errors)

(* ================= X-rules: reference graph ======================= *)

type ref_db = {
  known_units : (string, unit) Hashtbl.t; (* canon unit names *)
  global_aliases : (string, string list) Hashtbl.t; (* "Dexpander.Ldd" -> comps *)
  (* (referencing unit canon, target unit canon, qualified value name);
     value name "" is a bare module reference *)
  mutable value_refs : (string * string * string) list;
}

let norm_comps comps = List.concat_map split_wrapped comps

(* resolve alias prefixes: local aliases of the referencing unit first,
   then cross-unit aliases (e.g. Dexpander's re-exports), to fixpoint *)
let resolve_comps db local_aliases comps =
  let step comps =
    match comps with
    | head :: rest when Hashtbl.mem local_aliases head ->
      Some (Hashtbl.find local_aliases head @ rest)
    | a :: b :: rest when Hashtbl.mem db.global_aliases (a ^ "." ^ b) ->
      Some (Hashtbl.find db.global_aliases (a ^ "." ^ b) @ rest)
    | _ -> None
  in
  let rec go n comps =
    if n = 0 then comps
    else match step comps with None -> comps | Some c -> go (n - 1) c
  in
  go 8 (norm_comps comps)

(* split resolved comps into (unit canon, qualified member name) *)
let target_of db comps =
  match comps with
  | a :: b :: rest when Hashtbl.mem db.known_units (a ^ "." ^ b) ->
    Some (a ^ "." ^ b, String.concat "." rest)
  | a :: rest when Hashtbl.mem db.known_units a ->
    Some (a, String.concat "." rest)
  | _ -> None

let scan_unit_refs db u =
  match u.annots with
  | Cmt_format.Implementation str ->
    let local_aliases : (string, string list) Hashtbl.t = Hashtbl.create 8 in
    let add_ref p =
      match target_of db (resolve_comps db local_aliases (path_comps p)) with
      | Some (unit, member) when unit <> u.canon ->
        db.value_refs <- (u.canon, unit, member) :: db.value_refs
      | _ -> ()
    in
    let expr (self : Tast_iterator.iterator) e =
      (match e.exp_desc with
       | Texp_ident (p, _, _) -> add_ref p
       | Texp_construct _ -> ()
       | _ -> ());
      Tast_iterator.default_iterator.expr self e
    in
    let module_expr (self : Tast_iterator.iterator) me =
      (match me.mod_desc with Tmod_ident (p, _) -> add_ref p | _ -> ());
      Tast_iterator.default_iterator.module_expr self me
    in
    let typ (self : Tast_iterator.iterator) ct =
      (match ct.ctyp_desc with Ttyp_constr (p, _, _) -> add_ref p | _ -> ());
      Tast_iterator.default_iterator.typ self ct
    in
    let structure_item (self : Tast_iterator.iterator) si =
      (match si.str_desc with
       | Tstr_module
           { mb_name = { txt = Some name; _ };
             mb_expr = { mod_desc = Tmod_ident (p, _); _ };
             _ } ->
         Hashtbl.replace local_aliases name
           (resolve_comps db local_aliases (path_comps p))
       | _ -> ());
      Tast_iterator.default_iterator.structure_item self si
    in
    let it =
      { Tast_iterator.default_iterator with expr; module_expr; typ;
        structure_item }
    in
    it.structure it str
  | _ -> ()

(* register the module aliases a unit exports, so references routed
   through a facade (Dexpander.Ldd.run) resolve to the defining unit *)
let scan_unit_aliases db u =
  match u.annots with
  | Cmt_format.Implementation str ->
    List.iter
      (fun si ->
        match si.str_desc with
        | Tstr_module
            { mb_name = { txt = Some name; _ };
              mb_expr = { mod_desc = Tmod_ident (p, _); _ };
              _ } ->
          Hashtbl.replace db.global_aliases
            (u.canon ^ "." ^ name)
            (norm_comps (path_comps p))
        | _ -> ())
      str.str_items
  | _ -> ()

(* value exports of a .cmti, with nested-module prefixes *)
let exports_of_interface sg =
  let acc = ref [] in
  let rec walk prefix items =
    List.iter
      (fun item ->
        match item.sig_desc with
        | Tsig_value vd ->
          acc := (prefix ^ vd.val_name.Asttypes.txt, vd.val_loc) :: !acc
        | Tsig_module md -> (
          let name =
            match md.md_name.Asttypes.txt with Some n -> n | None -> ""
          in
          match md.md_type.mty_desc with
          | Tmty_signature s when name <> "" ->
            walk (prefix ^ name ^ ".") s.sig_items
          | _ -> ())
        | _ -> ())
      items
  in
  (match sg with
  | Cmt_format.Interface s -> walk "" s.sig_items
  | _ -> ());
  List.rev !acc

let build_ref_db impls =
  let db =
    { known_units = Hashtbl.create 64;
      global_aliases = Hashtbl.create 64;
      value_refs = [] }
  in
  List.iter (fun u -> Hashtbl.replace db.known_units u.canon ()) impls;
  List.iter (scan_unit_aliases db) impls;
  List.iter (scan_unit_refs db) impls;
  db

(* ---- C004: dead exports ---- *)

let dead_exports ~scope ~include_fixtures db impls intfs =
  let used : (string * string, unit) Hashtbl.t = Hashtbl.create 256 in
  List.iter
    (fun (_, unit, member) ->
      if member <> "" then Hashtbl.replace used (unit, member) ())
    db.value_refs;
  ignore impls;
  List.concat_map
    (fun u ->
      match u.source with
      | Some src
        when List.exists (fun s -> Lint.under (Lint.rel_segments s) (Lint.rel_segments src)) scope
             && (include_fixtures || not (is_fixture_path src)) ->
        List.filter_map
          (fun (name, loc) ->
            if Hashtbl.mem used (u.canon, name) then None
            else
              Some
                (finding_of_loc ~rule:"C004" ~file:src loc
                   (Printf.sprintf
                      "export %s.%s is referenced by no other compilation \
                       unit; drop it from the .mli or suppress with a pragma"
                      u.canon name)))
          (exports_of_interface u.annots)
      | _ -> [])
    intfs

(* ---- C005: layering ---- *)

(* the architecture ladder; an edge must point strictly down *)
let layer_ranks =
  [ ("dex_util", 0); ("dex_graph", 1); ("dex_obs", 1); ("dex_congest", 2);
    ("dex_spectral", 2); ("dex_sparsecut", 3); ("dex_ldd", 3);
    ("dex_decomp", 4); ("dex_routing", 4); ("dex_triangle", 5);
    ("dexpander", 6) ]

let rank lib = List.assoc_opt lib layer_ranks

(* minimal dune-file reader: the library names inside "(libraries ...)" *)
let declared_libraries dune_src =
  match Lint.find_sub dune_src "(libraries" 0 with
  | None -> []
  | Some i ->
    let start = i + String.length "(libraries" in
    let rec close j depth =
      if j >= String.length dune_src then j
      else
        match dune_src.[j] with
        | '(' -> close (j + 1) (depth + 1)
        | ')' -> if depth = 0 then j else close (j + 1) (depth - 1)
        | _ -> close (j + 1) depth
    in
    let stop = close start 0 in
    String.sub dune_src start (stop - start)
    |> String.split_on_char ' '
    |> List.concat_map (String.split_on_char '\n')
    |> List.filter (fun s -> String.trim s <> "")
    |> List.map String.trim

let layering ~source_root db impls =
  let lib_of_unit : (string, string) Hashtbl.t = Hashtbl.create 64 in
  List.iter
    (fun u -> match u.lib with
       | Some l -> Hashtbl.replace lib_of_unit u.canon l
       | None -> ())
    impls;
  (* observed lib -> lib edges from resolved references *)
  let edges : (string * string, unit) Hashtbl.t = Hashtbl.create 64 in
  List.iter
    (fun (src_unit, dst_unit, _) ->
      match
        (Hashtbl.find_opt lib_of_unit src_unit, Hashtbl.find_opt lib_of_unit dst_unit)
      with
      | Some a, Some b when a <> b -> Hashtbl.replace edges (a, b) ()
      | _ -> ())
    db.value_refs;
  let findings = ref [] in
  (* order violations *)
  Dex_util.Table.iter_sorted
    (fun (a, b) () ->
      match (rank a, rank b) with
      | Some ra, Some rb when rb >= ra ->
        findings :=
          mk_finding ~rule:"C005" ~file:(Printf.sprintf "lib (%s)" a) ~line:1
            ~col:0
            (Printf.sprintf
               "layering violation: %s (layer %d) references %s (layer %d); \
                edges must point strictly down the ladder"
               a ra b rb)
          :: !findings
      | _ -> ())
    edges;
  (* declared-but-unused dune dependencies, lib/ scope *)
  let lib_dirs =
    let base = Filename.concat source_root "lib" in
    if Sys.file_exists base && Sys.is_directory base then
      Sys.readdir base |> Array.to_list |> List.sort compare
      |> List.filter_map (fun d ->
             let dir = Filename.concat base d in
             let dune = Filename.concat dir "dune" in
             if Sys.file_exists dune then Some (Filename.concat "lib" d, dune)
             else None)
    else []
  in
  let local_libs =
    List.sort_uniq compare
      (List.filter_map (fun u -> u.lib) impls)
  in
  List.iter
    (fun (rel_dir, dune_path) ->
      let src = read_file dune_path in
      let declared = declared_libraries src in
      (* which libs live in this dir? (normally one) *)
      let here =
        List.sort_uniq compare
          (List.filter_map
             (fun u -> if u.dir = rel_dir then u.lib else None)
             impls)
      in
      List.iter
        (fun lib ->
          List.iter
            (fun dep ->
              if List.mem dep local_libs && not (Hashtbl.mem edges (lib, dep))
              then
                findings :=
                  mk_finding ~rule:"C005"
                    ~file:(Filename.concat rel_dir "dune")
                    ~line:1 ~col:0
                    (Printf.sprintf
                       "declared but unused dependency: %s lists %s in \
                        (libraries ...) yet no unit of %s references it"
                       lib dep lib)
                  :: !findings)
            declared)
        here)
    lib_dirs;
  List.rev !findings

(* ---- reference graph as JSON (for the obs layer / CI artifact) ---- *)

let graph_to_json db impls =
  let nodes =
    List.map
      (fun u ->
        Json.Obj
          [ ("unit", Json.String u.canon);
            ( "lib",
              match u.lib with Some l -> Json.String l | None -> Json.Null );
            ("dir", Json.String u.dir);
            ( "source",
              match u.source with Some s -> Json.String s | None -> Json.Null )
          ])
      impls
  in
  let edges =
    List.sort_uniq compare
      (List.map (fun (a, b, _) -> (a, b)) db.value_refs)
  in
  Json.Obj
    [ ("tool", Json.String "dex_lint_typed");
      ("units", Json.List nodes);
      ( "edges",
        Json.List
          (List.map
             (fun (a, b) ->
               Json.Obj
                 [ ("from", Json.String a); ("to", Json.String b) ])
             edges) );
      ( "value_refs",
        Json.List
          (List.filter_map
             (fun (a, b, m) ->
               if m = "" then None
               else
                 Some
                   (Json.Obj
                      [ ("from", Json.String a); ("to", Json.String b);
                        ("value", Json.String m) ]))
             (List.sort_uniq compare db.value_refs)) ) ]

(* ================= C003: vertex params in .mli ==================== *)

let vertex_param_names =
  [ "vertex"; "root"; "src"; "dst"; "leader"; "source"; "target"; "parent";
    "neighbor"; "u"; "v" ]

let c003_scope segs =
  Lint.under [ "lib"; "congest" ] segs
  || Lint.under [ "lib"; "ldd" ] segs
  || Lint.under [ "lib"; "expander" ] segs

let lint_mli_source ?(all_rules = false) ~path src =
  let segs = Lint.rel_segments path in
  if not (all_rules || c003_scope segs) then Ok []
  else begin
    let lexbuf = Lexing.from_string src in
    Location.init lexbuf path;
    match Parse.interface lexbuf with
    | exception exn -> Error (Lint.parse_error_message exn)
    | sg ->
      let findings = ref [] in
      let open Parsetree in
      let is_plain_int ct =
        match ct.ptyp_desc with
        | Ptyp_constr ({ txt = Longident.Lident "int"; _ }, []) -> true
        | _ -> false
      in
      let is_int_array ct =
        match ct.ptyp_desc with
        | Ptyp_constr ({ txt = Longident.Lident "array"; _ }, [ elt ]) ->
          is_plain_int elt
        | _ -> false
      in
      let typ (self : Ast_iterator.iterator) ct =
        (match ct.ptyp_desc with
         | Ptyp_arrow ((Asttypes.Labelled l | Asttypes.Optional l), arg, _) ->
           if List.mem l vertex_param_names && is_plain_int arg then
             findings :=
               finding_of_loc ~rule:"C003" ~file:path arg.ptyp_loc
                 (Printf.sprintf
                    "vertex-valued parameter ~%s is a raw int; use \
                     Dex_graph.Vertex.local (subnetwork coordinates) or \
                     Vertex.orig (original coordinates)"
                    l)
               :: !findings
           else if l = "vertex_map" && is_int_array arg then
             findings :=
               finding_of_loc ~rule:"C003" ~file:path arg.ptyp_loc
                 "vertex map parameter is a raw int array; use \
                  Dex_graph.Vertex.Map.t"
               :: !findings
         | _ -> ());
        Ast_iterator.default_iterator.typ self ct
      in
      let it = { Ast_iterator.default_iterator with typ } in
      it.signature it sg;
      Ok (suppress ~path ~src (List.rev !findings))
  end

let lint_mli_file ?all_rules path =
  match read_file path with
  | exception Sys_error msg -> Error msg
  | src -> lint_mli_source ?all_rules ~path src

(* dex_lint: determinism & CONGEST-conformance static analysis.

   Usage: dune exec tools/lint/dex_lint.exe -- [options] <file-or-dir>...

   Exit status: 0 clean, 1 unsuppressed findings, 2 parse/IO errors. *)

module Lint = Dex_lint_core.Lint

let usage = "dex_lint [--json] [--all-rules] [--list-rules] <file-or-dir>..."

let json_mode = ref false
let all_rules = ref false
let list_rules = ref false
let targets = ref []

let spec =
  [ ("--json", Arg.Set json_mode, " emit the report as a single JSON object");
    ( "--all-rules",
      Arg.Set all_rules,
      " apply every rule regardless of path scoping (for fixtures)" );
    ("--list-rules", Arg.Set list_rules, " print the rule table and exit") ]

let rec collect_ml path acc =
  if Sys.is_directory path then
    Array.fold_left
      (fun acc entry ->
        if entry = "_build" || entry = ".git" then acc
        else collect_ml (Filename.concat path entry) acc)
      acc
      (let entries = Sys.readdir path in
       Array.sort compare entries;
       entries)
  else if Filename.check_suffix path ".ml" then path :: acc
  else acc

let () =
  Arg.parse (Arg.align spec) (fun t -> targets := t :: !targets) usage;
  if !list_rules then begin
    List.iter (fun (id, summary) -> Printf.printf "%s  %s\n" id summary) Lint.rules;
    exit 0
  end;
  if !targets = [] then begin
    prerr_endline usage;
    exit 2
  end;
  let files =
    List.concat_map
      (fun t ->
        if not (Sys.file_exists t) then begin
          Printf.eprintf "dex_lint: no such file or directory: %s\n" t;
          exit 2
        end;
        List.rev (collect_ml t []))
      (List.rev !targets)
  in
  let findings = ref [] in
  let errors = ref [] in
  List.iter
    (fun path ->
      match Lint.lint_file ~all_rules:!all_rules path with
      | Ok fs -> findings := !findings @ fs
      | Error msg -> errors := !errors @ [ (path, msg) ])
    files;
  if !json_mode then
    print_endline
      (Dex_obs.Json.to_string
         (Lint.report_to_json ~files:(List.length files) ~errors:!errors !findings))
  else begin
    List.iter (fun f -> print_endline (Lint.finding_to_string f)) !findings;
    List.iter
      (fun (path, msg) -> Printf.eprintf "%s: parse error:\n%s\n" path msg)
      !errors;
    Printf.printf "dex_lint: %d file%s, %d finding%s, %d error%s\n"
      (List.length files)
      (if List.length files = 1 then "" else "s")
      (List.length !findings)
      (if List.length !findings = 1 then "" else "s")
      (List.length !errors)
      (if List.length !errors = 1 then "" else "s")
  end;
  if !errors <> [] then exit 2 else if !findings <> [] then exit 1 else exit 0

(* dex_lint: determinism & CONGEST-conformance static analysis.

   Usage: dune exec tools/lint/dex_lint.exe -- [options] <file-or-dir>...

   Two engines (see DESIGN.md §9–10): the parsetree D-rules and the
   typed-AST C-rules (word budgets, vertex coordinate spaces, the
   cross-module reference graph). The typed engine needs the .cmt
   files of a completed `dune build`.

   Exit status: 0 clean, 1 unsuppressed findings, 2 parse/IO errors. *)

module Cli = Dex_lint_core.Cli

let usage =
  "dex_lint [--json] [--all-rules] [--typed-only] [--no-typed] [--cmt-root \
   DIR] [--source-root DIR] [--graph-json FILE] [--dead-scope DIR] \
   [--include-fixtures] [--list-rules] <file-or-dir>..."

let opts = ref Cli.default_opts
let list_rules = ref false

let spec =
  [ ( "--json",
      Arg.Unit (fun () -> opts := { !opts with Cli.json = true }),
      " emit the report as a single JSON object" );
    ( "--all-rules",
      Arg.Unit (fun () -> opts := { !opts with Cli.all_rules = true }),
      " apply every rule regardless of path scoping (for fixtures)" );
    ( "--typed-only",
      Arg.Unit (fun () -> opts := { !opts with Cli.typed_only = true }),
      " run only the typed-AST engine (C-rules)" );
    ( "--no-typed",
      Arg.Unit (fun () -> opts := { !opts with Cli.no_typed = true }),
      " run only the parsetree engine (D-rules)" );
    ( "--cmt-root",
      Arg.String (fun d -> opts := { !opts with Cli.cmt_root = d }),
      "DIR root of the .cmt forest (default _build/default)" );
    ( "--source-root",
      Arg.String (fun d -> opts := { !opts with Cli.source_root = d }),
      "DIR root the .cmt source paths are relative to (default .)" );
    ( "--graph-json",
      Arg.String (fun f -> opts := { !opts with Cli.graph_json = Some f }),
      "FILE write the module reference graph as JSON" );
    ( "--dead-scope",
      Arg.String
        (fun d ->
          opts := { !opts with Cli.dead_scope = !opts.Cli.dead_scope @ [ d ] }),
      "DIR also scan DIR's .mli exports for C004 (default: lib)" );
    ( "--include-fixtures",
      Arg.Unit (fun () -> opts := { !opts with Cli.include_fixtures = true }),
      " lint fixture directories too (they violate on purpose)" );
    ("--list-rules", Arg.Set list_rules, " print the rule table and exit") ]

let () =
  Arg.parse (Arg.align spec)
    (fun t -> opts := { !opts with Cli.targets = !opts.Cli.targets @ [ t ] })
    usage;
  if !list_rules then begin
    List.iter
      (fun (id, summary) -> Printf.printf "%s  %s\n" id summary)
      Cli.all_rules_table;
    exit 0
  end;
  exit (Cli.run !opts)

(* Benchmark harness — regenerates the paper's claims as measured
   tables (the paper has no empirical tables of its own; see DESIGN.md
   §1 and EXPERIMENTS.md for the mapping).

     E1  Theorem 4  LDD quality (diameter bound, cut fraction, w.h.p.)
     E2  Theorem 3  nearly most balanced sparse cut quality
     E3  Theorem 3  vs prior sparse-cut algorithms (balance failure)
     E4  Theorem 1  decomposition quality ((ε, φ) guarantees measured)
     E5  Theorem 1  rounds scaling in n and k
     E6  Theorem 1  vs CPZ'19 baseline (the arboricity leftover)
     E7  Theorem 2  triangle enumeration rounds vs baselines
     E8  GKS        routing preprocessing/query trade-off
     E9  ablations  Phase-2 level count, sweep stride, nibble copies
     E10 Bechamel   micro-benchmarks of the core primitives
     E11 Section 1.2 recursion depth: strawman vs Theorem 1; sequential
                    Spielman-Teng Partition vs the parallelized one
     E12 Section 1   Jerrum-Sinclair: 1/Phi <= tau_mix <= log n / Phi^2
     E13 robustness  fault sweep: reliable delivery overhead vs drop
                     probability; Las Vegas retry cost until certified
     E14 kernel      throughput: list executors vs the CSR arena
                     cursor driver vs Domain-parallel rounds

   `dune exec bench/main.exe` runs everything at default sizes;
   `dune exec bench/main.exe -- quick` shrinks the sweeps;
   `dune exec bench/main.exe -- e5` runs a single section;
   `dune exec bench/main.exe -- quick --json out.json` additionally
   writes the machine-readable snapshot (schema: DESIGN.md §8). *)

module X = Dexpander
module Table = X.Table
module Snap = X.Bench_snapshot

let quick = ref false
let only : string list ref = ref []
let json_path : string option ref = ref None

let wants name = !only = [] || List.mem name !only

let fi = float_of_int

(* snapshot collection: every table printed and every note emitted by a
   section is also captured for the --json export *)
let sections_acc : Snap.section list ref = ref []
let cur_tables : Snap.table list ref = ref []
let cur_notes : string list ref = ref []

let out_table t =
  Table.print t;
  cur_tables :=
    Snap.table ~title:(Table.title t) ~headers:(Table.headers t) (Table.rows t)
    :: !cur_tables

let note fmt =
  Printf.ksprintf
    (fun s ->
      print_string s;
      cur_notes := String.trim s :: !cur_notes)
    fmt

let section name title f =
  if wants name then begin
    Printf.printf "\n### [%s] %s\n\n%!" (String.uppercase_ascii name) title;
    cur_tables := [];
    cur_notes := [];
    f ();
    print_newline ();
    sections_acc :=
      { Snap.id = name;
        title;
        tables = List.rev !cur_tables;
        notes = List.rev !cur_notes }
      :: !sections_acc
  end

(* ------------------------------------------------------------------ *)
(* E1 — Theorem 4: low-diameter decomposition                          *)
(* ------------------------------------------------------------------ *)

let e1_ldd () =
  let t =
    Table.create ~title:"LDD: diameter O(log^2 n / b^2), cut <= 3*beta*m (Theorem 4)"
      [ "graph"; "n"; "beta"; "seed"; "parts"; "max-diam"; "bound"; "cut%"; "budget%";
        "P[fail]"; "rounds" ]
  in
  let cases =
    if !quick then [ ("cycle", X.Generators.cycle 16_000, 0.7) ]
    else
      [ (* β < 1/3 keeps the 3β budget meaningful; the V_S density
           threshold then needs n ≥ 2ab ≈ 50·ln²n/β² vertices *)
        ("cycle", X.Generators.cycle 70_000, 0.3);
        ("cycle", X.Generators.cycle 20_000, 0.6);
        ("path", X.Generators.path 24_000, 0.7) ]
  in
  List.iter
    (fun (name, g, beta) ->
      let n = X.Graph.num_vertices g in
      let m = X.Graph.num_edges g in
      let seeds = if !quick then [ 1 ] else [ 1; 2; 3 ] in
      List.iter
        (fun seed ->
          let r = X.Ldd.run_graph g ~beta (X.Rng.create seed) in
          (* cycle/path parts are arcs: diameter from sizes, cheap *)
          let max_diam =
            List.fold_left (fun acc p -> max acc (Array.length p - 1)) 0 r.X.Ldd.parts
          in
          let bound = X.Ldd.diameter_bound ~n ~beta () in
          Table.add_row t
            [ name; string_of_int n; Printf.sprintf "%.2f" beta; string_of_int seed;
              string_of_int (List.length r.X.Ldd.parts);
              string_of_int max_diam; string_of_int bound;
              Table.fmt_pct (fi (List.length r.X.Ldd.cut_edges) /. fi m);
              Table.fmt_pct (3.0 *. beta);
              Printf.sprintf "%.1e"
                (Dex_util.Tail_bounds.ldd_failure_probability ~m ~beta
                   ~k_ln:(5.0 *. log (fi n)));
              string_of_int r.X.Ldd.rounds ])
        seeds)
    cases;
  out_table t

(* ------------------------------------------------------------------ *)
(* E2 — Theorem 3: nearly most balanced sparse cut                     *)
(* ------------------------------------------------------------------ *)

let e2_sparsecut () =
  let t =
    Table.create
      ~title:
        "Sparse cut: bal(C) >= min(b/2, 1/48), Phi(C) = O(phi^{1/3} log^{5/3} n) (Theorem 3)"
      [ "graph"; "planted-b"; "bal(C)"; "bal-floor"; "Phi(C)"; "h(phi)"; "rounds" ]
  in
  let rng = X.Rng.create 7 in
  let phi = 1.0 /. 16.0 in
  let scale = if !quick then 1 else 2 in
  let cases =
    [ ("dumbbell 1:1", X.Generators.dumbbell rng ~n1:(60 * scale) ~n2:(60 * scale) ~d:6 ~bridges:2, 0.5);
      ("dumbbell 1:5", X.Generators.dumbbell rng ~n1:(40 * scale) ~n2:(200 * scale) ~d:6 ~bridges:2, 1.0 /. 6.0);
      ("dumbbell 1:15", X.Generators.dumbbell rng ~n1:(20 * scale) ~n2:(300 * scale) ~d:6 ~bridges:2, 1.0 /. 16.0);
      ("expander", X.Generators.random_regular rng ~n:(120 * scale) ~d:8, 0.0) ]
  in
  List.iter
    (fun (name, g, planted_b) ->
      let n = X.Graph.num_vertices g in
      let params = X.Nibble_params.make ~phi ~m:(X.Graph.num_edges g) () in
      let r = X.Sparse_cut.run params g (X.Rng.create 17) in
      let floor_b = Float.min (planted_b /. 2.0) (1.0 /. 48.0) in
      Table.add_row t
        [ name;
          Printf.sprintf "%.3f" planted_b;
          Printf.sprintf "%.3f" r.X.Sparse_cut.balance;
          Printf.sprintf "%.3f" floor_b;
          (if Float.is_finite r.X.Sparse_cut.conductance then
             Printf.sprintf "%.4f" r.X.Sparse_cut.conductance
           else "-");
          Printf.sprintf "%.2f" (X.Nibble_params.h ~n phi);
          string_of_int r.X.Sparse_cut.rounds ])
    cases;
  out_table t

(* ------------------------------------------------------------------ *)
(* E3 — Theorem 3 vs prior cut algorithms                              *)
(* ------------------------------------------------------------------ *)

let e3_baselines () =
  let t =
    Table.create
      ~title:"Sparse cut baselines: prior algorithms lack the balance guarantee"
      [ "graph"; "algorithm"; "Phi(C)"; "bal(C)"; "rounds" ]
  in
  let rng = X.Rng.create 11 in
  let phi = 1.0 /. 16.0 in
  (* the separating instance: the sparsest cut is a tiny wart, the
     most balanced sparse cut is the dumbbell bridge — sweep-based
     algorithms return the wart, Theorem 3 keeps peeling *)
  (* tuned so the wart (phi = 1/31, 1.9%% of the volume) is strictly
     sparser than the 32-edge bridge cut (phi = 0.039) yet below the
     1/48 stop threshold: sweeps stop at the wart, Partition peels it
     and continues to the balanced bridge cut *)
  let warted =
    X.Generators.attach_warts rng
      (X.Generators.dumbbell rng ~n1:100 ~n2:100 ~d:8 ~bridges:32)
      ~warts:1 ~size:6
  in
  let graphs =
    [ ("dumbbell 1:1", X.Generators.dumbbell rng ~n1:80 ~n2:80 ~d:6 ~bridges:2);
      ("dumbbell 1:7", X.Generators.dumbbell rng ~n1:30 ~n2:210 ~d:6 ~bridges:2);
      ("warted dumbbell", warted);
      ("cliques-chain", X.Generators.cliques_chain ~cliques:8 ~size:12) ]
  in
  List.iter
    (fun (name, g) ->
      let params = X.Nibble_params.make ~phi ~m:(X.Graph.num_edges g) () in
      let part = X.Sparse_cut.run params g (X.Rng.create 23) in
      Table.add_row t
        [ name; "partition (Thm 3)";
          Printf.sprintf "%.4f" part.X.Sparse_cut.conductance;
          Printf.sprintf "%.3f" part.X.Sparse_cut.balance;
          string_of_int part.X.Sparse_cut.rounds ];
      (match X.Cut_baselines.spectral g (X.Rng.create 29) with
      | Some c ->
        Table.add_row t
          [ ""; "spectral sweep";
            Printf.sprintf "%.4f" c.X.Cut_baselines.conductance;
            Printf.sprintf "%.3f" c.X.Cut_baselines.balance;
            string_of_int c.X.Cut_baselines.rounds ]
      | None -> ());
      (match X.Cut_baselines.dsmp g (X.Rng.create 31) with
      | Some c ->
        Table.add_row t
          [ ""; "DSMP random walk";
            Printf.sprintf "%.4f" c.X.Cut_baselines.conductance;
            Printf.sprintf "%.3f" c.X.Cut_baselines.balance;
            string_of_int c.X.Cut_baselines.rounds ]
      | None -> ());
      (* ACL seeded at a degree-weighted random vertex *)
      let src = ref 0 in
      let best = ref 0 in
      for v = 0 to X.Graph.num_vertices g - 1 do
        if X.Graph.degree g v > !best then begin
          best := X.Graph.degree g v;
          src := v
        end
      done;
      match X.Pagerank_cut.run g ~src:!src with
      | Some c ->
        Table.add_row t
          [ ""; "ACL PageRank push";
            Printf.sprintf "%.4f" c.X.Pagerank_cut.conductance;
            Printf.sprintf "%.3f" c.X.Pagerank_cut.balance;
            string_of_int c.X.Pagerank_cut.pushes ]
      | None -> ())
    graphs;
  out_table t

(* ------------------------------------------------------------------ *)
(* E4 — Theorem 1: decomposition quality                               *)
(* ------------------------------------------------------------------ *)

let e4_decomp_quality () =
  let t =
    Table.create ~title:"Expander decomposition quality (Theorem 1 guarantees, measured)"
      [ "graph"; "n"; "m"; "eps"; "parts"; "removed%"; "minPhi>="; "phi-target"; "ok" ]
  in
  let rng = X.Rng.create 13 in
  let scale = if !quick then 30 else 50 in
  let cases =
    [ ("sbm-4", X.Generators.connectivize rng
         (X.Generators.planted_partition rng ~parts:4 ~size:scale ~p_in:0.35 ~p_out:0.01), 0.3);
      ("sbm-8", X.Generators.connectivize rng
         (X.Generators.planted_partition rng ~parts:8 ~size:(scale / 2 * 2) ~p_in:0.45 ~p_out:0.008), 0.3);
      ("powerlaw", X.Generators.connectivize rng
         (X.Generators.chung_lu rng ~n:(4 * scale) ~exponent:2.5 ~avg_degree:10.0), 1.0 /. 6.0);
      ("gnp-expander", X.Generators.connectivize rng (X.Generators.gnp rng ~n:(3 * scale) ~p:0.1),
       1.0 /. 6.0) ]
  in
  List.iter
    (fun (name, g, eps) ->
      let r = X.decompose ~epsilon:eps ~k:2 g ~seed:3 in
      let report = X.Decomposition_verify.check g r (X.Rng.create 4) in
      Table.add_row t
        [ name;
          string_of_int (X.Graph.num_vertices g);
          string_of_int (X.Graph.num_edges g);
          Printf.sprintf "%.3f" eps;
          string_of_int (List.length r.X.Decomposition.parts);
          Table.fmt_pct r.X.Decomposition.edge_fraction_removed;
          (if Float.is_finite report.X.Decomposition_verify.min_conductance_lower then
             Printf.sprintf "%.4f" report.X.Decomposition_verify.min_conductance_lower
           else "inf");
          Printf.sprintf "%.4f" r.X.Decomposition.phi_target;
          (if
             report.X.Decomposition_verify.is_partition
             && report.X.Decomposition_verify.epsilon_ok
             && report.X.Decomposition_verify.phi_ok
           then "yes"
           else "NO") ])
    cases;
  out_table t

(* ------------------------------------------------------------------ *)
(* E5 — Theorem 1: rounds scaling in n and k                           *)
(* ------------------------------------------------------------------ *)

let sbm_family rng ~n =
  (* 4 planted expander blocks, average intra-degree ~12 *)
  let size = n / 4 in
  let p_in = Float.min 0.9 (12.0 /. fi size) in
  let p_out = Float.min 0.5 (0.6 /. fi size) in
  X.Generators.connectivize rng
    (X.Generators.planted_partition rng ~parts:4 ~size ~p_in ~p_out)

let warted_family rng ~n =
  (* an expander with small dangling cliques: the sparse cuts found
     are tiny (each wart is ~1.3%% of the volume), so with eps = 0.5
     the 2b test of Phase 1 routes components into Phase 2 *)
  let warts = max 2 (n / 32) in
  let base = X.Generators.random_regular rng ~n ~d:8 in
  X.Generators.attach_warts rng base ~warts ~size:6

let e5_decomp_rounds () =
  (* Theorem 1's n^{2/k} term is the Phase-2 iteration budget: each of
     the k levels runs at most 2τ iterations with
     τ = ((ε/6)·Vol)^{1/k} ≤ n^{2/k} (Lemma 2). The table shows the
     measured iterations against that cap, plus the total simulated
     rounds — the latter are dominated by the poly(1/φ, log n) factor
     at runnable conductances, exactly the "enormous" polylog the
     paper's Open Problems section concedes, so their n-slope is
     reported for context rather than as the headline. *)
  let t =
    Table.create ~title:"Decomposition scaling in n and k (Theorem 1 / Lemma 2)"
      [ "n"; "m"; "k"; "tau"; "iter-cap=2tau*k"; "phase2-iters"; "partition-calls";
        "parts"; "rounds"; "msgs"; "words" ]
  in
  let ns = if !quick then [ 128; 256 ] else [ 128; 256; 512; 1024 ] in
  let ks = if !quick then [ 1; 2 ] else [ 1; 2; 3 ] in
  let per_k = Hashtbl.create 8 in
  let cap_violations = ref 0 in
  List.iter
    (fun n ->
      let rng = X.Rng.create (1000 + n) in
      let g = warted_family rng ~n in
      List.iter
        (fun k ->
          let eps = 0.5 in
          let r = X.decompose ~epsilon:eps ~k g ~seed:(n + k) in
          let rounds = r.X.Decomposition.stats.X.Decomposition.rounds in
          let vol = fi (X.Graph.total_volume g) in
          let tau = (eps /. 6.0 *. vol) ** (1.0 /. fi k) in
          let cap = int_of_float (Float.ceil (2.0 *. tau *. fi k)) in
          let iters = r.X.Decomposition.stats.X.Decomposition.phase2_max_iterations in
          if iters > cap then incr cap_violations;
          Hashtbl.replace per_k k ((fi n, fi rounds) :: (try Hashtbl.find per_k k with Not_found -> []));
          Table.add_row t
            [ string_of_int n;
              string_of_int (X.Graph.num_edges g);
              string_of_int k;
              Printf.sprintf "%.1f" tau;
              string_of_int cap;
              string_of_int iters;
              string_of_int r.X.Decomposition.stats.X.Decomposition.partition_calls;
              string_of_int (List.length r.X.Decomposition.parts);
              string_of_int rounds;
              string_of_int r.X.Decomposition.stats.X.Decomposition.messages;
              string_of_int r.X.Decomposition.stats.X.Decomposition.words ])
        ks)
    ns;
  out_table t;
  note "\nLemma 2 iteration-cap violations: %d (theory: 0)\n" !cap_violations;
  if not !quick then begin
    note
      "log-log slope of total rounds vs n (dominated by poly(1/phi), context only):\n";
    List.iter
      (fun k ->
        match Hashtbl.find_opt per_k k with
        | Some pts when List.length pts >= 2 ->
          note "  k=%d: slope %.2f\n" k (X.Stats.log_log_slope pts)
        | _ -> ())
      ks
  end

(* ------------------------------------------------------------------ *)
(* E6 — Theorem 1 vs the CPZ'19 baseline                               *)
(* ------------------------------------------------------------------ *)

let e6_vs_cpz () =
  let t =
    Table.create
      ~title:"This paper vs CPZ'19: no low-arboricity leftover part (Section 1.1)"
      [ "graph"; "algorithm"; "parts"; "leftover-n"; "leftover-m%"; "leftover-arboricity";
        "removed%" ]
  in
  let rng = X.Rng.create 41 in
  let scale = if !quick then 150 else 300 in
  let graphs =
    [ ("powerlaw", X.Generators.connectivize rng
         (X.Generators.chung_lu rng ~n:scale ~exponent:2.3 ~avg_degree:8.0));
      ("sbm-4", X.Generators.connectivize rng
         (X.Generators.planted_partition rng ~parts:4 ~size:(scale / 4) ~p_in:0.35 ~p_out:0.01)) ]
  in
  List.iter
    (fun (name, g) ->
      let ours = X.decompose ~epsilon:(1.0 /. 6.0) ~k:2 g ~seed:5 in
      Table.add_row t
        [ name; "this paper";
          string_of_int (List.length ours.X.Decomposition.parts);
          "0"; "0.00%"; "-";
          Table.fmt_pct ours.X.Decomposition.edge_fraction_removed ];
      let cpz = X.Cpz_baseline.run ~delta:0.35 ~epsilon:(1.0 /. 6.0) g (X.Rng.create 6) in
      Table.add_row t
        [ ""; "CPZ'19 (delta=0.35)";
          string_of_int (List.length cpz.X.Cpz_baseline.parts);
          string_of_int (Array.length cpz.X.Cpz_baseline.leftover);
          Table.fmt_pct cpz.X.Cpz_baseline.leftover_edge_fraction;
          string_of_int cpz.X.Cpz_baseline.leftover_arboricity;
          Table.fmt_pct cpz.X.Cpz_baseline.removed_edge_fraction ])
    graphs;
  out_table t

(* ------------------------------------------------------------------ *)
(* E7 — Theorem 2: triangle enumeration                                *)
(* ------------------------------------------------------------------ *)

let e7_triangles () =
  let t =
    Table.create
      ~title:
        "Triangle enumeration on G(n, 1/2) (the lower-bound family): rounds vs baselines \
         (Theorem 2)"
      [ "n"; "m"; "triangles"; "complete"; "enum-rounds"; "instances"; "total-rounds";
        "msgs"; "words"; "trivial"; "DLP-exec"; "IL~n^3/4"; "LB~n^1/3" ]
  in
  let ns = if !quick then [ 64; 96 ] else [ 64; 128; 192; 256 ] in
  let pts_inst = ref [] in
  List.iter
    (fun n ->
      let rng = X.Rng.create (2000 + n) in
      let g = X.Generators.connectivize rng (X.Generators.gnp rng ~n ~p:0.5) in
      let r = X.enumerate_triangles ~epsilon:(1.0 /. 6.0) ~k:2 g ~seed:n in
      let max_inst =
        List.fold_left (fun acc l -> max acc l.X.Triangle_enum.max_instances) 0
          r.X.Triangle_enum.levels
      in
      pts_inst := (fi n, fi max_inst) :: !pts_inst;
      let dlp = X.Triangle_dlp.run g in
      Table.add_row t
        [ string_of_int n;
          string_of_int (X.Graph.num_edges g);
          string_of_int (List.length r.X.Triangle_enum.triangles);
          (if r.X.Triangle_enum.complete && dlp.X.Triangle_dlp.complete then "yes" else "NO");
          string_of_int r.X.Triangle_enum.enumeration_rounds;
          string_of_int max_inst;
          string_of_int r.X.Triangle_enum.total_rounds;
          string_of_int r.X.Triangle_enum.messages;
          string_of_int r.X.Triangle_enum.words;
          string_of_int (X.Triangle_baselines.trivial_rounds g);
          string_of_int dlp.X.Triangle_dlp.rounds;
          string_of_int (X.Triangle_baselines.izumi_le_gall_rounds ~n);
          string_of_int (X.Triangle_baselines.lower_bound_rounds ~n) ])
    ns;
  out_table t;
  if List.length !pts_inst >= 2 then
    note
      "\nlog-log slope of routing instances vs n: %.2f (theory: 1/3)\n"
      (X.Stats.log_log_slope !pts_inst)

(* ------------------------------------------------------------------ *)
(* E8 — GKS routing trade-off                                          *)
(* ------------------------------------------------------------------ *)

let e8_routing () =
  let t =
    Table.create ~title:"GKS routing structure: preprocessing vs query trade-off in k"
      [ "n"; "k"; "beta=m^{1/k}"; "tau-mix"; "preprocess"; "query"; "break-even-queries" ]
  in
  let rng = X.Rng.create 51 in
  let n = if !quick then 128 else 256 in
  let g = X.Generators.random_regular rng ~n ~d:8 in
  let hs = List.init 4 (fun i -> X.Routing.build g (X.Rng.create 52) ~k:(i + 1)) in
  List.iter
    (fun (h : X.Routing.t) ->
      (* query volume below which this k beats k = 1 (k = 1 pays a
         huge one-shot preprocessing for the cheapest queries) *)
      let h1 = List.hd hs in
      let break_even =
        if h.X.Routing.k = 1 then "-"
        else if
          h.X.Routing.preprocess_rounds >= h1.X.Routing.preprocess_rounds
          || h.X.Routing.query_rounds <= h1.X.Routing.query_rounds
        then "never"
        else
          string_of_int
            ((h1.X.Routing.preprocess_rounds - h.X.Routing.preprocess_rounds)
            / max 1 (h.X.Routing.query_rounds - h1.X.Routing.query_rounds))
      in
      Table.add_row t
        [ string_of_int n;
          string_of_int h.X.Routing.k;
          Printf.sprintf "%.1f" h.X.Routing.beta;
          string_of_int h.X.Routing.tau_mix;
          string_of_int h.X.Routing.preprocess_rounds;
          string_of_int h.X.Routing.query_rounds;
          break_even ])
    hs;
  out_table t;
  (* executed token routing as the delivery sanity check *)
  let requests = X.Token_router.degree_respecting_requests g (X.Rng.create 53) ~load:0.5 in
  let stats = X.Token_router.route ~capacity:4 g (X.Rng.create 54) requests in
  note
    "\nexecuted token routing: %d requests delivered in %d rounds (max queue %d)\n"
    stats.X.Token_router.delivered stats.X.Token_router.rounds stats.X.Token_router.max_queue

(* ------------------------------------------------------------------ *)
(* E9 — ablations                                                      *)
(* ------------------------------------------------------------------ *)

let e9_ablations () =
  let rng = X.Rng.create 61 in
  (* (a) Phase-2 level count k, on a Phase-2-heavy family (warted
     expander) and a Phase-1-heavy one (SBM) *)
  let t =
    Table.create ~title:"Ablation: Phase-2 level count k (rounds vs conductance ladder depth)"
      [ "family"; "k"; "rounds"; "parts"; "removed%"; "phase2-comps"; "phase2-iters";
        "partition-calls" ]
  in
  let families = [ ("warted", warted_family rng ~n:256); ("sbm", sbm_family rng ~n:256) ] in
  List.iter
    (fun (fname, g) ->
      List.iter
        (fun k ->
          let eps = if fname = "warted" then 0.5 else 0.3 in
          let r = X.decompose ~epsilon:eps ~k g ~seed:62 in
          Table.add_row t
            [ fname;
              string_of_int k;
              string_of_int r.X.Decomposition.stats.X.Decomposition.rounds;
              string_of_int (List.length r.X.Decomposition.parts);
              Table.fmt_pct r.X.Decomposition.edge_fraction_removed;
              string_of_int r.X.Decomposition.stats.X.Decomposition.phase2_components;
              string_of_int r.X.Decomposition.stats.X.Decomposition.phase2_max_iterations;
              string_of_int r.X.Decomposition.stats.X.Decomposition.partition_calls ])
        (if !quick then [ 1; 2 ] else [ 1; 2; 3; 4 ]))
    families;
  out_table t;
  (* (b) sweep stride: every-step (the paper) vs strided checks, on an
     instance whose cut is discovered late in the walk *)
  let t2 =
    Table.create ~title:"Ablation: sweep-check stride in ApproximateNibble"
      [ "stride"; "Phi(C)"; "bal(C)"; "rounds" ]
  in
  let gd = X.Generators.dumbbell (X.Rng.create 63) ~n1:30 ~n2:210 ~d:6 ~bridges:2 in
  List.iter
    (fun stride ->
      let params =
        { (X.Nibble_params.make ~phi:(1.0 /. 16.0) ~m:(X.Graph.num_edges gd) ()) with
          X.Nibble_params.sweep_stride = stride }
      in
      let r = X.Sparse_cut.run params gd (X.Rng.create 64) in
      Table.add_row t2
        [ string_of_int stride;
          Printf.sprintf "%.4f" r.X.Sparse_cut.conductance;
          Printf.sprintf "%.3f" r.X.Sparse_cut.balance;
          string_of_int r.X.Sparse_cut.rounds ])
    [ 1; 4; 16; 64 ];
  out_table t2;
  (* (c) ParallelNibble copy count: probability of hitting a 2%-volume
     wart grows with the number of degree-sampled start vertices *)
  let t3 =
    Table.create
      ~title:"Ablation: ParallelNibble copies k (hit rate on a 2%-volume wart, 10 seeds)"
      [ "copies"; "wart-hit-rate"; "avg-max-overlap"; "aborts" ]
  in
  let gw =
    X.Generators.attach_warts (X.Rng.create 65)
      (X.Generators.random_regular (X.Rng.create 66) ~n:200 ~d:8)
      ~warts:2 ~size:6
  in
  let n_base = 200 in
  let params = X.Nibble_params.make ~phi:(1.0 /. 24.0) ~m:(X.Graph.num_edges gw) () in
  List.iter
    (fun k ->
      let hits = ref 0 and overlaps = ref 0 and aborts = ref 0 in
      for seed = 1 to 10 do
        let r = X.Parallel_nibble.run ~k params gw (X.Rng.create (100 + seed)) in
        overlaps := !overlaps + r.X.Parallel_nibble.max_overlap;
        if r.X.Parallel_nibble.aborted then incr aborts;
        (* a hit: the returned union contains a full wart and is a
           genuinely sparse cut *)
        let c = r.X.Parallel_nibble.cut in
        let wart_member = Array.exists (fun v -> v >= n_base) c in
        if
          Array.length c > 0 && wart_member
          && X.Metrics.conductance gw c <= 0.06
        then incr hits
      done;
      Table.add_row t3
        [ string_of_int k;
          Printf.sprintf "%d/10" !hits;
          Printf.sprintf "%.1f" (fi !overlaps /. 10.0);
          string_of_int !aborts ])
    [ 1; 2; 4; 8 ];
  out_table t3

(* ------------------------------------------------------------------ *)
(* E10 — Bechamel micro-benchmarks                                     *)
(* ------------------------------------------------------------------ *)

let e10_micro () =
  let open Bechamel in
  let rng = X.Rng.create 71 in
  let g = X.Generators.connectivize rng (X.Generators.gnp rng ~n:512 ~p:0.03) in
  let cyc = X.Generators.cycle 4096 in
  let dist = X.Walk.degree_distribution g in
  let sparse = X.Walk.truncated_walk g ~src:0 ~eps:1e-7 ~steps:4 in
  (* tracing-overhead pair: the same 8-round flood on the same cycle,
     one network with no trace attached, one with round ticks + edge
     histograms live. The plain variant is the zero-overhead claim of
     DESIGN.md §8 — its cost must match the kernel before tracing
     existed. *)
  let flood_cycle = X.Generators.cycle 512 in
  let flood net () =
    ignore
      (X.Network.run_rounds net ~label:"bench-flood"
         ~init:(fun v -> v land 1)
         ~step:(fun ~round:_ ~vertex:v st inbox ->
           let v = X.Vertex.local_int v in
           let st = List.fold_left (fun acc (_, m) -> acc lxor m.(0)) st inbox in
           let out = ref [] in
           X.Graph.iter_neighbors flood_cycle v (fun u -> out := (u, [| st |]) :: !out);
           (st, !out))
         8)
  in
  let plain_net = X.Network.create flood_cycle (X.Rounds.create ()) in
  let traced_net =
    let ledger = X.Rounds.create () in
    X.Rounds.attach_trace ledger (Some (X.Trace.create ~capacity:4096 ()));
    X.Network.create flood_cycle ledger
  in
  let tests =
    [ Test.make ~name:"walk-step-dense" (Staged.stage (fun () -> X.Walk.step_dense g dist));
      Test.make ~name:"walk-step-sparse"
        (Staged.stage (fun () -> X.Walk.step_sparse g sparse.(4)));
      Test.make ~name:"sweep-scan" (Staged.stage (fun () -> X.Sweep.scan g sparse.(4)));
      Test.make ~name:"bfs-distances" (Staged.stage (fun () -> X.Metrics.bfs_distances g 0));
      Test.make ~name:"triangle-count" (Staged.stage (fun () -> X.Triangles.count g));
      Test.make ~name:"gnp-generate"
        (Staged.stage (fun () -> X.Generators.gnp (X.Rng.create 1) ~n:256 ~p:0.05));
      Test.make ~name:"degeneracy" (Staged.stage (fun () -> X.Metrics.degeneracy g));
      Test.make ~name:"mpx-clustering"
        (Staged.stage (fun () ->
             X.Clustering.run
               (X.Network.create cyc (X.Rounds.create ()))
               ~beta:0.5 (X.Rng.create 2)));
      Test.make ~name:"net-round-plain" (Staged.stage (flood plain_net));
      Test.make ~name:"net-round-traced" (Staged.stage (flood traced_net)) ]
  in
  let test = Test.make_grouped ~name:"dexpander" ~fmt:"%s/%s" tests in
  let ols =
    Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:Measure.[| run |]
  in
  let instances = Toolkit.Instance.[ monotonic_clock ] in
  let quota = Time.second (if !quick then 0.25 else 0.5) in
  let cfg = Benchmark.cfg ~limit:2000 ~quota ~stabilize:false () in
  let raw = Benchmark.all cfg instances test in
  let results = Analyze.merge ols instances [ Analyze.all ols Toolkit.Instance.monotonic_clock raw ] in
  let t = Table.create ~title:"Micro-benchmarks (monotonic clock, ns/run)" [ "benchmark"; "ns/run" ] in
  Table.iter_sorted
    (fun _clock tbl ->
      Table.iter_sorted
        (fun name ols ->
          let est =
            match Analyze.OLS.estimates ols with Some [ e ] -> e | _ -> Float.nan
          in
          Table.add_row t [ name; Printf.sprintf "%.0f" est ])
        tbl)
    results;
  out_table t

(* ------------------------------------------------------------------ *)
(* E11 — strawman recursion depth & sequential ST Partition            *)
(* ------------------------------------------------------------------ *)

let e11_strawman () =
  (* (a) recursion depth of the straightforward recursive decomposition
     vs the Theorem-1 driver's bounded Phase-1 depth. A chain of
     cliques makes the spectral strawman peel one balanced half at a
     time, but its depth grows with the chain length while d stays
     O(eps^-1 log n). *)
  let t =
    Table.create
      ~title:"Strawman recursive decomposition vs Theorem 1 (depth = parallel time proxy)"
      [ "graph"; "algorithm"; "parts"; "depth"; "depth-bound-d"; "removed%" ]
  in
  let chains = if !quick then [ 8 ] else [ 8; 16; 32 ] in
  List.iter
    (fun cliques ->
      let g = X.Generators.cliques_chain ~cliques ~size:8 in
      let name = Printf.sprintf "cliques-chain %d" cliques in
      let straw = X.Recursive_baseline.run ~phi:(1.0 /. 16.0) g (X.Rng.create 81) in
      Table.add_row t
        [ name; "strawman (spectral recursion)";
          string_of_int (List.length straw.X.Recursive_baseline.parts);
          string_of_int straw.X.Recursive_baseline.recursion_depth;
          "-";
          Table.fmt_pct straw.X.Recursive_baseline.edge_fraction_removed ];
      let ours = X.decompose ~epsilon:0.3 ~k:2 g ~seed:82 in
      Table.add_row t
        [ ""; "Theorem 1 driver";
          string_of_int (List.length ours.X.Decomposition.parts);
          string_of_int ours.X.Decomposition.stats.X.Decomposition.phase1_depth;
          string_of_int ours.X.Decomposition.schedule.X.Schedule.d;
          Table.fmt_pct ours.X.Decomposition.edge_fraction_removed ])
    chains;
  out_table t;
  (* (b) sequential Spielman-Teng Partition vs the parallelized one *)
  let t2 =
    Table.create
      ~title:"Sequential ST Partition (summed rounds) vs parallelized Partition (Appendix A.4)"
      [ "graph"; "algorithm"; "Phi(C)"; "bal(C)"; "rounds"; "nibbles/iters" ]
  in
  let rng = X.Rng.create 83 in
  let graphs =
    [ ("dumbbell", X.Generators.dumbbell rng ~n1:80 ~n2:80 ~d:6 ~bridges:2);
      ("cliques-chain", X.Generators.cliques_chain ~cliques:8 ~size:12) ]
  in
  List.iter
    (fun (name, g) ->
      let params = X.Nibble_params.make ~phi:(1.0 /. 16.0) ~m:(X.Graph.num_edges g) () in
      let seq = X.Sparse_cut_sequential.run params g (X.Rng.create 84) in
      Table.add_row t2
        [ name; "sequential ST";
          Printf.sprintf "%.4f" seq.X.Sparse_cut_sequential.conductance;
          Printf.sprintf "%.3f" seq.X.Sparse_cut_sequential.balance;
          string_of_int seq.X.Sparse_cut_sequential.rounds;
          string_of_int seq.X.Sparse_cut_sequential.nibbles ];
      let par = X.Sparse_cut.run params g (X.Rng.create 84) in
      Table.add_row t2
        [ ""; "parallelized (Thm 3)";
          Printf.sprintf "%.4f" par.X.Sparse_cut.conductance;
          Printf.sprintf "%.3f" par.X.Sparse_cut.balance;
          string_of_int par.X.Sparse_cut.rounds;
          string_of_int par.X.Sparse_cut.iterations ])
    graphs;
  out_table t2

(* ------------------------------------------------------------------ *)
(* E12 — Jerrum–Sinclair mixing/conductance relation                   *)
(* ------------------------------------------------------------------ *)

let e12_mixing () =
  let t =
    Table.create
      ~title:"Jerrum-Sinclair: Theta(1/Phi) <= tau_mix <= Theta(log n / Phi^2) (Section 1)"
      [ "graph"; "n"; "Phi (spectral lb)"; "tau-mix"; "1/Phi"; "log n/Phi^2" ]
  in
  let rng = X.Rng.create 91 in
  let cases =
    [ ("complete", X.Generators.complete 64);
      ("regular d=8", X.Generators.random_regular rng ~n:128 ~d:8);
      ("grid 12x12", X.Generators.grid 12 12);
      ("cycle", X.Generators.cycle 128);
      ("dumbbell", X.Generators.dumbbell rng ~n1:64 ~n2:64 ~d:6 ~bridges:2) ]
  in
  List.iter
    (fun (name, g) ->
      let n = X.Graph.num_vertices g in
      let gap, _ = X.Mixing.spectral_gap ~iters:400 g (X.Rng.create 92) in
      (* the lazy gap is a lower bound on Phi (Cheeger) *)
      let phi = Float.max 1e-6 gap in
      let tau = X.Mixing.mixing_time ~max_steps:(64 * n) g (X.Rng.create 93) in
      Table.add_row t
        [ name;
          string_of_int n;
          Printf.sprintf "%.4f" phi;
          string_of_int tau;
          Printf.sprintf "%.0f" (1.0 /. phi);
          Printf.sprintf "%.0f" (log (fi n) /. (phi *. phi)) ])
    cases;
  out_table t

(* ------------------------------------------------------------------ *)
(* E13 — fault sweep: reliable delivery and Las Vegas retries          *)
(* ------------------------------------------------------------------ *)

let e13_faults () =
  let n = if !quick then 128 else 256 in
  let g = sbm_family (X.Rng.create 131) ~n in
  (* --- reliable BFS / leader election under message loss --- *)
  let t =
    Table.create
      ~title:
        (Printf.sprintf
           "Reliable delivery on a lossy SBM (n=%d): rounds/messages vs fault-free"
           (X.Graph.num_vertices g))
      [ "protocol"; "p-drop"; "p-dup"; "rounds"; "msgs"; "words"; "dropped";
        "duplicated"; "round-ovh"; "msg-ovh"; "correct" ]
  in
  let truth = X.Metrics.bfs_distances g 0 in
  let run_protocol proto p =
    let faults =
      if p = 0.0 then None
      else Some (X.Faults.create (X.Faults.lossy ~drop:p ~duplicate:(p /. 2.0) ~seed:137 ()))
    in
    let ledger = X.Rounds.create () in
    let net = X.Network.create ?faults g ledger in
    let correct, label =
      match proto with
      | `Bfs ->
        let tree = X.Reliable.bfs_tree net ~root:(X.Vertex.local 0) in
        (tree.X.Primitives.depth = truth, "bfs-reliable")
      | `Leader ->
        let leaders = X.Reliable.elect_leader net in
        (Array.for_all (fun l -> l = 0) leaders, "leader-reliable")
    in
    let rounds = try List.assoc label (X.Rounds.by_phase ledger) with Not_found -> 0 in
    let msgs = X.Network.messages_sent net in
    let words = X.Network.words_sent net in
    let drops, dups =
      match faults with
      | None -> (0, 0)
      | Some f -> (X.Faults.drops f, X.Faults.duplicates f)
    in
    (rounds, msgs, words, drops, dups, correct)
  in
  List.iter
    (fun proto ->
      let name = match proto with `Bfs -> "bfs" | `Leader -> "leader" in
      let r0, m0, _, _, _, _ = run_protocol proto 0.0 in
      List.iter
        (fun p ->
          let r, m, w, drops, dups, correct = run_protocol proto p in
          Table.add_row t
            [ name; Printf.sprintf "%.2f" p; Printf.sprintf "%.3f" (p /. 2.0);
              string_of_int r; string_of_int m; string_of_int w;
              string_of_int drops; string_of_int dups;
              Printf.sprintf "%.2fx" (fi r /. fi (max 1 r0));
              Printf.sprintf "%.2fx" (fi m /. fi (max 1 m0));
              (if correct then "yes" else "NO") ])
        [ 0.0; 0.01; 0.05; 0.1 ])
    [ `Bfs; `Leader ];
  out_table t;
  (* --- Las Vegas retry wrappers: pay rounds until self-certified --- *)
  let t2 =
    Table.create
      ~title:"Las Vegas wrappers: attempts until Verify accepts, rounds summed over retries"
      [ "algorithm"; "graph"; "n"; "attempts"; "rounds-total"; "retry-ovh"; "certified" ]
  in
  let scale = if !quick then 25 else 40 in
  let rng = X.Rng.create 139 in
  let sbm =
    X.Generators.connectivize rng
      (X.Generators.planted_partition rng ~parts:4 ~size:scale ~p_in:0.35 ~p_out:0.01)
  in
  (match X.Las_vegas.decompose ~attempts:5 ~epsilon:0.3 ~k:2 sbm (X.Rng.create 141) with
  | Ok o ->
    let last = o.X.Las_vegas.result.X.Decomposition.stats.X.Decomposition.rounds in
    Table.add_row t2
      [ "decompose"; "sbm-4"; string_of_int (X.Graph.num_vertices sbm);
        string_of_int o.X.Las_vegas.attempts;
        string_of_int o.X.Las_vegas.total_rounds;
        Printf.sprintf "%.2fx" (fi o.X.Las_vegas.total_rounds /. fi (max 1 last));
        "yes" ]
  | Error f ->
    Table.add_row t2
      [ "decompose"; "sbm-4"; string_of_int (X.Graph.num_vertices sbm);
        string_of_int f.X.Las_vegas.attempts;
        string_of_int f.X.Las_vegas.total_rounds; "-"; "NO" ]);
  let tri =
    X.Generators.connectivize rng (X.Generators.gnp rng ~n:(2 * scale) ~p:0.25)
  in
  (match X.Triangle_enum.run_verified ~attempts:3 tri (X.Rng.create 143) with
  | Ok o ->
    let last = o.X.Triangle_enum.value.X.Triangle_enum.total_rounds in
    Table.add_row t2
      [ "triangles"; "gnp"; string_of_int (X.Graph.num_vertices tri);
        string_of_int o.X.Triangle_enum.attempts;
        string_of_int o.X.Triangle_enum.rounds_total;
        Printf.sprintf "%.2fx" (fi o.X.Triangle_enum.rounds_total /. fi (max 1 last));
        (if o.X.Triangle_enum.value.X.Triangle_enum.complete then "yes" else "NO") ]
  | Error f ->
    Table.add_row t2
      [ "triangles"; "gnp"; string_of_int (X.Graph.num_vertices tri);
        string_of_int f.X.Triangle_enum.attempts;
        string_of_int f.X.Triangle_enum.rounds_total; "-"; "NO" ]);
  let phi = 1.0 /. 16.0 in
  let dumb = X.Generators.dumbbell rng ~n1:scale ~n2:scale ~d:6 ~bridges:2 in
  let params =
    X.Nibble_params.make ~phi ~m:(max 1 (X.Graph.num_edges dumb)) ()
  in
  let bound = X.Nibble_params.h ~n:(X.Graph.num_vertices dumb) phi in
  (match X.Sparse_cut.run_verified ~attempts:3 ~bound params dumb (X.Rng.create 145) with
  | Ok o ->
    let last = o.X.Sparse_cut.value.X.Sparse_cut.rounds in
    Table.add_row t2
      [ "sparse-cut"; "dumbbell"; string_of_int (X.Graph.num_vertices dumb);
        string_of_int o.X.Sparse_cut.attempts;
        string_of_int o.X.Sparse_cut.rounds_total;
        Printf.sprintf "%.2fx" (fi o.X.Sparse_cut.rounds_total /. fi (max 1 last));
        "yes" ]
  | Error f ->
    Table.add_row t2
      [ "sparse-cut"; "dumbbell"; string_of_int (X.Graph.num_vertices dumb);
        string_of_int f.X.Sparse_cut.attempts;
        string_of_int f.X.Sparse_cut.rounds_total; "-"; "NO" ]);
  out_table t2

(* ------------------------------------------------------------------ *)
(* E14 — kernel throughput: list executors vs arena cursors            *)
(* ------------------------------------------------------------------ *)

(* The workload is a BFS flood from vertex 0 on a cycle: the frontier
   is O(1) per round, so the round count is Theta(n) and the cost gap
   between "step every vertex every round" (the list executors) and
   the active-set cursor driver is maximal — exactly the shape of the
   sweep/nibble waves the decomposition spends its rounds on.

   Both protocol encodings send the same messages (the sender's depth;
   the receiver adopts depth+1 and re-floods on improvement), so the
   per-row message counts cross-check the executors against each
   other on top of the equivalence suite. *)

let e14_bfs_list g net =
  (* state: depth lsl 1 lor pending — pending makes the [finished]
     predicate (checked before round 1) start the flood at the root *)
  let unreached = (max_int lsr 2) lsl 1 in
  let states, rounds =
    X.Network.run net ~label:"e14-bfs"
      ~init:(fun v -> if v = 0 then 1 else unreached)
      ~step:(fun ~round:_ ~vertex:v st inbox ->
        let v = X.Vertex.local_int v in
        let d = st lsr 1 in
        let best =
          List.fold_left (fun acc (_, m) -> Stdlib.min acc (m.(0) + 1)) d inbox
        in
        if best < d || st land 1 = 1 then begin
          let out = ref [] in
          X.Graph.iter_neighbors g v (fun u -> out := (u, [| best |]) :: !out);
          (best lsl 1, !out)
        end
        else (st, []))
      ~finished:(fun states -> not (Array.exists (fun s -> s land 1 = 1) states))
      ()
  in
  (Array.map (fun s -> s lsr 1) states, rounds)

let e14_bfs_cursor g net =
  let unreached = max_int lsr 2 in
  let states, rounds =
    X.Network.run_active net ~label:"e14-bfs"
      ~init:(fun v -> if v = 0 then 0 else unreached)
      ~step:(fun ~round ~vertex:v d ib ob ->
        let vi = X.Vertex.local_int v in
        let best = ref d in
        X.Arena.Inbox.iter1 ib (fun _ w -> if w + 1 < !best then best := w + 1);
        if !best < d || (round = 1 && vi = 0) then
          X.Graph.iter_neighbors g vi (fun u ->
              X.Arena.Outbox.send1 ob ~dst:(X.Vertex.local u) !best);
        !best)
      ()
  in
  (states, rounds)

let e14_throughput () =
  let n = if !quick then 10_000 else 20_000 in
  let reps = if !quick then 2 else 3 in
  let g = X.Generators.cycle n in
  let t =
    Table.create
      ~title:
        (Printf.sprintf
           "Kernel throughput: BFS flood on cycle n=%d (best of %d runs after warm-up)"
           n reps)
      [ "impl"; "rounds"; "msgs"; "ms"; "rounds/s"; "msgs/s"; "B/round"; "speedup" ]
  in
  let impls =
    [ ("legacy/list (seed)", X.Network.Legacy, `List);
      ("staged/list", X.Network.Staged, `List);
      ("staged/cursor", X.Network.Staged, `Cursor);
      ("parallel-2/cursor", X.Network.Parallel 2, `Cursor) ]
    @ (if !quick then [] else [ ("parallel-4/cursor", X.Network.Parallel 4, `Cursor) ])
  in
  let truth = X.Metrics.bfs_distances g 0 in
  let base_rps = ref 0.0 in
  let cursor_speedup = ref 0.0 in
  List.iter
    (fun (name, executor, api) ->
      let net = X.Network.create ~executor g (X.Rounds.create ()) in
      let runner () =
        match api with
        | `List -> e14_bfs_list g net
        | `Cursor -> e14_bfs_cursor g net
      in
      (* warm-up builds the arena and the allocator's steady state *)
      let depths, _ = runner () in
      if depths <> truth then
        failwith (Printf.sprintf "e14: %s computed a wrong BFS tree" name);
      let best_ns = ref max_int and rounds = ref 0 and msgs = ref 0 in
      let bytes_per_round = ref 0.0 in
      for _ = 1 to reps do
        let m0 = X.Network.messages_sent net in
        let a0 = Gc.allocated_bytes () in
        let t0 = X.Clock.now_ns () in
        let _, r = runner () in
        let t1 = X.Clock.now_ns () in
        let a1 = Gc.allocated_bytes () in
        if t1 - t0 < !best_ns then begin
          best_ns := t1 - t0;
          rounds := r;
          msgs := X.Network.messages_sent net - m0;
          bytes_per_round := (a1 -. a0) /. fi r
        end
      done;
      let secs = fi !best_ns /. 1e9 in
      let rps = fi !rounds /. secs in
      if !base_rps = 0.0 then base_rps := rps;
      let speedup = rps /. !base_rps in
      if name = "staged/cursor" then cursor_speedup := speedup;
      Table.add_row t
        [ name; string_of_int !rounds; string_of_int !msgs;
          Printf.sprintf "%.2f" (secs *. 1e3);
          Printf.sprintf "%.0f" rps;
          Printf.sprintf "%.0f" (fi !msgs /. secs);
          Printf.sprintf "%.0f" !bytes_per_round;
          Printf.sprintf "%.1fx" speedup ])
    impls;
  out_table t;
  note
    "\nacceptance: staged/cursor >= 5x legacy rounds/s on BFS flood at n >= 1e4 — measured %.1fx\n"
    !cursor_speedup;
  (* the flood's frontier is 2 vertices, so [Parallel] rightly never
     shards it (shard_min). The opposite shape — every vertex active
     every round, compute-heavy steps — is where Domain sharding can
     amortize its spawn cost; no messages, so Phase B is empty and the
     scaling measured is Phase A's *)
  let wn = 4096 and wrounds = 10 and witers = if !quick then 1_000 else 4_000 in
  let wg = X.Generators.cycle wn in
  let spin x =
    let h = ref x in
    for _ = 1 to witers do
      h := (!h * 0x1E3779B97F4A7C15) + 1;
      h := !h lxor (!h lsr 31)
    done;
    !h
  in
  let t3 =
    Table.create
      ~title:
        (Printf.sprintf
           "Domain-parallel Phase A: all %d vertices active, %d hash iters/step, %d rounds"
           wn witers wrounds)
      [ "impl"; "ms"; "speedup" ]
  in
  let base_ms = ref 0.0 in
  List.iter
    (fun (name, executor) ->
      let net = X.Network.create ~executor wg (X.Rounds.create ()) in
      let runner () =
        ignore
          (X.Network.run_active net ~label:"e14-spin"
             ~init:(fun v -> v)
             ~step:(fun ~round ~vertex:v st _ib ob ->
               let st = spin (st + X.Vertex.local_int v) in
               if round < wrounds then X.Arena.Outbox.wake ob;
               st)
             ())
      in
      runner ();
      let best_ns = ref max_int in
      for _ = 1 to reps do
        let t0 = X.Clock.now_ns () in
        runner ();
        let t1 = X.Clock.now_ns () in
        if t1 - t0 < !best_ns then best_ns := t1 - t0
      done;
      let ms = fi !best_ns /. 1e6 in
      if !base_ms = 0.0 then base_ms := ms;
      Table.add_row t3
        [ name; Printf.sprintf "%.1f" ms; Printf.sprintf "%.2fx" (!base_ms /. ms) ])
    [ ("staged/cursor", X.Network.Staged);
      ("parallel-2/cursor", X.Network.Parallel 2);
      ("parallel-4/cursor", X.Network.Parallel 4) ];
  out_table t3;
  note
    "\ndomain scaling is bounded by the cores actually available: \
     recommended_domain_count=%d on this host (parity at 1 core is the expected best)\n"
    (Domain.recommended_domain_count ());
  (* algorithm workloads through the process-global default executor:
     the list-API algorithms run unchanged on the staged kernel, so
     this is a parity check (same answers, comparable time), not the
     headline speedup — their rounds step every vertex either way *)
  let t2 =
    Table.create
      ~title:"Executor parity on list-API algorithm workloads (set_default_executor)"
      [ "workload"; "executor"; "ms"; "vs legacy" ]
  in
  let rng = X.Rng.create 151 in
  let gr = X.Generators.random_regular rng ~n:(if !quick then 200 else 400) ~d:8 in
  let params = X.Nibble_params.make ~phi:(1.0 /. 24.0) ~m:(X.Graph.num_edges gr) () in
  let gt =
    X.Generators.connectivize rng
      (X.Generators.gnp rng ~n:(if !quick then 64 else 96) ~p:0.5)
  in
  let workloads =
    [ ("parallel-nibble",
       fun () -> ignore (X.Parallel_nibble.run ~k:4 params gr (X.Rng.create 152)));
      ("triangle-enum",
       fun () -> ignore (X.enumerate_triangles ~epsilon:(1.0 /. 6.0) ~k:2 gt ~seed:153)) ]
  in
  let saved = X.Network.Staged in
  List.iter
    (fun (wname, f) ->
      let base_ms = ref 0.0 in
      List.iter
        (fun (ename, e) ->
          X.Network.set_default_executor e;
          Fun.protect
            ~finally:(fun () -> X.Network.set_default_executor saved)
            (fun () ->
              f ();
              let t0 = X.Clock.now_ns () in
              f ();
              let t1 = X.Clock.now_ns () in
              let ms = fi (t1 - t0) /. 1e6 in
              if !base_ms = 0.0 then base_ms := ms;
              Table.add_row t2
                [ wname; ename; Printf.sprintf "%.1f" ms;
                  Printf.sprintf "%.2fx" (ms /. !base_ms) ]))
        [ ("legacy", X.Network.Legacy); ("staged", X.Network.Staged) ])
    workloads;
  out_table t2

(* ------------------------------------------------------------------ *)

let registry =
  [ ("e1", "Theorem 4: low-diameter decomposition", e1_ldd);
    ("e2", "Theorem 3: nearly most balanced sparse cut", e2_sparsecut);
    ("e3", "Theorem 3 vs prior sparse-cut algorithms", e3_baselines);
    ("e4", "Theorem 1: decomposition quality", e4_decomp_quality);
    ("e5", "Theorem 1: rounds scaling", e5_decomp_rounds);
    ("e6", "Theorem 1 vs CPZ'19", e6_vs_cpz);
    ("e7", "Theorem 2: triangle enumeration", e7_triangles);
    ("e8", "GKS routing trade-off", e8_routing);
    ("e9", "Ablations", e9_ablations);
    ("e10", "Micro-benchmarks (Bechamel)", e10_micro);
    ("e11", "Strawman recursion & sequential ST Partition", e11_strawman);
    ("e12", "Jerrum-Sinclair mixing relation", e12_mixing);
    ("e13", "Fault sweep: reliable delivery & Las Vegas retries", e13_faults);
    ("e14", "Kernel throughput: arena cursors & Domain-parallel rounds", e14_throughput) ]

let () =
  let rec parse = function
    | [] -> ()
    | "quick" :: rest ->
      quick := true;
      parse rest
    | [ "--json" ] ->
      prerr_endline "bench: --json requires a file path";
      exit 2
    | "--json" :: path :: rest ->
      json_path := Some path;
      parse rest
    | name :: rest ->
      let name = String.lowercase_ascii name in
      if List.exists (fun (id, _, _) -> id = name) registry then begin
        only := name :: !only;
        parse rest
      end
      else begin
        Printf.eprintf
          "bench: unknown section %S; valid sections: %s (plus 'quick' and '--json PATH')\n"
          name
          (String.concat ", " (List.map (fun (id, _, _) -> id) registry));
        exit 2
      end
  in
  parse (List.tl (Array.to_list Sys.argv));
  Printf.printf "dexpander benchmark harness — %s mode\n"
    (if !quick then "quick" else "full");
  List.iter (fun (id, title, f) -> section id title f) registry;
  match !json_path with
  | None -> ()
  | Some path ->
    Snap.write ~path ~mode:(if !quick then "quick" else "full") (List.rev !sections_acc);
    Printf.printf "\nwrote JSON snapshot to %s\n" path

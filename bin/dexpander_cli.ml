(* dexpander — command-line front end.

   Subcommands:
     generate    describe a generated graph
     decompose   run the (ε, φ)-expander decomposition (Theorem 1)
     sparse-cut  run the nearly most balanced sparse cut (Theorem 3)
     ldd         run the low-diameter decomposition (Theorem 4)
     triangles   enumerate triangles via expander decomposition (Theorem 2)
     faults      reliable BFS/leader election on a lossy network
     throughput  kernel executors head-to-head on a BFS flood

   Graphs are generated on demand: --family gnp/sbm/barbell/dumbbell/
   grid/powerlaw/regular/cliques/tree/cycle/path, with family-specific
   knobs — or loaded from an edge-list file with --file. *)

open Cmdliner
module X = Dexpander

let make_graph ~family ~file ~n ~seed ~p ~parts ~p_in ~p_out ~degree =
  let rng = X.Rng.create (seed + 7919) in
  let g =
    match file with
    | Some path -> X.Graph_io.load path
    | None ->
    match family with
    | "gnp" -> X.Generators.gnp rng ~n ~p
    | "sbm" ->
      let size = max 1 (n / max 1 parts) in
      X.Generators.planted_partition rng ~parts ~size ~p_in ~p_out
    | "barbell" -> X.Generators.barbell ~clique:(max 2 (n / 2)) ~bridge:(max 0 (n mod 2))
    | "dumbbell" ->
      X.Generators.dumbbell rng ~n1:(n / 2) ~n2:(n - (n / 2)) ~d:degree ~bridges:2
    | "grid" ->
      let side = max 1 (int_of_float (sqrt (float_of_int n))) in
      X.Generators.grid side side
    | "powerlaw" -> X.Generators.chung_lu rng ~n ~exponent:2.5 ~avg_degree:(float_of_int degree)
    | "regular" -> X.Generators.random_regular rng ~n ~d:degree
    | "cliques" -> X.Generators.cliques_chain ~cliques:(max 1 (n / 16)) ~size:16
    | "cycle" -> X.Generators.cycle (max 3 n)
    | "path" -> X.Generators.path (max 1 n)
    | "tree" ->
      let depth = max 1 (int_of_float (log (float_of_int (max 2 n)) /. log 2.0) - 1) in
      X.Generators.binary_tree depth
    | other -> failwith (Printf.sprintf "unknown graph family %S" other)
  in
  X.Generators.connectivize rng g

let describe g =
  Printf.printf "graph: n=%d m=%d (plain %d), degeneracy=%d, connected=%b\n"
    (X.Graph.num_vertices g) (X.Graph.num_edges g) (X.Graph.num_plain_edges g)
    (X.Metrics.degeneracy g)
    (X.Metrics.is_connected g)

(* shared options *)
let family_t =
  Arg.(value & opt string "sbm" & info [ "family"; "f" ] ~docv:"FAMILY" ~doc:"Graph family.")

let file_t =
  Arg.(
    value
    & opt (some string) None
    & info [ "file" ] ~docv:"PATH" ~doc:"Load the graph from an edge-list file instead of generating one.")

let n_t = Arg.(value & opt int 240 & info [ "n" ] ~docv:"N" ~doc:"Vertex count (approximate).")
let seed_t = Arg.(value & opt int 1 & info [ "seed" ] ~docv:"SEED" ~doc:"Random seed.")
let p_t = Arg.(value & opt float 0.1 & info [ "p" ] ~docv:"P" ~doc:"G(n,p) edge probability.")
let parts_t = Arg.(value & opt int 4 & info [ "parts" ] ~doc:"SBM block count.")
let p_in_t = Arg.(value & opt float 0.3 & info [ "p-in" ] ~doc:"SBM intra-block probability.")
let p_out_t = Arg.(value & opt float 0.01 & info [ "p-out" ] ~doc:"SBM inter-block probability.")
let degree_t = Arg.(value & opt int 8 & info [ "degree"; "d" ] ~doc:"Degree for regular-ish families.")
let epsilon_t = Arg.(value & opt float (1.0 /. 6.0) & info [ "epsilon"; "e" ] ~doc:"Target inter-cluster edge fraction.")
let k_t = Arg.(value & opt int 2 & info [ "k" ] ~doc:"Phase-2 level count (Theorem 1 trade-off).")
let phi_t = Arg.(value & opt float 0.05 & info [ "phi" ] ~doc:"Sparse-cut conductance parameter.")
let beta_t = Arg.(value & opt float 0.1 & info [ "beta" ] ~doc:"LDD parameter.")

let graph_of family file n seed p parts p_in p_out degree =
  make_graph ~family ~file ~n ~seed ~p ~parts ~p_in ~p_out ~degree

let generate_cmd =
  let run family file n seed p parts p_in p_out degree =
    describe (graph_of family file n seed p parts p_in p_out degree)
  in
  Cmd.v (Cmd.info "generate" ~doc:"Generate a graph and print its statistics.")
    Term.(const run $ family_t $ file_t $ n_t $ seed_t $ p_t $ parts_t $ p_in_t $ p_out_t $ degree_t)

let attempts_t =
  let pos_int =
    let parse s =
      match int_of_string_opt s with
      | Some v when v >= 1 -> Ok v
      | _ -> Error (`Msg "expected a positive integer")
    in
    Arg.conv (parse, Format.pp_print_int)
  in
  Arg.(
    value & opt pos_int 1
    & info [ "attempts" ]
      ~doc:"Las Vegas retry budget: re-run with fresh randomness until Verify certifies the output, up to this many attempts.")

let print_decomposition ~epsilon r report =
  Printf.printf
    "decomposition: parts=%d removed=%.2f%% (target %.2f%%) rounds=%d depth=%d \
     phase2=%d partition-calls=%d\n"
    (List.length r.X.Decomposition.parts)
    (100.0 *. r.X.Decomposition.edge_fraction_removed)
    (100.0 *. epsilon)
    r.X.Decomposition.stats.X.Decomposition.rounds
    r.X.Decomposition.stats.X.Decomposition.phase1_depth
    r.X.Decomposition.stats.X.Decomposition.phase2_components
    r.X.Decomposition.stats.X.Decomposition.partition_calls;
  List.iteri
    (fun i part ->
      if i < 20 then Printf.printf "  part %d: %d vertices\n" i (Array.length part))
    r.X.Decomposition.parts;
  if List.length r.X.Decomposition.parts > 20 then
    Printf.printf "  ... (%d parts total)\n" (List.length r.X.Decomposition.parts);
  Printf.printf "verify: partition=%b epsilon-ok=%b min-conductance≥%.4f (target φ=%.4f)\n"
    report.X.Decomposition_verify.is_partition report.X.Decomposition_verify.epsilon_ok
    report.X.Decomposition_verify.min_conductance_lower r.X.Decomposition.phi_target

let decompose_cmd =
  let run family file n seed p parts p_in p_out degree epsilon k attempts =
    let g = graph_of family file n seed p parts p_in p_out degree in
    describe g;
    match X.Las_vegas.decompose ~attempts ~epsilon ~k g (X.Rng.create seed) with
    | Ok o ->
      print_decomposition ~epsilon o.X.Las_vegas.result o.X.Las_vegas.report;
      Printf.printf "las-vegas: certified after %d/%d attempt(s), %d rounds total\n"
        o.X.Las_vegas.attempts attempts o.X.Las_vegas.total_rounds
    | Error f ->
      print_decomposition ~epsilon f.X.Las_vegas.last_result f.X.Las_vegas.last_report;
      Printf.printf
        "las-vegas: FAILED — %d attempt(s) exhausted (%d rounds total) without a certificate\n"
        f.X.Las_vegas.attempts f.X.Las_vegas.total_rounds;
      exit 1
  in
  Cmd.v (Cmd.info "decompose" ~doc:"Run the (ε,φ)-expander decomposition (Theorem 1).")
    Term.(
      const run $ family_t $ file_t $ n_t $ seed_t $ p_t $ parts_t $ p_in_t $ p_out_t
      $ degree_t $ epsilon_t $ k_t $ attempts_t)

let sparse_cut_cmd =
  let run family file n seed p parts p_in p_out degree phi =
    let g = graph_of family file n seed p parts p_in p_out degree in
    describe g;
    let r = X.sparse_cut ~phi g ~seed in
    if Array.length r.X.Sparse_cut.cut = 0 then
      Printf.printf "sparse-cut: none found — graph certified as a φ=%.4f expander\n" phi
    else
      Printf.printf "sparse-cut: |C|=%d conductance=%.4f balance=%.4f rounds=%d\n"
        (Array.length r.X.Sparse_cut.cut)
        r.X.Sparse_cut.conductance r.X.Sparse_cut.balance r.X.Sparse_cut.rounds
  in
  Cmd.v (Cmd.info "sparse-cut" ~doc:"Run the nearly most balanced sparse cut (Theorem 3).")
    Term.(
      const run $ family_t $ file_t $ n_t $ seed_t $ p_t $ parts_t $ p_in_t $ p_out_t
      $ degree_t $ phi_t)

let ldd_cmd =
  let run family file n seed p parts p_in p_out degree beta =
    let g = graph_of family file n seed p parts p_in p_out degree in
    describe g;
    let r = X.low_diameter_decomposition ~beta g ~seed in
    let m = max 1 (X.Graph.num_edges g) in
    Printf.printf "ldd: parts=%d cut-edges=%d (%.2f%% of m, budget %.2f%%) rounds=%d\n"
      (List.length r.X.Ldd.parts)
      (List.length r.X.Ldd.cut_edges)
      (100.0 *. float_of_int (List.length r.X.Ldd.cut_edges) /. float_of_int m)
      (100.0 *. 3.0 *. beta) r.X.Ldd.rounds;
    Printf.printf "ldd: max part diameter=%d (bound %d)\n"
      (X.Ldd.max_part_diameter g r)
      (X.Ldd.diameter_bound ~n:(X.Graph.num_vertices g) ~beta ())
  in
  Cmd.v (Cmd.info "ldd" ~doc:"Run the low-diameter decomposition (Theorem 4).")
    Term.(
      const run $ family_t $ file_t $ n_t $ seed_t $ p_t $ parts_t $ p_in_t $ p_out_t
      $ degree_t $ beta_t)

let triangles_cmd =
  let run family file n seed p parts p_in p_out degree epsilon k =
    let g = graph_of family file n seed p parts p_in p_out degree in
    describe g;
    let r = X.enumerate_triangles ~epsilon ~k g ~seed in
    Printf.printf
      "triangles: found=%d complete=%b levels=%d total-rounds=%d enumeration-rounds=%d\n"
      (List.length r.X.Triangle_enum.triangles)
      r.X.Triangle_enum.complete
      (List.length r.X.Triangle_enum.levels)
      r.X.Triangle_enum.total_rounds r.X.Triangle_enum.enumeration_rounds;
    let nv = X.Graph.num_vertices g in
    Printf.printf "baselines: trivial=%d dlp-clique=%d izumi-le-gall=%d lower-bound=%d\n"
      (X.Triangle_baselines.trivial_rounds g)
      (X.Triangle_baselines.dlp_clique_rounds g (X.Rng.create seed))
      (X.Triangle_baselines.izumi_le_gall_rounds ~n:nv)
      (X.Triangle_baselines.lower_bound_rounds ~n:nv)
  in
  Cmd.v (Cmd.info "triangles" ~doc:"Enumerate triangles via expander decomposition (Theorem 2).")
    Term.(
      const run $ family_t $ file_t $ n_t $ seed_t $ p_t $ parts_t $ p_in_t $ p_out_t
      $ degree_t $ epsilon_t $ k_t)

let faults_cmd =
  let drop_t =
    Arg.(value & opt float 0.05 & info [ "drop" ] ~docv:"P" ~doc:"Per-message drop probability.")
  in
  let dup_t =
    Arg.(
      value
      & opt (some float) None
      & info [ "dup" ] ~docv:"P" ~doc:"Per-message duplication probability (default drop/2).")
  in
  let fault_seed_t =
    Arg.(value & opt int 42 & info [ "fault-seed" ] ~doc:"Seed of the deterministic fault schedule.")
  in
  let retries_t =
    let pos_int =
      let parse s =
        match int_of_string_opt s with
        | Some v when v >= 1 -> Ok v
        | _ -> Error (`Msg "expected a positive integer")
      in
      Arg.conv (parse, Format.pp_print_int)
    in
    Arg.(value & opt pos_int 64 & info [ "retries" ] ~doc:"Retransmission budget per message.")
  in
  let run family file n seed p parts p_in p_out degree drop dup fault_seed retries =
    let g = graph_of family file n seed p parts p_in p_out degree in
    describe g;
    let dup = match dup with Some d -> d | None -> drop /. 2.0 in
    let config = { X.Reliable.default_config with X.Reliable.max_retries = retries } in
    let exec faults =
      let ledger = X.Rounds.create () in
      let net = X.Network.create ?faults g ledger in
      let tree = X.Reliable.bfs_tree ~config net ~root:(X.Vertex.local 0) in
      let leaders = X.Reliable.elect_leader ~config net in
      let phases = X.Rounds.by_phase ledger in
      let rounds label = try List.assoc label phases with Not_found -> 0 in
      (rounds "bfs-reliable", rounds "leader-reliable", X.Network.messages_sent net,
       tree, leaders)
    in
    let br0, lr0, m0, tree0, _ = exec None in
    Printf.printf "fault-free: bfs-rounds=%d leader-rounds=%d messages=%d tree-height=%d\n"
      br0 lr0 m0 tree0.X.Primitives.height;
    let faults = X.Faults.create (X.Faults.lossy ~drop ~duplicate:dup ~seed:fault_seed ()) in
    let br, lr, m, tree, leaders =
      try exec (Some faults)
      with X.Reliable.Delivery_failed { label; vertex; neighbor; attempts; _ } ->
        Printf.printf
          "FAILED: %s gave up on edge %d->%d after %d retransmissions \
           (dropped=%d duplicated=%d) — raise --retries or lower --drop\n"
          label vertex neighbor attempts
          (X.Faults.drops faults) (X.Faults.duplicates faults);
        exit 1
    in
    Printf.printf
      "lossy (drop=%.3f dup=%.3f seed=%d): bfs-rounds=%d leader-rounds=%d messages=%d\n"
      drop dup fault_seed br lr m;
    Printf.printf "faults: dropped=%d duplicated=%d\n"
      (X.Faults.drops faults) (X.Faults.duplicates faults);
    Printf.printf "overhead: bfs-rounds %.2fx leader-rounds %.2fx messages %.2fx\n"
      (float_of_int br /. float_of_int (max 1 br0))
      (float_of_int lr /. float_of_int (max 1 lr0))
      (float_of_int m /. float_of_int (max 1 m0));
    let bfs_ok = tree.X.Primitives.depth = tree0.X.Primitives.depth in
    let leader_ok = Array.for_all (fun l -> l = leaders.(0)) leaders in
    Printf.printf "correct: bfs=%b leader=%b\n" bfs_ok leader_ok;
    if not (bfs_ok && leader_ok) then exit 1
  in
  Cmd.v
    (Cmd.info "faults"
       ~doc:"Run reliable BFS and leader election on a lossy network and report the overhead.")
    Term.(
      const run $ family_t $ file_t $ n_t $ seed_t $ p_t $ parts_t $ p_in_t $ p_out_t
      $ degree_t $ drop_t $ dup_t $ fault_seed_t $ retries_t)

let throughput_cmd =
  let domains_t =
    Arg.(
      value & opt int 2
      & info [ "domains" ] ~docv:"K"
          ~doc:"Domain count for the parallel executor rows.")
  in
  let run family file n seed p parts p_in p_out degree domains =
    let g = graph_of family file n seed p parts p_in p_out degree in
    describe g;
    let truth = X.Metrics.bfs_distances g 0 in
    (* the same BFS flood in both kernel encodings: messages carry the
       sender's depth, receivers adopt depth+1 and re-flood on
       improvement *)
    let flood_list net =
      let unreached = (max_int lsr 2) lsl 1 in
      let states, rounds =
        X.Network.run net ~label:"throughput"
          ~init:(fun v -> if v = 0 then 1 else unreached)
          ~step:(fun ~round:_ ~vertex:v st inbox ->
            let v = X.Vertex.local_int v in
            let d = st lsr 1 in
            let best =
              List.fold_left (fun acc (_, m) -> min acc (m.(0) + 1)) d inbox
            in
            if best < d || st land 1 = 1 then begin
              let out = ref [] in
              X.Graph.iter_neighbors g v (fun u -> out := (u, [| best |]) :: !out);
              (best lsl 1, !out)
            end
            else (st, []))
          ~finished:(fun states -> not (Array.exists (fun s -> s land 1 = 1) states))
          ()
      in
      (Array.map (fun s -> s lsr 1) states, rounds)
    in
    let flood_cursor net =
      X.Network.run_active net ~label:"throughput"
        ~init:(fun v -> if v = 0 then 0 else max_int lsr 2)
        ~step:(fun ~round ~vertex:v d ib ob ->
          let vi = X.Vertex.local_int v in
          let best = ref d in
          X.Arena.Inbox.iter1 ib (fun _ w -> if w + 1 < !best then best := w + 1);
          if !best < d || (round = 1 && vi = 0) then
            X.Graph.iter_neighbors g vi (fun u ->
                X.Arena.Outbox.send1 ob ~dst:(X.Vertex.local u) !best);
          !best)
        ()
    in
    let base = ref 0.0 in
    List.iter
      (fun (name, executor, api) ->
        let net = X.Network.create ~executor g (X.Rounds.create ()) in
        let runner () =
          match api with `List -> flood_list net | `Cursor -> flood_cursor net
        in
        let depths, _ = runner () in
        if depths <> truth then failwith (name ^ ": wrong BFS result");
        let t0 = X.Clock.now_ns () in
        let _, rounds = runner () in
        let t1 = X.Clock.now_ns () in
        let secs = float_of_int (t1 - t0) /. 1e9 in
        let rps = float_of_int rounds /. secs in
        if !base = 0.0 then base := rps;
        Printf.printf "%-22s rounds=%-6d ms=%-10.2f rounds/s=%-10.0f speedup=%.1fx\n"
          name rounds (secs *. 1e3) rps (rps /. !base))
      [ ("legacy/list (seed)", X.Network.Legacy, `List);
        ("staged/list", X.Network.Staged, `List);
        ("staged/cursor", X.Network.Staged, `Cursor);
        (Printf.sprintf "parallel-%d/cursor" domains, X.Network.Parallel domains,
         `Cursor) ]
  in
  Cmd.v
    (Cmd.info "throughput"
       ~doc:
         "Race the kernel executors (legacy list, staged list, arena cursor, \
          Domain-parallel cursor) on a BFS flood over the chosen graph. Try \
          $(b,--family cycle -n 10000), the frontier-bound worst case for \
          the list executors.")
    Term.(
      const run $ family_t $ file_t $ n_t $ seed_t $ p_t $ parts_t $ p_in_t $ p_out_t
      $ degree_t $ domains_t)

let trace_cmd =
  let algo_t =
    let algo =
      Arg.enum
        [ ("decompose", `Decompose); ("sparse-cut", `Sparse_cut); ("triangles", `Triangles) ]
    in
    Arg.(
      required
      & pos 0 (some algo) None
      & info [] ~docv:"ALGO"
          ~doc:"Algorithm to trace: $(b,decompose), $(b,sparse-cut) or $(b,triangles).")
  in
  let top_t =
    Arg.(value & opt int 10 & info [ "top" ] ~docv:"K" ~doc:"Hot-edge listing length.")
  in
  let jsonl_t =
    Arg.(
      value
      & opt (some string) None
      & info [ "jsonl" ] ~docv:"PATH"
          ~doc:"Stream every trace event to PATH as JSON Lines (schema: DESIGN.md §8).")
  in
  let run family file n seed p parts p_in p_out degree epsilon k phi algo top jsonl =
    let g = graph_of family file n seed p parts p_in p_out degree in
    describe g;
    let sink = Option.map open_out jsonl in
    let trace = X.Trace.create ?sink () in
    let ledger = X.Rounds.create () in
    X.Rounds.attach_trace ledger (Some trace);
    (match algo with
    | `Decompose ->
      let r = X.decompose ~ledger ~epsilon ~k g ~seed in
      Printf.printf "decompose: parts=%d removed=%.2f%% rounds(makespan)=%d\n"
        (List.length r.X.Decomposition.parts)
        (100.0 *. r.X.Decomposition.edge_fraction_removed)
        r.X.Decomposition.stats.X.Decomposition.rounds
    | `Sparse_cut ->
      let r = X.sparse_cut ~ledger ~phi g ~seed in
      Printf.printf "sparse-cut: |C|=%d conductance=%s rounds=%d\n"
        (Array.length r.X.Sparse_cut.cut)
        (if Float.is_finite r.X.Sparse_cut.conductance then
           Printf.sprintf "%.4f" r.X.Sparse_cut.conductance
         else "inf")
        r.X.Sparse_cut.rounds
    | `Triangles ->
      let r = X.enumerate_triangles ~ledger ~epsilon ~k g ~seed in
      Printf.printf "triangles: found=%d complete=%b rounds(makespan)=%d\n"
        (List.length r.X.Triangle_enum.triangles)
        r.X.Triangle_enum.complete r.X.Triangle_enum.total_rounds);
    (match sink with Some oc -> close_out oc | None -> ());
    (* hierarchical span tree: every charge sits on a leaf, so the leaf
       totals sum to the ledger total by construction *)
    Printf.printf "\nspan tree (ledger rounds; sequential sum over components):\n";
    let rec print_node indent (node : X.Rounds.tree) =
      Printf.printf "%s%s  %d rounds%s%s\n" indent node.X.Rounds.span node.X.Rounds.rounds
        (if node.X.Rounds.self > 0 && node.X.Rounds.children <> [] then
           Printf.sprintf " (self %d)" node.X.Rounds.self
         else "")
        (if node.X.Rounds.wall_ns > 0 then
           Printf.sprintf "  [%.2f ms]" (float_of_int node.X.Rounds.wall_ns /. 1e6)
         else "");
      List.iter (print_node (indent ^ "  ")) node.X.Rounds.children
    in
    let tree = X.Rounds.tree ledger in
    print_node "  " tree;
    let rec leaf_sum (node : X.Rounds.tree) =
      node.X.Rounds.self + List.fold_left (fun acc c -> acc + leaf_sum c) 0 node.X.Rounds.children
    in
    Printf.printf "  leaf-sum=%d ledger-total=%d%s\n" (leaf_sum tree)
      (X.Rounds.total ledger)
      (if leaf_sum tree = X.Rounds.total ledger then "" else "  MISMATCH");
    (match X.Trace.top_edges trace top with
    | [] -> Printf.printf "\nno executed message traffic (all phases accounted)\n"
    | edges ->
      Printf.printf "\ntop-%d congested edges (cumulative deliveries):\n"
        (List.length edges);
      List.iter
        (fun ((u, v), load) -> Printf.printf "  (%d,%d)  %d\n" u v load)
        edges);
    Printf.printf "\nper-phase rounds (flat):\n";
    List.iter
      (fun (label, rounds) -> Printf.printf "  %-24s %d\n" label rounds)
      (X.Rounds.by_phase ledger);
    Printf.printf
      "\ntrace: events=%d retained=%d dropped=%d messages=%d words=%d faults=%d retries=%d\n"
      (X.Trace.emitted trace)
      (List.length (X.Trace.events trace))
      (X.Trace.dropped trace) (X.Trace.messages trace) (X.Trace.words trace)
      (X.Trace.faults trace) (X.Trace.retries trace);
    match jsonl with
    | Some path -> Printf.printf "wrote JSONL events to %s\n" path
    | None -> ()
  in
  Cmd.v
    (Cmd.info "trace"
       ~doc:
         "Run an algorithm under structured tracing and print its span tree, hot edges \
          and per-phase summary.")
    Term.(
      const run $ family_t $ file_t $ n_t $ seed_t $ p_t $ parts_t $ p_in_t $ p_out_t
      $ degree_t $ epsilon_t $ k_t $ phi_t $ algo_t $ top_t $ jsonl_t)

let conformance_cmd =
  let word_size_t =
    Arg.(value & opt int 1 & info [ "word-size" ] ~docv:"W" ~doc:"Per-message word budget.")
  in
  let demo_race_t =
    Arg.(
      value & flag
      & info [ "demo-race" ]
          ~doc:
            "Additionally run a deliberately delivery-order-dependent protocol and show \
             that the detector flags it (the command still exits 0 if the clean \
             protocols pass).")
  in
  let run family file n seed p parts p_in p_out degree word_size demo_race =
    let g = graph_of family file n seed p parts p_in p_out degree in
    describe g;
    let report label r =
      Printf.printf
        "%-8s rounds=%d/%d messages=%d/%d (canonical/permuted): %s\n" label
        r.X.Conformance.rounds_canonical r.X.Conformance.rounds_permuted
        r.X.Conformance.messages_canonical r.X.Conformance.messages_permuted
        (if X.Conformance.ok r then "conformant" else "VIOLATIONS");
      List.iter
        (fun v -> Printf.printf "  %s\n" (X.Conformance.describe v))
        r.X.Conformance.violations;
      X.Conformance.ok r
    in
    let bfs_ok =
      report "bfs"
        (X.Conformance.check ~word_size ~seed g ~protocol:(X.Conformance.bfs ~root:(X.Vertex.local 0) g) ())
    in
    let leader_ok =
      report "leader"
        (X.Conformance.check ~word_size ~seed g ~protocol:(X.Conformance.leader g) ())
    in
    if demo_race then begin
      (* adopt the first inbox message's sender: delivery-order
         dependent, so the detector must flag it *)
      let racy () =
        let init _ = (-1, false) in
        let step ~round:_ ~vertex:v (got, sent) inbox =
          let v = X.Vertex.local_int v in
          let got =
            match inbox with (sender, _) :: _ when got < 0 -> sender | _ -> got
          in
          if sent then ((got, sent), [])
          else begin
            let outbox = ref [] in
            X.Graph.iter_neighbors g v (fun u -> outbox := (u, [| v |]) :: !outbox);
            ((got, true), !outbox)
          end
        in
        let finished states = Array.for_all (fun (got, sent) -> sent && got >= 0) states in
        { X.Conformance.init; step; finished }
      in
      let r = X.Conformance.check ~seed g ~protocol:racy () in
      Printf.printf "demo-race: detector %s\n"
        (if X.Conformance.ok r then "MISSED the race" else "caught the race, as expected");
      List.iter
        (fun v -> Printf.printf "  %s\n" (X.Conformance.describe v))
        r.X.Conformance.violations
    end;
    if not (bfs_ok && leader_ok) then exit 1
  in
  Cmd.v
    (Cmd.info "conformance"
       ~doc:
         "Replay reference protocols under permuted activation/delivery schedules and \
          audit the CONGEST kernel invariants (schedule-permutation race detector).")
    Term.(
      const run $ family_t $ file_t $ n_t $ seed_t $ p_t $ parts_t $ p_in_t $ p_out_t
      $ degree_t $ word_size_t $ demo_race_t)

let lint_cmd =
  let module Cli = Dex_lint_core.Cli in
  let targets_t =
    Arg.(
      value & pos_all string [ "." ]
      & info [] ~docv:"PATH" ~doc:"Files or directories to lint (default: the whole tree).")
  in
  let json_t =
    Arg.(value & flag & info [ "json" ] ~doc:"Emit the report as a single JSON object.")
  in
  let all_rules_t =
    Arg.(
      value & flag
      & info [ "all-rules" ] ~doc:"Apply every rule regardless of path scoping.")
  in
  let typed_only_t =
    Arg.(
      value & flag
      & info [ "typed-only" ] ~doc:"Run only the typed-AST engine (C-rules).")
  in
  let no_typed_t =
    Arg.(
      value & flag
      & info [ "no-typed" ] ~doc:"Run only the parsetree engine (D-rules).")
  in
  let cmt_root_t =
    Arg.(
      value & opt string "_build/default"
      & info [ "cmt-root" ] ~docv:"DIR"
          ~doc:"Root of the .cmt forest (run $(b,dune build @check) to populate it).")
  in
  let source_root_t =
    Arg.(
      value & opt string "."
      & info [ "source-root" ] ~docv:"DIR"
          ~doc:"Root the .cmt source paths are relative to.")
  in
  let graph_json_t =
    Arg.(
      value & opt (some string) None
      & info [ "graph-json" ] ~docv:"FILE"
          ~doc:"Write the module reference graph as JSON.")
  in
  let dead_scope_t =
    Arg.(
      value & opt_all string []
      & info [ "dead-scope" ] ~docv:"DIR"
          ~doc:"Also scan DIR's .mli exports for C004 (default: lib).")
  in
  let include_fixtures_t =
    Arg.(
      value & flag
      & info [ "include-fixtures" ]
          ~doc:"Lint fixture directories too (they violate on purpose).")
  in
  let run json all_rules typed_only no_typed cmt_root source_root graph_json
      dead_scope include_fixtures targets =
    let opts =
      { Cli.json;
        all_rules;
        typed_only;
        no_typed;
        cmt_root;
        source_root;
        graph_json;
        dead_scope = (if dead_scope = [] then Cli.default_opts.Cli.dead_scope else dead_scope);
        include_fixtures;
        targets }
    in
    exit (Cli.run opts)
  in
  Cmd.v
    (Cmd.info "lint"
       ~doc:
         "Run the static certifier: parsetree determinism rules (D-rules) and the \
          typed-AST word-budget / coordinate-space / reference-graph rules (C-rules).")
    Term.(
      const run $ json_t $ all_rules_t $ typed_only_t $ no_typed_t $ cmt_root_t
      $ source_root_t $ graph_json_t $ dead_scope_t $ include_fixtures_t $ targets_t)

let () =
  let doc = "Distributed expander decomposition and triangle enumeration (PODC 2019)" in
  let info = Cmd.info "dexpander" ~version:"1.0.0" ~doc in
  exit
    (Cmd.eval
       (Cmd.group info
          [ generate_cmd; decompose_cmd; sparse_cut_cmd; ldd_cmd; triangles_cmd;
            faults_cmd; throughput_cmd; trace_cmd; conformance_cmd; lint_cmd ]))

(* Routing on an expander: the GKS trade-off and an executed router.

   Build & run:  dune exec examples/routing_demo.exe

   Theorem 2 needs to solve many routing tasks inside each expander
   component. The Ghaffari–Kuhn–Su structure trades preprocessing for
   query time through its depth parameter k — this demo prints the
   trade-off measured on a concrete expander, shows how the best k
   shifts with the number of queries, and then actually routes a
   degree-respecting request set with the token router to see
   congestion behave. *)

module X = Dexpander

let () =
  let seed = 99 in
  let rng = X.Rng.create seed in
  let g = X.Generators.random_regular rng ~n:256 ~d:8 in
  Printf.printf "expander: n = %d, m = %d\n" (X.Graph.num_vertices g) (X.Graph.num_edges g);
  Printf.printf "measured mixing time: %d steps\n"
    (X.Mixing.mixing_time g (X.Rng.create (seed + 1)));

  Printf.printf "\nGKS trade-off (measured τ_mix, cost model of Section 3):\n";
  Printf.printf "%4s %14s %12s\n" "k" "preprocess" "query";
  for k = 1 to 4 do
    let h = X.Routing.build g (X.Rng.create (seed + 2)) ~k in
    Printf.printf "%4d %14d %12d\n" k h.X.Routing.preprocess_rounds h.X.Routing.query_rounds
  done;

  Printf.printf "\nbest k by query load:\n";
  List.iter
    (fun queries ->
      let h = X.Routing.best_k_for g (X.Rng.create (seed + 2)) ~queries ~k_max:4 in
      Printf.printf "  %6d queries -> k = %d (total %d rounds)\n" queries h.X.Routing.k
        (X.Routing.total_rounds h ~queries))
    [ 1; 10; 1000; 100000 ];

  Printf.printf "\nexecuted token routing (lazy random walks, capacity 4/edge):\n";
  let requests = X.Token_router.degree_respecting_requests g rng ~load:0.5 in
  Printf.printf "  %d requests (≈ deg(v)/2 per vertex)\n" (List.length requests);
  let stats = X.Token_router.route ~capacity:4 g rng requests in
  Printf.printf "  delivered %d tokens in %d simulated rounds (%d moves, max queue %d)\n"
    stats.X.Token_router.delivered stats.X.Token_router.rounds stats.X.Token_router.moves
    stats.X.Token_router.max_queue

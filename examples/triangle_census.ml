(* Triangle census of a power-law "social" graph.

   Build & run:  dune exec examples/triangle_census.exe

   Triangle counts are the building block of clustering coefficients
   and community metrics. This example runs the paper's Õ(n^{1/3})
   CONGEST enumeration (Theorem 2) on a Chung–Lu power-law graph,
   checks it against the exact centralized count, and prints the
   round-cost comparison with the baselines. *)

module X = Dexpander

let () =
  let seed = 5 in
  let rng = X.Rng.create seed in
  let n = 220 in
  let g = X.Generators.chung_lu rng ~n ~exponent:2.5 ~avg_degree:14.0 in
  let g = X.Generators.connectivize rng g in
  Printf.printf "power-law graph: n = %d, m = %d, degeneracy = %d\n"
    (X.Graph.num_vertices g) (X.Graph.num_edges g) (X.Metrics.degeneracy g);

  let exact = X.Triangles.count g in
  Printf.printf "exact triangle count: %d\n" exact;

  let r = X.enumerate_triangles ~epsilon:(1.0 /. 6.0) ~k:2 g ~seed in
  Printf.printf "distributed enumeration: %d triangles, complete = %b, levels = %d\n"
    (List.length r.X.Triangle_enum.triangles)
    r.X.Triangle_enum.complete
    (List.length r.X.Triangle_enum.levels);
  List.iter
    (fun (l : X.Triangle_enum.level_report) ->
      Printf.printf
        "  level %d: %d live edges, %d components, %d new triangles, %d routing instances\n"
        l.X.Triangle_enum.level l.X.Triangle_enum.edges l.X.Triangle_enum.components
        l.X.Triangle_enum.detected l.X.Triangle_enum.max_instances)
    r.X.Triangle_enum.levels;

  (* clustering coefficient from the census *)
  let wedges = ref 0 in
  for v = 0 to X.Graph.num_vertices g - 1 do
    let d = X.Graph.plain_degree g v in
    wedges := !wedges + (d * (d - 1) / 2)
  done;
  if !wedges > 0 then
    Printf.printf "global clustering coefficient: %.4f\n"
      (3.0 *. float_of_int exact /. float_of_int !wedges);

  Printf.printf "round comparison (simulated CONGEST):\n";
  Printf.printf "  expander-based total:        %d\n" r.X.Triangle_enum.total_rounds;
  Printf.printf "  expander-based enumeration:  %d (decomposition excluded)\n"
    r.X.Triangle_enum.enumeration_rounds;
  Printf.printf "  trivial neighborhood flood:  %d\n" (X.Triangle_baselines.trivial_rounds g);
  Printf.printf "  DLP (CONGESTED-CLIQUE):      %d\n"
    (X.Triangle_baselines.dlp_clique_rounds g (X.Rng.create (seed + 1)));
  Printf.printf "  Izumi–Le Gall reference:     %d\n"
    (X.Triangle_baselines.izumi_le_gall_rounds ~n);
  Printf.printf "  Ω(n^{1/3}/log n) lower bound: %d\n"
    (X.Triangle_baselines.lower_bound_rounds ~n)

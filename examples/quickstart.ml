(* Quickstart: decompose a two-community graph and inspect the result.

   Build & run:  dune exec examples/quickstart.exe

   The graph is a "dumbbell": two random regular expanders joined by a
   couple of bridge edges — the textbook instance with exactly one
   very sparse, perfectly balanced cut. An (ε, φ)-expander
   decomposition must place the two expanders in different parts
   (cutting the bridges costs far less than ε·m) and certify each part
   as a φ-expander. *)

module X = Dexpander

let () =
  let seed = 42 in
  let rng = X.Rng.create seed in

  (* 1. Build a graph: two 150-vertex 8-regular expanders, 2 bridges. *)
  let g = X.Generators.dumbbell rng ~n1:150 ~n2:150 ~d:8 ~bridges:2 in
  Printf.printf "input: %d vertices, %d edges\n" (X.Graph.num_vertices g)
    (X.Graph.num_edges g);

  (* 2. Decompose. ε bounds the fraction of edges between parts; k
        trades rounds for conductance (Theorem 1). *)
  let result = X.decompose ~epsilon:(1.0 /. 6.0) ~k:2 g ~seed in

  Printf.printf "parts: %d\n" (List.length result.X.Decomposition.parts);
  List.iteri
    (fun i part ->
      Printf.printf "  part %d: %d vertices (volume %d)\n" i (Array.length part)
        (X.Graph.volume g part))
    result.X.Decomposition.parts;
  Printf.printf "edges removed: %.2f%% (budget %.2f%%)\n"
    (100.0 *. result.X.Decomposition.edge_fraction_removed)
    (100.0 /. 6.0);
  Printf.printf "simulated CONGEST rounds: %d\n"
    result.X.Decomposition.stats.X.Decomposition.rounds;

  (* 3. Verify the two guarantees of Theorem 1 on this run. *)
  let report = X.Decomposition_verify.check g result (X.Rng.create (seed + 1)) in
  Printf.printf "verified partition: %b\n" report.X.Decomposition_verify.is_partition;
  Printf.printf "inter-part edge budget respected: %b\n"
    report.X.Decomposition_verify.epsilon_ok;
  Printf.printf "all parts are expanders: conductance ≥ %.4f (target φ = %.4f)\n"
    report.X.Decomposition_verify.min_conductance_lower result.X.Decomposition.phi_target;

  (* 4. The same graph through the standalone sparse cut (Theorem 3):
        it should find the bridge cut with balance ≈ 1/2. *)
  let cut = X.sparse_cut ~phi:0.05 g ~seed in
  Printf.printf "standalone sparse cut: |C| = %d, Φ(C) = %.4f, bal(C) = %.3f\n"
    (Array.length cut.X.Sparse_cut.cut) cut.X.Sparse_cut.conductance
    cut.X.Sparse_cut.balance

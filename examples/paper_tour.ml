(* A guided tour of the paper's four theorems on one graph.

   Build & run:  dune exec examples/paper_tour.exe

   The instance is a "social network in two towns": two power-law-ish
   communities joined by a few long-range edges, with a handful of
   tightly-knit cliques (families) hanging off. Each theorem is
   exercised in the order the paper builds them:
   Theorem 4 (LDD) -> Theorem 3 (sparse cut) -> Theorem 1
   (decomposition) -> Theorem 2 (triangles). *)

module X = Dexpander

let banner title = Printf.printf "\n--- %s ---\n" title

let () =
  let seed = 1234 in
  let rng = X.Rng.create seed in

  (* two 8-regular communities, 3 bridges, 3 family cliques *)
  let town = X.Generators.dumbbell rng ~n1:90 ~n2:90 ~d:8 ~bridges:3 in
  let g = X.Generators.attach_warts rng town ~warts:3 ~size:5 in
  Printf.printf "instance: n = %d, m = %d, degeneracy = %d\n"
    (X.Graph.num_vertices g) (X.Graph.num_edges g) (X.Metrics.degeneracy g);

  banner "Theorem 4 — low-diameter decomposition";
  let ldd = X.low_diameter_decomposition ~beta:0.3 g ~seed in
  Printf.printf
    "beta = 0.3: %d part(s), %d edges cut, %d simulated rounds\n\
     (a low-diameter graph may legitimately stay whole: the certified\n\
     diameter bound is %d and this graph is far below it)\n"
    (List.length ldd.X.Ldd.parts)
    (List.length ldd.X.Ldd.cut_edges)
    ldd.X.Ldd.rounds
    (X.Ldd.diameter_bound ~n:(X.Graph.num_vertices g) ~beta:0.3 ());

  banner "Theorem 3 — nearly most balanced sparse cut";
  let cut = X.sparse_cut ~phi:(1.0 /. 16.0) g ~seed in
  Printf.printf "phi = 1/16: |C| = %d, conductance %.4f, balance %.3f\n"
    (Array.length cut.X.Sparse_cut.cut)
    cut.X.Sparse_cut.conductance cut.X.Sparse_cut.balance;
  Printf.printf
    "Theorem 3 floor: bal(C) >= min(b/2, 1/48) = %.4f — %s\n"
    (1.0 /. 48.0)
    (if cut.X.Sparse_cut.balance >= 1.0 /. 48.0 then "holds" else "VIOLATED");
  (* contrast with the sweep baseline, which may return a family clique *)
  (match X.Cut_baselines.spectral g (X.Rng.create (seed + 1)) with
  | Some c ->
    Printf.printf "spectral sweep for contrast: conductance %.4f, balance %.3f\n"
      c.X.Cut_baselines.conductance c.X.Cut_baselines.balance
  | None -> ());

  banner "Theorem 1 — (epsilon, phi)-expander decomposition";
  let d = X.decompose ~epsilon:0.3 ~k:2 g ~seed in
  Printf.printf "epsilon = 0.3, k = 2: %d parts, %.2f%% of edges removed\n"
    (List.length d.X.Decomposition.parts)
    (100.0 *. d.X.Decomposition.edge_fraction_removed);
  List.iteri
    (fun i part ->
      if Array.length part > 1 then
        Printf.printf "  part %d: %d vertices\n" i (Array.length part))
    d.X.Decomposition.parts;
  let singletons =
    List.length (List.filter (fun p -> Array.length p = 1) d.X.Decomposition.parts)
  in
  if singletons > 0 then
    Printf.printf "  (+ %d singleton parts from Phase-2 trimming)\n" singletons;
  let report = X.Decomposition_verify.check g d (X.Rng.create (seed + 2)) in
  Printf.printf "verified: partition %b, epsilon-ok %b, every part Phi >= %.4f\n"
    report.X.Decomposition_verify.is_partition
    report.X.Decomposition_verify.epsilon_ok
    report.X.Decomposition_verify.min_conductance_lower;

  banner "Theorem 2 — triangle enumeration in O~(n^{1/3}) rounds";
  let tri = X.enumerate_triangles ~epsilon:(1.0 /. 6.0) g ~seed in
  Printf.printf "found %d triangles (complete: %b) over %d level(s)\n"
    (List.length tri.X.Triangle_enum.triangles)
    tri.X.Triangle_enum.complete
    (List.length tri.X.Triangle_enum.levels);
  let dlp = X.Triangle_dlp.run g in
  Printf.printf
    "round comparison: CONGEST enumeration part = %d, executed DLP in the\n\
     CONGESTED-CLIQUE = %d, trivial flooding = %d\n"
    tri.X.Triangle_enum.enumeration_rounds dlp.X.Triangle_dlp.rounds
    (X.Triangle_baselines.trivial_rounds g);
  Printf.printf "\n(the decomposition itself costs %d simulated rounds at practical\n\
                 conductances — the polylog factors the paper's Open Problems\n\
                 section calls 'enormous' are measured, not hidden)\n"
    tri.X.Triangle_enum.total_rounds

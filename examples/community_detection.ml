(* Community detection with expander decomposition.

   Build & run:  dune exec examples/community_detection.exe

   The stochastic block model plants k communities; inside each one
   the subgraph is a dense expander, between them the edges are rare.
   An (ε, φ)-expander decomposition is then exactly a community
   detector: parts = communities. This example measures recovery
   accuracy against the planted ground truth and compares the
   decomposition's cut quality with the spectral baseline. *)

module X = Dexpander

let accuracy ~size part_of n =
  (* fraction of vertex pairs the clustering classifies correctly
     (same-community vs cross-community), the "pair counting" score *)
  let same_truth u v = u / size = v / size in
  let agree = ref 0 and total = ref 0 in
  for u = 0 to n - 1 do
    for v = u + 1 to n - 1 do
      incr total;
      let same_found = part_of.(u) = part_of.(v) in
      if same_found = same_truth u v then incr agree
    done
  done;
  float_of_int !agree /. float_of_int !total

let () =
  let seed = 2026 in
  let rng = X.Rng.create seed in
  let parts = 6 and size = 50 in
  let g =
    X.Generators.planted_partition rng ~parts ~size ~p_in:0.35 ~p_out:0.008
  in
  let g = X.Generators.connectivize rng g in
  let n = X.Graph.num_vertices g in
  Printf.printf "SBM: %d blocks × %d vertices, m = %d\n" parts size (X.Graph.num_edges g);

  let result = X.decompose ~epsilon:0.3 ~k:2 g ~seed in
  let found = List.length result.X.Decomposition.parts in
  let acc = accuracy ~size result.X.Decomposition.part_of n in
  Printf.printf "decomposition found %d parts; pairwise accuracy %.2f%%\n" found
    (100.0 *. acc);
  List.iteri
    (fun i part ->
      (* report the majority planted block per part *)
      let counts = Array.make parts 0 in
      Array.iter (fun v -> counts.(v / size) <- counts.(v / size) + 1) part;
      let best = ref 0 in
      Array.iteri (fun b c -> if c > counts.(!best) then best := b) counts;
      Printf.printf "  part %d: %3d vertices, %5.1f%% from planted block %d\n" i
        (Array.length part)
        (100.0 *. float_of_int counts.(!best) /. float_of_int (Array.length part))
        !best)
    result.X.Decomposition.parts;

  (* sanity: spectral sweep finds one sparse cut, but only one — the
     decomposition needed recursion to recover all blocks *)
  (match X.Cut_baselines.spectral g (X.Rng.create (seed + 3)) with
  | None -> Printf.printf "spectral baseline: no cut\n"
  | Some c ->
    Printf.printf "spectral baseline: one cut with Φ = %.4f, balance %.3f\n"
      c.X.Cut_baselines.conductance c.X.Cut_baselines.balance);
  Printf.printf "edges across parts: %.2f%% (ε budget 30%%)\n"
    (100.0 *. result.X.Decomposition.edge_fraction_removed)

(* Tests for Dex_graph.Generators: structural guarantees of each
   family used by the experiments. *)

module Graph = Dex_graph.Graph
module Metrics = Dex_graph.Metrics
module Gen = Dex_graph.Generators
module Rng = Dex_util.Rng

let test_complete () =
  let g = Gen.complete 6 in
  Alcotest.(check int) "n" 6 (Graph.num_vertices g);
  Alcotest.(check int) "m" 15 (Graph.num_edges g);
  for v = 0 to 5 do
    Alcotest.(check int) "degree" 5 (Graph.degree g v)
  done

let test_cycle_path_star () =
  let c = Gen.cycle 8 in
  Alcotest.(check int) "cycle m" 8 (Graph.num_edges c);
  for v = 0 to 7 do
    Alcotest.(check int) "cycle 2-regular" 2 (Graph.degree c v)
  done;
  let p = Gen.path 8 in
  Alcotest.(check int) "path m" 7 (Graph.num_edges p);
  let s = Gen.star 8 in
  Alcotest.(check int) "star center degree" 7 (Graph.degree s 0);
  Alcotest.(check int) "star leaf degree" 1 (Graph.degree s 3)

let test_grid () =
  let g = Gen.grid 4 5 in
  Alcotest.(check int) "n" 20 (Graph.num_vertices g);
  Alcotest.(check int) "m" 31 (Graph.num_edges g);
  (* corner degree 2, interior degree 4 *)
  Alcotest.(check int) "corner" 2 (Graph.degree g 0);
  Alcotest.(check int) "interior" 4 (Graph.degree g 6);
  Alcotest.(check int) "diameter" 7 (Metrics.diameter g)

let test_gnp_density () =
  let rng = Rng.create 1 in
  let g = Gen.gnp rng ~n:100 ~p:0.1 in
  let m = Graph.num_edges g in
  (* expectation 495; allow wide slack *)
  Alcotest.(check bool) "density plausible" true (m > 330 && m < 680);
  let g0 = Gen.gnp rng ~n:50 ~p:0.0 in
  Alcotest.(check int) "p=0 empty" 0 (Graph.num_edges g0);
  let g1 = Gen.gnp rng ~n:10 ~p:1.0 in
  Alcotest.(check int) "p=1 complete" 45 (Graph.num_edges g1)

let test_gnp_sparse_dense_agree () =
  (* the sparse (skip) sampler and dense sampler target the same
     distribution; compare means over seeds *)
  let mean_m p lo hi =
    let total = ref 0 in
    for seed = 1 to 20 do
      let rng = Rng.create seed in
      total := !total + Graph.num_edges (Gen.gnp rng ~n:60 ~p)
    done;
    let avg = float_of_int !total /. 20.0 in
    Alcotest.(check bool) (Printf.sprintf "avg for p=%f in [%f,%f]" p lo hi) true
      (avg >= lo && avg <= hi)
  in
  (* E[m] = 1770·p *)
  mean_m 0.1 150.0 205.0;
  (* sparse path *)
  mean_m 0.3 470.0 590.0 (* dense path *)

let test_gnm () =
  let rng = Rng.create 2 in
  let g = Gen.gnm rng ~n:30 ~m:100 in
  Alcotest.(check int) "m exact" 100 (Graph.num_edges g);
  Graph.check g

let test_random_regular () =
  let rng = Rng.create 3 in
  let g = Gen.random_regular rng ~n:100 ~d:6 in
  let total = Graph.total_volume g in
  Alcotest.(check bool) "near regular" true (total >= 560 && total <= 600);
  let irregular = ref 0 in
  for v = 0 to 99 do
    if Graph.degree g v <> 6 then incr irregular
  done;
  Alcotest.(check bool) "few irregular vertices" true (!irregular <= 10);
  Alcotest.check_raises "odd nd" (Invalid_argument "Generators.random_regular: n*d must be even")
    (fun () -> ignore (Gen.random_regular rng ~n:5 ~d:3))

let test_barbell () =
  let g = Gen.barbell ~clique:10 ~bridge:3 in
  Alcotest.(check int) "n" 23 (Graph.num_vertices g);
  Alcotest.(check bool) "connected" true (Metrics.is_connected g);
  (* the clique side is a sparse cut *)
  let side = Array.init 10 (fun i -> i) in
  Alcotest.(check bool) "sparse side" true (Metrics.conductance g side < 0.05)

let test_dumbbell () =
  let rng = Rng.create 4 in
  let g = Gen.dumbbell rng ~n1:40 ~n2:40 ~d:6 ~bridges:2 in
  Alcotest.(check bool) "connected" true (Metrics.is_connected g);
  let side = Array.init 40 (fun i -> i) in
  let phi = Metrics.conductance g side in
  Alcotest.(check bool) "planted cut sparse" true (phi < 0.02);
  Alcotest.(check bool) "balance ≈ 1/2" true (Metrics.balance g side > 0.45)

let test_planted_partition () =
  let rng = Rng.create 5 in
  let g = Gen.planted_partition rng ~parts:3 ~size:40 ~p_in:0.4 ~p_out:0.01 in
  Alcotest.(check int) "n" 120 (Graph.num_vertices g);
  let block = Array.init 40 (fun i -> i) in
  Alcotest.(check bool) "block is sparse cut" true (Metrics.conductance g block < 0.15)

let test_chung_lu () =
  let rng = Rng.create 6 in
  let g = Gen.chung_lu rng ~n:200 ~exponent:2.5 ~avg_degree:10.0 in
  let avg = float_of_int (Graph.total_volume g) /. 200.0 in
  Alcotest.(check bool) "average degree ≈ 10" true (avg > 6.0 && avg < 14.0);
  (* power law: max degree much larger than average *)
  let maxdeg = ref 0 in
  for v = 0 to 199 do
    maxdeg := max !maxdeg (Graph.degree g v)
  done;
  Alcotest.(check bool) "skewed degrees" true (float_of_int !maxdeg > 2.0 *. avg)

let test_cliques_chain () =
  let g = Gen.cliques_chain ~cliques:4 ~size:6 in
  Alcotest.(check int) "n" 24 (Graph.num_vertices g);
  Alcotest.(check bool) "connected" true (Metrics.is_connected g);
  Alcotest.(check int) "m" ((4 * 15) + 3) (Graph.num_edges g)

let test_binary_tree () =
  let g = Gen.binary_tree 4 in
  Alcotest.(check int) "n" 31 (Graph.num_vertices g);
  Alcotest.(check int) "m" 30 (Graph.num_edges g);
  Alcotest.(check int) "tree degeneracy" 1 (Metrics.degeneracy g)

let test_attach_warts () =
  let rng = Rng.create 8 in
  let base = Gen.random_regular rng ~n:60 ~d:6 in
  let g = Gen.attach_warts rng base ~warts:3 ~size:5 in
  Alcotest.(check int) "n grows" (60 + 15) (Graph.num_vertices g);
  Alcotest.(check int) "edges grow" (Graph.num_edges base + (3 * 10) + 3) (Graph.num_edges g);
  Alcotest.(check bool) "connected" true (Metrics.is_connected g);
  (* each wart is a very sparse, very unbalanced cut *)
  for w = 0 to 2 do
    let wart = Array.init 5 (fun i -> 60 + (w * 5) + i) in
    Alcotest.(check int) "wart cut = 1 edge" 1 (Metrics.cut_size g wart);
    Alcotest.(check bool) "wart sparse" true (Metrics.conductance g wart < 0.05);
    Alcotest.(check bool) "wart unbalanced" true (Metrics.balance g wart < 0.06)
  done

let test_connectivize () =
  let rng = Rng.create 7 in
  let g = Graph.of_edges ~n:9 [ (0, 1); (2, 3); (4, 5) ] in
  let g' = Gen.connectivize rng g in
  Alcotest.(check bool) "connected afterwards" true (Metrics.is_connected g');
  Alcotest.(check bool) "few edges added" true (Graph.num_edges g' <= 3 + 5);
  (* already connected: unchanged *)
  let p = Gen.path 5 in
  let p' = Gen.connectivize rng p in
  Alcotest.(check int) "no-op" (Graph.num_edges p) (Graph.num_edges p')

let prop_generators_valid =
  QCheck.Test.make ~name:"generated graphs pass invariants" ~count:50
    QCheck.(pair (int_range 4 40) (int_bound 1000))
    (fun (n, seed) ->
      let rng = Rng.create seed in
      let graphs =
        [ Gen.gnp rng ~n ~p:0.2;
          Gen.gnm rng ~n ~m:(min (n * 2) (n * (n - 1) / 2));
          Gen.cycle (max 3 n);
          Gen.grid 3 (max 1 (n / 3));
          Gen.chung_lu rng ~n ~exponent:2.7 ~avg_degree:4.0 ]
      in
      List.iter Graph.check graphs;
      true)

let () =
  Alcotest.run "generators"
    [ ( "deterministic families",
        [ Alcotest.test_case "complete" `Quick test_complete;
          Alcotest.test_case "cycle/path/star" `Quick test_cycle_path_star;
          Alcotest.test_case "grid" `Quick test_grid;
          Alcotest.test_case "barbell" `Quick test_barbell;
          Alcotest.test_case "cliques chain" `Quick test_cliques_chain;
          Alcotest.test_case "binary tree" `Quick test_binary_tree;
          Alcotest.test_case "attach warts" `Quick test_attach_warts ] );
      ( "random families",
        [ Alcotest.test_case "gnp density" `Quick test_gnp_density;
          Alcotest.test_case "gnp samplers agree" `Quick test_gnp_sparse_dense_agree;
          Alcotest.test_case "gnm" `Quick test_gnm;
          Alcotest.test_case "random regular" `Quick test_random_regular;
          Alcotest.test_case "dumbbell" `Quick test_dumbbell;
          Alcotest.test_case "planted partition" `Quick test_planted_partition;
          Alcotest.test_case "chung-lu" `Quick test_chung_lu;
          Alcotest.test_case "connectivize" `Quick test_connectivize ] );
      ("properties", [ QCheck_alcotest.to_alcotest prop_generators_valid ]) ]

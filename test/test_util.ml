(* Unit and property tests for Dex_util: Rng, Stats, Union_find, Heap,
   Table. *)

module Rng = Dex_util.Rng
module Stats = Dex_util.Stats
module Uf = Dex_util.Union_find
module Heap = Dex_util.Heap
module Table = Dex_util.Table

let check_float = Alcotest.(check (float 1e-9))

(* ---------- Rng ---------- *)

let test_rng_deterministic () =
  let a = Rng.create 7 and b = Rng.create 7 in
  for _ = 1 to 100 do
    Alcotest.(check int) "same stream" (Rng.int a 1_000_000) (Rng.int b 1_000_000)
  done

let test_rng_seed_sensitivity () =
  let a = Rng.create 7 and b = Rng.create 8 in
  let same = ref 0 in
  for _ = 1 to 64 do
    if Rng.int a 1_000_000 = Rng.int b 1_000_000 then incr same
  done;
  Alcotest.(check bool) "streams differ" true (!same < 8)

let test_rng_split_independence () =
  let base = Rng.create 3 in
  let a = Rng.split base 1 and b = Rng.split base 2 in
  let same = ref 0 in
  for _ = 1 to 64 do
    if Rng.int a 1_000_000 = Rng.int b 1_000_000 then incr same
  done;
  Alcotest.(check bool) "split streams differ" true (!same < 8)

let test_rng_int_range () =
  let rng = Rng.create 11 in
  for _ = 1 to 1000 do
    let x = Rng.int rng 17 in
    Alcotest.(check bool) "in range" true (x >= 0 && x < 17)
  done;
  Alcotest.check_raises "bound 0" (Invalid_argument "Rng.int: bound must be positive")
    (fun () -> ignore (Rng.int rng 0))

let test_rng_exponential_mean () =
  let rng = Rng.create 5 in
  let rate = 0.5 in
  let samples = List.init 20_000 (fun _ -> Rng.exponential rng ~rate) in
  let mean = Stats.mean samples in
  Alcotest.(check bool) "mean ≈ 1/rate"
    true
    (Float.abs (mean -. (1.0 /. rate)) < 0.1);
  List.iter (fun x -> assert (x >= 0.0)) samples

let test_rng_geometric () =
  let rng = Rng.create 5 in
  Alcotest.(check int) "p=1 is 0" 0 (Rng.geometric rng 1.0);
  let samples = List.init 20_000 (fun _ -> float_of_int (Rng.geometric rng 0.25)) in
  let mean = Stats.mean samples in
  (* mean of failures before success = (1-p)/p = 3 *)
  Alcotest.(check bool) "geometric mean ≈ 3" true (Float.abs (mean -. 3.0) < 0.25)

let test_rng_shuffle_permutation () =
  let rng = Rng.create 17 in
  let a = Array.init 50 (fun i -> i) in
  Rng.shuffle rng a;
  let sorted = Array.copy a in
  Array.sort compare sorted;
  Alcotest.(check (array int)) "permutation" (Array.init 50 (fun i -> i)) sorted

let test_rng_weighted_index () =
  let rng = Rng.create 23 in
  let w = [| 0.0; 3.0; 1.0 |] in
  let counts = Array.make 3 0 in
  for _ = 1 to 10_000 do
    let i = Rng.weighted_index rng w in
    counts.(i) <- counts.(i) + 1
  done;
  Alcotest.(check int) "zero weight never drawn" 0 counts.(0);
  Alcotest.(check bool) "ratio ≈ 3" true
    (let r = float_of_int counts.(1) /. float_of_int (max 1 counts.(2)) in
     r > 2.4 && r < 3.6)

let test_rng_sample_without_replacement () =
  let rng = Rng.create 29 in
  for _ = 1 to 50 do
    let s = Rng.sample_without_replacement rng ~n:20 ~k:10 in
    Alcotest.(check int) "size" 10 (Array.length s);
    let tbl = Hashtbl.create 16 in
    Array.iter
      (fun x ->
        Alcotest.(check bool) "range" true (x >= 0 && x < 20);
        Alcotest.(check bool) "distinct" false (Hashtbl.mem tbl x);
        Hashtbl.replace tbl x ())
      s
  done

(* ---------- Stats ---------- *)

let test_stats_basic () =
  check_float "mean" 2.5 (Stats.mean [ 1.0; 2.0; 3.0; 4.0 ]);
  check_float "median odd" 2.0 (Stats.median [ 3.0; 1.0; 2.0 ]);
  check_float "median even" 2.5 (Stats.median [ 4.0; 1.0; 2.0; 3.0 ]);
  check_float "min" 1.0 (Stats.minimum [ 4.0; 1.0; 2.0 ]);
  check_float "max" 4.0 (Stats.maximum [ 4.0; 1.0; 2.0 ]);
  check_float "stddev of constant" 0.0 (Stats.stddev [ 5.0; 5.0; 5.0 ]);
  check_float "p100 = max" 9.0 (Stats.percentile 100.0 [ 1.0; 9.0; 3.0 ])

let test_stats_linear_fit () =
  let slope, intercept = Stats.linear_fit [ (0.0, 1.0); (1.0, 3.0); (2.0, 5.0) ] in
  check_float "slope" 2.0 slope;
  check_float "intercept" 1.0 intercept

let test_stats_log_log_slope () =
  (* y = 7·x² gives slope 2 on log-log axes *)
  let pts = List.init 10 (fun i -> let x = float_of_int (i + 1) in (x, 7.0 *. x *. x)) in
  check_float "quadratic slope" 2.0 (Stats.log_log_slope pts)

let test_stats_empty () =
  Alcotest.check_raises "mean []" (Invalid_argument "Stats.mean: empty list") (fun () ->
      ignore (Stats.mean []))

(* ---------- Union_find ---------- *)

let test_uf_basic () =
  let uf = Uf.create 6 in
  Alcotest.(check int) "initial sets" 6 (Uf.count uf);
  Alcotest.(check bool) "union fresh" true (Uf.union uf 0 1);
  Alcotest.(check bool) "union again" false (Uf.union uf 1 0);
  Alcotest.(check bool) "same" true (Uf.same uf 0 1);
  Alcotest.(check bool) "not same" false (Uf.same uf 0 2);
  Alcotest.(check int) "sets after one union" 5 (Uf.count uf);
  Alcotest.(check int) "size" 2 (Uf.size uf 0);
  ignore (Uf.union uf 2 3);
  ignore (Uf.union uf 0 2);
  Alcotest.(check int) "size merged" 4 (Uf.size uf 3);
  let groups = Uf.groups uf in
  Alcotest.(check int) "groups" 3 (List.length groups);
  let total = List.fold_left (fun acc g -> acc + Array.length g) 0 groups in
  Alcotest.(check int) "groups cover" 6 total

let test_uf_transitivity_prop =
  QCheck.Test.make ~name:"union-find transitivity" ~count:100
    QCheck.(list (pair (int_bound 19) (int_bound 19)))
    (fun pairs ->
      let uf = Uf.create 20 in
      List.iter (fun (a, b) -> ignore (Uf.union uf a b)) pairs;
      (* same is an equivalence: spot-check transitivity *)
      let ok = ref true in
      for a = 0 to 19 do
        for b = 0 to 19 do
          for c = 0 to 19 do
            if Uf.same uf a b && Uf.same uf b c && not (Uf.same uf a c) then ok := false
          done
        done
      done;
      !ok)

(* ---------- Heap ---------- *)

let test_heap_ordering () =
  let h = Heap.create () in
  Alcotest.(check bool) "empty" true (Heap.is_empty h);
  List.iter (fun x -> Heap.push h x x) [ 5.0; 1.0; 4.0; 2.0; 3.0 ];
  Alcotest.(check int) "size" 5 (Heap.size h);
  (match Heap.peek h with
  | Some (p, _) -> check_float "peek min" 1.0 p
  | None -> Alcotest.fail "peek");
  let rec drain acc =
    match Heap.pop h with None -> List.rev acc | Some (p, _) -> drain (p :: acc)
  in
  Alcotest.(check (list (float 1e-9))) "sorted drain" [ 1.0; 2.0; 3.0; 4.0; 5.0 ] (drain [])

let test_heap_sort_prop =
  QCheck.Test.make ~name:"heap drains sorted" ~count:200
    QCheck.(list (float_bound_inclusive 1000.0))
    (fun xs ->
      let h = Heap.create () in
      List.iter (fun x -> Heap.push h x ()) xs;
      let rec drain acc =
        match Heap.pop h with None -> List.rev acc | Some (p, ()) -> drain (p :: acc)
      in
      let drained = drain [] in
      drained = List.sort compare xs)

(* ---------- Tail_bounds ---------- *)

module Tb = Dex_util.Tail_bounds

let test_tail_bounds_monotone () =
  (* larger mean => smaller tail; larger dependence => weaker bound *)
  Alcotest.(check bool) "mu monotone" true
    (Tb.chernoff_upper ~mu:100.0 ~delta:0.5 < Tb.chernoff_upper ~mu:10.0 ~delta:0.5);
  Alcotest.(check bool) "delta monotone" true
    (Tb.chernoff_upper ~mu:100.0 ~delta:0.9 < Tb.chernoff_upper ~mu:100.0 ~delta:0.1);
  Alcotest.(check bool) "dependence weakens" true
    (Tb.bounded_dependence_upper ~mu:100.0 ~delta:0.5 ~d:10.0
     > Tb.bounded_dependence_upper ~mu:100.0 ~delta:0.5 ~d:1.0);
  Alcotest.(check bool) "capped at 1" true (Tb.chernoff_upper ~mu:0.0 ~delta:0.5 <= 1.0)

let test_tail_bounds_values () =
  Alcotest.(check (float 1e-12)) "independent case"
    (exp (-.(0.25 *. 12.0) /. 3.0))
    (Tb.chernoff_upper ~mu:12.0 ~delta:0.5);
  Alcotest.(check (float 1e-12)) "lower tail"
    (exp (-.(0.25 *. 12.0) /. 2.0))
    (Tb.chernoff_lower ~mu:12.0 ~delta:0.5)

let test_ldd_certificate () =
  (* the exponent is -Ω(K·ln n): the certificate strengthens with K
     (and hence with n at fixed K), not with the edge count *)
  let p_weak = Tb.ldd_failure_probability ~m:20_000 ~beta:0.3 ~k_ln:30.0 in
  let p_strong = Tb.ldd_failure_probability ~m:20_000 ~beta:0.3 ~k_ln:200.0 in
  Alcotest.(check bool) "improves with K ln n" true (p_strong < p_weak);
  Alcotest.(check bool) "nontrivial at large K" true (p_strong < 1e-3);
  Alcotest.check_raises "bad beta" (Invalid_argument "Tail_bounds: beta in (0,1)")
    (fun () -> ignore (Tb.ldd_failure_probability ~m:10 ~beta:2.0 ~k_ln:5.0))

(* ---------- Table ---------- *)

let test_table_render () =
  let t = Table.create ~title:"demo" [ "a"; "bb" ] in
  Table.add_row t [ "1"; "2" ];
  Table.add_row t [ "333" ];
  let s = Table.render t in
  Alcotest.(check bool) "has title" true
    (String.length s > 0 && String.sub s 0 3 = "== ");
  Alcotest.(check bool) "rows kept in order" true
    (let i1 = String.index s '1' and i3 = String.index s '3' in
     i1 < i3)

let test_table_formats () =
  Alcotest.(check string) "int-like float" "12" (Table.fmt_float 12.0);
  Alcotest.(check string) "pct" "12.50%" (Table.fmt_pct 0.125)

let () =
  Alcotest.run "util"
    [ ( "rng",
        [ Alcotest.test_case "deterministic" `Quick test_rng_deterministic;
          Alcotest.test_case "seed sensitivity" `Quick test_rng_seed_sensitivity;
          Alcotest.test_case "split independence" `Quick test_rng_split_independence;
          Alcotest.test_case "int range" `Quick test_rng_int_range;
          Alcotest.test_case "exponential mean" `Quick test_rng_exponential_mean;
          Alcotest.test_case "geometric" `Quick test_rng_geometric;
          Alcotest.test_case "shuffle permutation" `Quick test_rng_shuffle_permutation;
          Alcotest.test_case "weighted index" `Quick test_rng_weighted_index;
          Alcotest.test_case "sample without replacement" `Quick
            test_rng_sample_without_replacement ] );
      ( "stats",
        [ Alcotest.test_case "basic" `Quick test_stats_basic;
          Alcotest.test_case "linear fit" `Quick test_stats_linear_fit;
          Alcotest.test_case "log-log slope" `Quick test_stats_log_log_slope;
          Alcotest.test_case "empty raises" `Quick test_stats_empty ] );
      ( "union-find",
        [ Alcotest.test_case "basic" `Quick test_uf_basic;
          QCheck_alcotest.to_alcotest test_uf_transitivity_prop ] );
      ( "heap",
        [ Alcotest.test_case "ordering" `Quick test_heap_ordering;
          QCheck_alcotest.to_alcotest test_heap_sort_prop ] );
      ( "tail-bounds",
        [ Alcotest.test_case "monotonicity" `Quick test_tail_bounds_monotone;
          Alcotest.test_case "closed forms" `Quick test_tail_bounds_values;
          Alcotest.test_case "LDD certificate" `Quick test_ldd_certificate ] );
      ( "table",
        [ Alcotest.test_case "render" `Quick test_table_render;
          Alcotest.test_case "formats" `Quick test_table_formats ] ) ]

(* Tests for the routing layer: the GKS trade-off structure and the
   executed token router. *)

module Graph = Dex_graph.Graph
module Gen = Dex_graph.Generators
module Hierarchy = Dex_routing.Hierarchy
module Router = Dex_routing.Token_router
module Rng = Dex_util.Rng

let expander seed n d =
  let rng = Rng.create seed in
  Gen.random_regular rng ~n ~d

(* ---------- hierarchy ---------- *)

let test_build_basic () =
  let g = expander 1 128 8 in
  let h = Hierarchy.build g (Rng.create 2) ~k:2 in
  Alcotest.(check int) "k" 2 h.Hierarchy.k;
  Alcotest.(check (float 1e-6)) "beta = sqrt m" (sqrt (float_of_int h.Hierarchy.m))
    h.Hierarchy.beta;
  Alcotest.(check bool) "tau measured" true (h.Hierarchy.tau_mix >= 1);
  Alcotest.(check bool) "preprocess positive" true (h.Hierarchy.preprocess_rounds > 0);
  Alcotest.(check bool) "query positive" true (h.Hierarchy.query_rounds > 0)

let test_query_grows_with_k () =
  let g = expander 3 128 8 in
  let rng () = Rng.create 4 in
  let q k = (Hierarchy.build g (rng ()) ~k).Hierarchy.query_rounds in
  Alcotest.(check bool) "query k=1 < k=3" true (q 1 < q 3)

let test_beta_shrinks_with_k () =
  let g = expander 5 128 8 in
  let b k = (Hierarchy.build g (Rng.create 6) ~k).Hierarchy.beta in
  Alcotest.(check bool) "beta decreasing" true (b 1 > b 2 && b 2 > b 3)

let test_total_rounds_arithmetic () =
  let g = expander 7 64 6 in
  let h = Hierarchy.build g (Rng.create 8) ~k:2 in
  Alcotest.(check int) "total = pre + q·query"
    (h.Hierarchy.preprocess_rounds + (5 * h.Hierarchy.query_rounds))
    (Hierarchy.total_rounds h ~queries:5)

let test_best_k_minimizes () =
  let g = expander 9 128 8 in
  let queries = 100 in
  let best = Hierarchy.best_k_for g (Rng.create 10) ~queries ~k_max:4 in
  for k = 1 to 4 do
    let h = Hierarchy.build g (Rng.create 10) ~k in
    Alcotest.(check bool)
      (Printf.sprintf "best ≤ k=%d" k)
      true
      (Hierarchy.total_rounds best ~queries <= Hierarchy.total_rounds h ~queries)
  done

let test_build_validation () =
  let g = expander 11 64 6 in
  Alcotest.check_raises "k"
    (Dex_util.Invariant.Violation { where = "Hierarchy.build"; what = "k >= 1" }) (fun () ->
      ignore (Hierarchy.build g (Rng.create 1) ~k:0))

(* ---------- token router ---------- *)

let test_route_delivers_all () =
  let g = expander 13 96 8 in
  let rng = Rng.create 14 in
  let requests = List.init 50 (fun i -> { Router.src = i; dst = (i + 48) mod 96 }) in
  let stats = Router.route ~capacity:4 g rng requests in
  Alcotest.(check int) "all delivered" 50 stats.Router.delivered;
  Alcotest.(check bool) "finite rounds" true (stats.Router.rounds > 0);
  Alcotest.(check bool) "moves ≥ deliveries" true (stats.Router.moves >= 50)

let test_route_src_eq_dst () =
  let g = expander 15 32 4 in
  let stats = Router.route g (Rng.create 16) [ { Router.src = 3; dst = 3 } ] in
  Alcotest.(check int) "trivially delivered" 1 stats.Router.delivered;
  Alcotest.(check int) "zero rounds" 0 stats.Router.rounds

let test_route_disconnected_fails () =
  let g = Graph.of_edges ~n:4 [ (0, 1); (2, 3) ] in
  match Router.route ~max_rounds:200 g (Rng.create 17) [ { Router.src = 0; dst = 3 } ] with
  | exception Router.Undelivered { pending; delivered; rounds; moves = _ } ->
    Alcotest.(check int) "pending" 1 pending;
    Alcotest.(check int) "delivered" 0 delivered;
    Alcotest.(check int) "exhausted budget" 200 rounds
  | _ -> Alcotest.fail "expected Undelivered on disconnected pair"

let test_route_undelivered_context () =
  (* zero round budget: the token never moves; the typed exception must
     carry the full accounting so callers can report or retry *)
  let g = Gen.path 3 in
  match Router.route ~max_rounds:0 g (Rng.create 18) [ { Router.src = 0; dst = 2 } ] with
  | exception Router.Undelivered { pending; delivered; rounds; moves } ->
    Alcotest.(check int) "pending" 1 pending;
    Alcotest.(check int) "delivered" 0 delivered;
    Alcotest.(check int) "rounds" 0 rounds;
    Alcotest.(check int) "moves" 0 moves
  | _ -> Alcotest.fail "expected Undelivered with a zero budget"

let test_route_validation () =
  let g = expander 19 32 4 in
  Alcotest.check_raises "endpoint range"
    (Dex_util.Invariant.Violation
       { where = "Token_router.route"; what = "endpoint out of range" }) (fun () ->
      ignore (Router.route g (Rng.create 20) [ { Router.src = 0; dst = 99 } ]));
  Alcotest.check_raises "capacity"
    (Dex_util.Invariant.Violation { where = "Token_router.route"; what = "capacity >= 1" })
    (fun () -> ignore (Router.route ~capacity:0 g (Rng.create 20) []))

let test_degree_respecting_requests () =
  let g = expander 21 64 6 in
  let requests = Router.degree_respecting_requests g (Rng.create 22) ~load:1.0 in
  (* each vertex appears as source exactly round(load·deg(v)) times *)
  let counts = Array.make 64 0 in
  List.iter (fun { Router.src; _ } -> counts.(src) <- counts.(src) + 1) requests;
  Array.iteri
    (fun v c ->
      let expected = int_of_float (Float.round (float_of_int (Graph.degree g v))) in
      Alcotest.(check int) "= round(load·deg)" expected c)
    counts

let test_expander_routes_fast () =
  (* on an expander, a permutation-ish workload completes in far fewer
     rounds than the worst-case n·log n budget *)
  let n = 128 in
  let g = expander 23 n 8 in
  let rng = Rng.create 24 in
  let requests = Router.degree_respecting_requests g rng ~load:0.25 in
  let stats = Router.route ~capacity:4 g rng requests in
  Alcotest.(check bool)
    (Printf.sprintf "rounds %d ≪ n² = %d" stats.Router.rounds (n * n))
    true
    (stats.Router.rounds < n * n / 4)

let test_capacity_congestion () =
  (* many tokens from one hub: a tighter per-edge capacity must slow
     delivery down (more waiting) *)
  let g = Gen.star 24 in
  let requests = List.init 23 (fun i -> { Router.src = i + 1; dst = (i mod 22) + 1 }) in
  (* all traffic crosses the center: compare capacities *)
  let r1 = Router.route ~capacity:1 ~max_rounds:2_000_000 g (Rng.create 30) requests in
  let r8 = Router.route ~capacity:8 ~max_rounds:2_000_000 g (Rng.create 30) requests in
  Alcotest.(check int) "both deliver" r1.Router.delivered r8.Router.delivered;
  Alcotest.(check bool)
    (Printf.sprintf "capacity helps: %d >= %d" r1.Router.rounds r8.Router.rounds)
    true
    (r1.Router.rounds >= r8.Router.rounds)

let test_total_rounds_overflow_clamp () =
  let g = expander 25 64 6 in
  let h = Hierarchy.build g (Rng.create 26) ~k:1 in
  Alcotest.(check int) "clamped at max_int" max_int
    (Hierarchy.total_rounds h ~queries:max_int)

let prop_all_delivered =
  QCheck.Test.make ~name:"token router delivers every request" ~count:15
    QCheck.(pair (int_range 16 64) (int_bound 10_000))
    (fun (n, seed) ->
      let n = if n mod 2 = 1 then n + 1 else n in
      let g = expander seed n 4 in
      let rng = Rng.create (seed + 1) in
      let requests = List.init (n / 2) (fun i -> { Router.src = i; dst = n - 1 - i }) in
      let stats = Router.route ~capacity:2 g rng requests in
      stats.Router.delivered = n / 2)

let () =
  Alcotest.run "routing"
    [ ( "hierarchy",
        [ Alcotest.test_case "build" `Quick test_build_basic;
          Alcotest.test_case "query grows with k" `Quick test_query_grows_with_k;
          Alcotest.test_case "beta shrinks with k" `Quick test_beta_shrinks_with_k;
          Alcotest.test_case "total rounds arithmetic" `Quick test_total_rounds_arithmetic;
          Alcotest.test_case "best k minimizes" `Quick test_best_k_minimizes;
          Alcotest.test_case "validation" `Quick test_build_validation ] );
      ( "token-router",
        [ Alcotest.test_case "delivers all" `Quick test_route_delivers_all;
          Alcotest.test_case "src = dst" `Quick test_route_src_eq_dst;
          Alcotest.test_case "disconnected fails" `Quick test_route_disconnected_fails;
          Alcotest.test_case "undelivered context" `Quick test_route_undelivered_context;
          Alcotest.test_case "validation" `Quick test_route_validation;
          Alcotest.test_case "degree respecting requests" `Quick test_degree_respecting_requests;
          Alcotest.test_case "expander routes fast" `Quick test_expander_routes_fast;
          Alcotest.test_case "capacity congestion" `Quick test_capacity_congestion;
          Alcotest.test_case "total rounds clamp" `Quick test_total_rounds_overflow_clamp;
          QCheck_alcotest.to_alcotest prop_all_delivered ] ) ]

(* Tests for triangle enumeration: the exact forward algorithm against
   a naive triple scan, the expander-based distributed enumerator
   (Theorem 2) for completeness, and the baseline cost models. *)

module Graph = Dex_graph.Graph
module Gen = Dex_graph.Generators
module Exact = Dex_triangle.Exact
module Enum = Dex_triangle.Expander_enum
module Baselines = Dex_triangle.Baselines
module Rng = Dex_util.Rng

let naive_triangles g =
  let n = Graph.num_vertices g in
  let acc = ref [] in
  for u = 0 to n - 1 do
    for v = u + 1 to n - 1 do
      for w = v + 1 to n - 1 do
        if Graph.mem_edge g u v && Graph.mem_edge g v w && Graph.mem_edge g u w then
          acc := (u, v, w) :: !acc
      done
    done
  done;
  List.sort compare !acc

(* ---------- exact ---------- *)

let test_known_counts () =
  Alcotest.(check int) "K4" 4 (Exact.count (Gen.complete 4));
  Alcotest.(check int) "K5" 10 (Exact.count (Gen.complete 5));
  Alcotest.(check int) "K6" 20 (Exact.count (Gen.complete 6));
  Alcotest.(check int) "C5" 0 (Exact.count (Gen.cycle 5));
  Alcotest.(check int) "C3" 1 (Exact.count (Gen.cycle 3));
  Alcotest.(check int) "grid" 0 (Exact.count (Gen.grid 4 4));
  Alcotest.(check int) "tree" 0 (Exact.count (Gen.binary_tree 4));
  Alcotest.(check int) "star" 0 (Exact.count (Gen.star 10))

let test_self_loops_ignored () =
  let g = Graph.of_edges ~n:3 [ (0, 1); (1, 2); (0, 2); (0, 0); (1, 1) ] in
  Alcotest.(check int) "one triangle" 1 (Exact.count g);
  Alcotest.(check (list (triple int int int))) "ordered" [ (0, 1, 2) ] (Exact.enumerate g)

let test_parallel_edges_no_double_count () =
  let g = Graph.of_edges ~n:3 [ (0, 1); (0, 1); (1, 2); (0, 2) ] in
  Alcotest.(check int) "still one" 1 (Exact.count g)

let test_enumerate_matches_naive () =
  for seed = 1 to 6 do
    let rng = Rng.create seed in
    let g = Gen.gnp rng ~n:25 ~p:0.25 in
    Alcotest.(check (list (triple int int int))) "forward = naive" (naive_triangles g)
      (Exact.enumerate g)
  done

let test_edge_pred_split () =
  let g = Gen.complete 6 in
  let all = Exact.enumerate g in
  let hit, miss = Exact.triangles_with_edge_pred g (fun u v -> u = 0 && v = 1) in
  Alcotest.(check int) "total preserved" (List.length all) (List.length hit + List.length miss);
  (* triangles containing edge (0,1): n-2 = 4 of them *)
  Alcotest.(check int) "hits" 4 (List.length hit);
  List.iter
    (fun (a, b, _) -> Alcotest.(check bool) "hit contains 0-1" true (a = 0 && b = 1))
    hit

(* ---------- distributed enumerator ---------- *)

let check_complete ?epsilon ?k_decomp g seed =
  let r = Enum.run ?epsilon ?k_decomp g (Rng.create seed) in
  Alcotest.(check bool) "complete" true r.Enum.complete;
  Alcotest.(check int) "count matches" (Exact.count g) (List.length r.Enum.triangles);
  r

let test_enum_gnp_dense () =
  let rng = Rng.create 7 in
  let g = Gen.connectivize rng (Gen.gnp rng ~n:60 ~p:0.5) in
  let r = check_complete g 8 in
  Alcotest.(check bool) "some rounds" true (r.Enum.total_rounds > 0);
  Alcotest.(check bool) "levels ≥ 1" true (List.length r.Enum.levels >= 1)

let test_enum_sbm_multi_level () =
  let rng = Rng.create 9 in
  let g = Gen.planted_partition rng ~parts:4 ~size:30 ~p_in:0.5 ~p_out:0.05 in
  let g = Gen.connectivize rng g in
  let r = check_complete ~epsilon:0.3 g 10 in
  (* cross-block triangles survive into E-star: expect > 1 level *)
  Alcotest.(check bool) "recursed" true (List.length r.Enum.levels >= 1);
  let total_detected =
    List.fold_left (fun acc l -> acc + l.Enum.detected) 0 r.Enum.levels
  in
  Alcotest.(check bool) "level counts cover all" true
    (total_detected >= List.length r.Enum.triangles)

let test_enum_triangle_free () =
  let g = Gen.grid 8 8 in
  let r = Enum.run g (Rng.create 11) in
  Alcotest.(check (list (triple int int int))) "none" [] r.Enum.triangles;
  Alcotest.(check bool) "complete" true r.Enum.complete

let test_enum_dumbbell () =
  let rng = Rng.create 12 in
  let g = Gen.dumbbell rng ~n1:40 ~n2:40 ~d:8 ~bridges:2 in
  ignore (check_complete g 13)

let test_enum_power_law () =
  let rng = Rng.create 14 in
  let g = Gen.connectivize rng (Gen.chung_lu rng ~n:120 ~exponent:2.5 ~avg_degree:10.0) in
  ignore (check_complete g 15)

let test_enum_cliques_chain () =
  let g = Gen.cliques_chain ~cliques:5 ~size:8 in
  let r = check_complete g 16 in
  Alcotest.(check int) "clique triangles" (5 * 56) (List.length r.Enum.triangles)

let test_instances_formula () =
  (* clique-like component: incident = volume/2 exactly when all edges
     are intra, so instances ≈ 1.5·n^{1/3} *)
  Alcotest.(check int) "balanced" 8 (Enum.instances_for ~n:125 ~incident:100 ~volume:200);
  Alcotest.(check bool) "monotone in incident" true
    (Enum.instances_for ~n:125 ~incident:200 ~volume:200
     > Enum.instances_for ~n:125 ~incident:50 ~volume:200)

let test_level_reports_consistent () =
  let rng = Rng.create 17 in
  let g = Gen.connectivize rng (Gen.gnp rng ~n:50 ~p:0.3) in
  let r = Enum.run g (Rng.create 18) in
  List.iter
    (fun l ->
      Alcotest.(check bool) "edges positive" true (l.Enum.edges > 0);
      Alcotest.(check bool) "components positive" true (l.Enum.components > 0);
      Alcotest.(check bool) "rounds nonneg" true (l.Enum.decomposition_rounds >= 0))
    r.Enum.levels;
  let level_sum =
    List.fold_left
      (fun acc l ->
        acc + l.Enum.routing_preprocess_rounds + l.Enum.routing_query_rounds)
      0 r.Enum.levels
  in
  Alcotest.(check bool) "enumeration rounds = routing part" true
    (r.Enum.enumeration_rounds >= level_sum)

(* ---------- executed DLP ---------- *)

module Dlp = Dex_triangle.Dlp

let test_dlp_complete_and_counts () =
  for seed = 1 to 4 do
    let rng = Rng.create seed in
    let g = Gen.gnp rng ~n:40 ~p:0.4 in
    let r = Dlp.run g in
    Alcotest.(check bool) "complete" true r.Dlp.complete;
    Alcotest.(check int) "count" (Exact.count g) (List.length r.Dlp.triangles);
    Alcotest.(check bool) "rounds positive" true (r.Dlp.rounds > 0)
  done

let test_dlp_group_structure () =
  let r = Dlp.run (Gen.complete 27) in
  Alcotest.(check int) "g = n^{1/3}" 3 r.Dlp.groups;
  (* multisets of 3 groups: C(3,3)+3·2+3 = 10 *)
  Alcotest.(check int) "triples" 10 r.Dlp.triples;
  Alcotest.(check bool) "loads measured" true
    (r.Dlp.max_receive_words > 0 && r.Dlp.max_send_words > 0)

let test_dlp_group_of_balanced () =
  let counts = Array.make 4 0 in
  for v = 0 to 63 do
    let gr = Dlp.group_of ~n:64 ~groups:4 v in
    Alcotest.(check bool) "in range" true (gr >= 0 && gr < 4);
    counts.(gr) <- counts.(gr) + 1
  done;
  Array.iter (fun c -> Alcotest.(check int) "balanced blocks" 16 c) counts

let test_dlp_scaling () =
  let rng = Rng.create 23 in
  let r64 = Dlp.run (Gen.gnp rng ~n:64 ~p:0.5) in
  let r512 = Dlp.run (Gen.gnp rng ~n:512 ~p:0.5) in
  let ratio = float_of_int r512.Dlp.rounds /. float_of_int (max 1 r64.Dlp.rounds) in
  (* n^{1/3} scaling: factor 2 expected over an 8x size jump *)
  Alcotest.(check bool) (Printf.sprintf "ratio %.2f in [1,8]" ratio) true
    (ratio >= 1.0 && ratio <= 8.0)

let test_dlp_empty_graph () =
  let r = Dlp.run (Graph.empty 10) in
  Alcotest.(check (list (triple int int int))) "no triangles" [] r.Dlp.triangles;
  Alcotest.(check bool) "complete" true r.Dlp.complete

(* ---------- baselines ---------- *)

let test_trivial_rounds () =
  (* complete graph: every vertex receives (n-1)·(n-1) words over
     (n-1) edges = n-1 rounds *)
  Alcotest.(check int) "K10" 9 (Baselines.trivial_rounds (Gen.complete 10));
  (* star: center degree n-1, leaves degree 1; leaf receives n-1 words
     over one edge *)
  Alcotest.(check int) "star" 9 (Baselines.trivial_rounds (Gen.star 10));
  Alcotest.(check int) "empty" 0 (Baselines.trivial_rounds (Graph.empty 5))

let test_dlp_rounds_scale () =
  let rng = Rng.create 19 in
  let r64 = Baselines.dlp_clique_rounds (Gen.gnp rng ~n:64 ~p:0.5) (Rng.create 20) in
  let r512 = Baselines.dlp_clique_rounds (Gen.gnp rng ~n:512 ~p:0.5) (Rng.create 21) in
  Alcotest.(check bool) "positive" true (r64 >= 1);
  (* n^{1/3} scaling: 512/64 = 8 ⇒ factor ≈ 2; allow [1.2, 6] slack *)
  let ratio = float_of_int r512 /. float_of_int (max 1 r64) in
  Alcotest.(check bool) (Printf.sprintf "ratio %.2f" ratio) true (ratio > 1.2 && ratio < 6.0)

let test_reference_formulas () =
  Alcotest.(check bool) "IL ≥ LB" true
    (Baselines.izumi_le_gall_rounds ~n:1000 > Baselines.lower_bound_rounds ~n:1000);
  Alcotest.(check bool) "LB grows" true
    (Baselines.lower_bound_rounds ~n:100_000 > Baselines.lower_bound_rounds ~n:100)

let test_run_verified_complete () =
  let rng = Rng.create 67 in
  let g = Gen.connectivize rng (Gen.gnp rng ~n:40 ~p:0.25) in
  match Enum.run_verified ~attempts:3 g (Rng.create 68) with
  | Error _ -> Alcotest.fail "enumeration should certify within 3 attempts"
  | Ok o ->
    Alcotest.(check bool) "complete" true o.Enum.value.Enum.complete;
    Alcotest.(check bool) "attempts in budget" true
      (o.Enum.attempts >= 1 && o.Enum.attempts <= 3);
    Alcotest.(check bool) "rounds summed" true
      (o.Enum.rounds_total >= o.Enum.value.Enum.total_rounds);
    Alcotest.(check (list (triple int int int))) "matches naive"
      (naive_triangles g) o.Enum.value.Enum.triangles

let test_run_verified_validation () =
  let g = Gen.complete 4 in
  Alcotest.check_raises "attempts must be >= 1"
    (Invalid_argument "Expander_enum.run_verified: attempts must be >= 1")
    (fun () -> ignore (Enum.run_verified ~attempts:0 g (Rng.create 1)))

let prop_enum_complete =
  QCheck.Test.make ~name:"expander enumeration = ground truth" ~count:6
    QCheck.(pair (int_range 20 60) (int_bound 10_000))
    (fun (n, seed) ->
      let rng = Rng.create seed in
      let g = Gen.connectivize rng (Gen.gnp rng ~n ~p:0.3) in
      let r = Enum.run g (Rng.create (seed + 1)) in
      r.Enum.complete)

let () =
  Alcotest.run "triangle"
    [ ( "exact",
        [ Alcotest.test_case "known counts" `Quick test_known_counts;
          Alcotest.test_case "self loops ignored" `Quick test_self_loops_ignored;
          Alcotest.test_case "parallel edges" `Quick test_parallel_edges_no_double_count;
          Alcotest.test_case "matches naive" `Quick test_enumerate_matches_naive;
          Alcotest.test_case "edge predicate split" `Quick test_edge_pred_split ] );
      ( "expander-enum",
        [ Alcotest.test_case "dense gnp" `Quick test_enum_gnp_dense;
          Alcotest.test_case "SBM multi level" `Quick test_enum_sbm_multi_level;
          Alcotest.test_case "triangle free" `Quick test_enum_triangle_free;
          Alcotest.test_case "dumbbell" `Quick test_enum_dumbbell;
          Alcotest.test_case "power law" `Quick test_enum_power_law;
          Alcotest.test_case "cliques chain" `Quick test_enum_cliques_chain;
          Alcotest.test_case "instances formula" `Quick test_instances_formula;
          Alcotest.test_case "level reports" `Quick test_level_reports_consistent;
          Alcotest.test_case "run_verified complete" `Quick test_run_verified_complete;
          Alcotest.test_case "run_verified validation" `Quick test_run_verified_validation;
          QCheck_alcotest.to_alcotest prop_enum_complete ] );
      ( "dlp",
        [ Alcotest.test_case "complete & counts" `Quick test_dlp_complete_and_counts;
          Alcotest.test_case "group structure" `Quick test_dlp_group_structure;
          Alcotest.test_case "balanced groups" `Quick test_dlp_group_of_balanced;
          Alcotest.test_case "n^{1/3} scaling" `Quick test_dlp_scaling;
          Alcotest.test_case "empty graph" `Quick test_dlp_empty_graph ] );
      ( "baselines",
        [ Alcotest.test_case "trivial rounds" `Quick test_trivial_rounds;
          Alcotest.test_case "dlp scaling" `Quick test_dlp_rounds_scale;
          Alcotest.test_case "reference formulas" `Quick test_reference_formulas ] ) ]

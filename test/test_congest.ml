(* Tests for the CONGEST kernel: the rounds ledger, message delivery,
   the congestion discipline (failure injection), and the executed
   primitives (BFS tree, leader election, tree aggregation). *)

module Graph = Dex_graph.Graph
module Metrics = Dex_graph.Metrics
module Gen = Dex_graph.Generators
module Vertex = Dex_graph.Vertex
module Rounds = Dex_congest.Rounds
module Network = Dex_congest.Network
module Primitives = Dex_congest.Primitives
module Rng = Dex_util.Rng

let fresh_net ?word_size g =
  let ledger = Rounds.create () in
  Network.create ?word_size g ledger

(* ---------- rounds ledger ---------- *)

let test_rounds_ledger () =
  let r = Rounds.create () in
  Alcotest.(check int) "empty" 0 (Rounds.total r);
  Rounds.charge r ~label:"a" 3;
  Rounds.charge r ~label:"b" 5;
  Rounds.charge r ~label:"a" 2;
  Alcotest.(check int) "total" 10 (Rounds.total r);
  (* equal costs are ordered by label — deterministic across runs *)
  Alcotest.(check (list (pair string int))) "by phase" [ ("a", 5); ("b", 5) ]
    (Rounds.by_phase r);
  Rounds.charge r ~label:"zz" 7;
  Alcotest.(check (list (pair string int))) "by phase sorted" [ ("zz", 7); ("a", 5); ("b", 5) ]
    (Rounds.by_phase r);
  let r2 = Rounds.create () in
  Rounds.charge r2 ~label:"c" 1;
  Rounds.merge ~into:r r2;
  Alcotest.(check int) "merged" 18 (Rounds.total r);
  Rounds.reset r;
  Alcotest.(check int) "reset" 0 (Rounds.total r);
  Alcotest.check_raises "negative"
    (Dex_util.Invariant.Violation { where = "Rounds.charge"; what = "negative round count" })
    (fun () -> Rounds.charge r ~label:"x" (-1))

(* ---------- message passing ---------- *)

(* a 2-round protocol: round 1 everyone sends its id+100 to neighbors;
   round 2 everyone records the max received *)
let test_basic_exchange () =
  let g = Gen.cycle 5 in
  let net = fresh_net g in
  let step ~round ~vertex st inbox =
    let vertex = Vertex.local_int vertex in
    if round = 1 then
      let out = ref [] in
      Graph.iter_neighbors g vertex (fun u -> out := (u, [| vertex + 100 |]) :: !out);
      (st, !out)
    else begin
      let best = List.fold_left (fun acc (_, m) -> max acc m.(0)) st inbox in
      (best, [])
    end
  in
  let states = Network.run_rounds net ~label:"exchange" ~init:(fun _ -> -1) ~step 2 in
  Alcotest.(check int) "vertex 0 saw 104" 104 states.(0);
  Alcotest.(check int) "vertex 2 saw 103" 103 states.(2);
  Alcotest.(check int) "messages" 10 (Network.messages_sent net);
  Alcotest.(check int) "rounds charged" 2 (Rounds.total (Network.rounds net))

(* ---------- failure injection: the congestion discipline ---------- *)

let expect_congestion f =
  match f () with
  | exception Network.Congestion_violation _ -> ()
  | _ -> Alcotest.fail "expected Congestion_violation"

let test_rejects_non_neighbor () =
  let g = Gen.path 3 in
  let net = fresh_net g in
  expect_congestion (fun () ->
      Network.run_rounds net ~label:"bad"
        ~init:(fun _ -> ())
        ~step:(fun ~round:_ ~vertex st _ ->
          let vertex = Vertex.local_int vertex in
          if vertex = 0 then (st, [ (2, [| 1 |]) ]) else (st, []))
        1)

let test_rejects_double_send () =
  let g = Gen.path 3 in
  let net = fresh_net g in
  expect_congestion (fun () ->
      Network.run_rounds net ~label:"bad"
        ~init:(fun _ -> ())
        ~step:(fun ~round:_ ~vertex st _ ->
          let vertex = Vertex.local_int vertex in
          if vertex = 0 then (st, [ (1, [| 1 |]); (1, [| 2 |]) ]) else (st, []))
        1)

let test_rejects_oversized_message () =
  let g = Gen.path 3 in
  let net = fresh_net ~word_size:2 g in
  expect_congestion (fun () ->
      Network.run_rounds net ~label:"bad"
        ~init:(fun _ -> ())
        ~step:(fun ~round:_ ~vertex st _ ->
          let vertex = Vertex.local_int vertex in
          if vertex = 0 then (st, [ (1, [| 1; 2; 3 |]) ]) else (st, []))
        1)

let test_rejects_self_message () =
  let g = Graph.of_edges ~n:2 [ (0, 1); (0, 0) ] in
  let net = fresh_net g in
  expect_congestion (fun () ->
      Network.run_rounds net ~label:"bad"
        ~init:(fun _ -> ())
        ~step:(fun ~round:_ ~vertex st _ ->
          let vertex = Vertex.local_int vertex in
          if vertex = 0 then (st, [ (0, [| 1 |]) ]) else (st, []))
        1)

let test_run_timeout () =
  let g = Gen.path 3 in
  let net = fresh_net g in
  match
    Network.run net ~label:"never"
      ~init:(fun _ -> ())
      ~step:(fun ~round:_ ~vertex:_ st _ -> (st, []))
      ~finished:(fun _ -> false)
      ~max_rounds:10 ()
  with
  | exception Network.Round_limit_exceeded { label; max_rounds; executed; states = _ } ->
    Alcotest.(check string) "label" "never" label;
    Alcotest.(check int) "max_rounds" 10 max_rounds;
    Alcotest.(check int) "executed" 10 executed;
    (* the partial rounds were really executed: the ledger must say so *)
    Alcotest.(check int) "partial rounds charged" 10 (Rounds.total (Network.rounds net))
  | _ -> Alcotest.fail "expected Round_limit_exceeded"

(* ---------- primitives ---------- *)

let test_bfs_tree_matches_metrics () =
  let rng = Rng.create 12 in
  let g = Gen.connectivize rng (Gen.gnp rng ~n:40 ~p:0.08) in
  let net = fresh_net g in
  let tree = Primitives.bfs_tree net ~root:(Vertex.local 0) in
  let reference = Metrics.bfs_distances g 0 in
  Alcotest.(check (array int)) "depths equal BFS distances" reference tree.Primitives.depth;
  Alcotest.(check int) "root parent" 0 tree.Primitives.parent.(0);
  (* parent is one step closer *)
  Array.iteri
    (fun v d ->
      if v <> 0 && d <> max_int then
        Alcotest.(check int) "parent depth" (d - 1) tree.Primitives.depth.(tree.Primitives.parent.(v)))
    tree.Primitives.depth;
  Alcotest.(check int) "members count" 40 (Array.length tree.Primitives.members);
  Alcotest.(check bool) "rounds ≈ height" true
    (Rounds.total (Network.rounds net) >= tree.Primitives.height)

let test_bfs_tree_partial_component () =
  let g = Graph.of_edges ~n:5 [ (0, 1); (1, 2) ] in
  let net = fresh_net g in
  let tree = Primitives.bfs_tree net ~root:(Vertex.local 0) in
  Alcotest.(check int) "component size" 3 (Array.length tree.Primitives.members);
  Alcotest.(check int) "outside parent" (-1) tree.Primitives.parent.(4)

let test_leader_election () =
  let g = Graph.of_edges ~n:6 [ (3, 4); (4, 5); (1, 2) ] in
  let net = fresh_net g in
  let leaders = Primitives.elect_leader net in
  Alcotest.(check int) "comp {3,4,5}" 3 leaders.(5);
  Alcotest.(check int) "comp {1,2}" 1 leaders.(2);
  Alcotest.(check int) "isolated" 0 leaders.(0)

let test_convergecast () =
  let g = Gen.path 8 in
  let net = fresh_net g in
  let tree = Primitives.bfs_tree net ~root:(Vertex.local 0) in
  let values = Array.init 8 (fun i -> i) in
  Alcotest.(check int) "sum" 28 (Primitives.convergecast_sum net tree ~label:"sum" values);
  Alcotest.(check int) "min" 0 (Primitives.convergecast_min net tree ~label:"min" values);
  let before = Rounds.total (Network.rounds net) in
  Primitives.broadcast net tree ~label:"bcast";
  Alcotest.(check int) "broadcast cost" (before + tree.Primitives.height)
    (Rounds.total (Network.rounds net));
  let before = Rounds.total (Network.rounds net) in
  Primitives.pipelined_broadcast net tree ~label:"pipe" ~words:5;
  Alcotest.(check int) "pipelined cost" (before + tree.Primitives.height + 5)
    (Rounds.total (Network.rounds net))

let test_subnetwork () =
  let g = Gen.cycle 6 in
  let net = fresh_net g in
  let sub, mapping = Primitives.subnetwork net [| 0; 1; 2 |] in
  Alcotest.(check int) "sub size" 3 (Graph.num_vertices (Network.graph sub));
  Alcotest.(check (array int)) "mapping" [| 0; 1; 2 |] (Vertex.Map.to_array mapping);
  Alcotest.(check int) "apply translates one id" (Vertex.orig_int (Vertex.orig 2))
    (Vertex.orig_int (Vertex.Map.apply mapping (Vertex.local 2)));
  (* shared ledger *)
  Network.charge sub ~label:"x" 4;
  Alcotest.(check int) "ledger shared" 4 (Rounds.total (Network.rounds net))

let test_subnetwork_violation_reports_original_id () =
  (* an oversized message inside a subnetwork must be reported in the
     original graph's coordinates, not the subnetwork-local ones *)
  let g = Gen.cycle 6 in
  let net = fresh_net ~word_size:1 g in
  let sub, _mapping = Primitives.subnetwork net [| 3; 4; 5 |] in
  (match
     Network.run_rounds sub ~label:"bad"
       ~init:(fun _ -> ())
       ~step:(fun ~round:_ ~vertex st _ ->
         let vertex = Vertex.local_int vertex in
         if vertex = 0 then (st, [ (1, [| 1; 2 |]) ]) else (st, []))
       1
   with
  | exception Network.Congestion_violation msg ->
    (* local vertex 0 is original vertex 3 *)
    Alcotest.(check bool)
      (Printf.sprintf "mentions original id 3: %S" msg)
      true
      (String.length msg >= 8 && String.sub msg 0 8 = "vertex 3")
  | _ -> Alcotest.fail "expected Congestion_violation")

(* ---------- congested clique ---------- *)

module Clique = Dex_congest.Clique

let test_clique_exchange () =
  (* round 1: everyone sends its id to everyone; round 2: record sum *)
  let ledger = Rounds.create () in
  let clq = Clique.create ~n:5 ledger in
  let step ~round ~vertex st inbox =
    let vertex = Vertex.local_int vertex in
    if round = 1 then
      (st, List.filter_map (fun u -> if u = vertex then None else Some (u, [| vertex |]))
             (List.init 5 (fun i -> i)))
    else (List.fold_left (fun acc (_, m) -> acc + m.(0)) st inbox, [])
  in
  let states = Clique.run_rounds clq ~label:"clique" ~init:(fun _ -> 0) ~step 2 in
  (* vertex v receives all ids but its own: sum = 10 - v *)
  Array.iteri (fun v s -> Alcotest.(check int) "sum" (10 - v) s) states;
  Alcotest.(check int) "messages" 20 (Clique.messages_sent clq);
  Alcotest.(check int) "rounds" 2 (Rounds.total ledger)

let test_clique_rejects_self_and_double () =
  let expect f =
    match f () with
    | exception Clique.Congestion_violation _ -> ()
    | _ -> Alcotest.fail "expected Congestion_violation"
  in
  let mk () = Clique.create ~n:3 (Rounds.create ()) in
  expect (fun () ->
      Clique.run_rounds (mk ()) ~label:"bad" ~init:(fun _ -> ())
        ~step:(fun ~round:_ ~vertex st _ ->
          let vertex = Vertex.local_int vertex in
          if vertex = 0 then (st, [ (0, [| 1 |]) ]) else (st, []))
        1);
  expect (fun () ->
      Clique.run_rounds (mk ()) ~label:"bad" ~init:(fun _ -> ())
        ~step:(fun ~round:_ ~vertex st _ ->
          let vertex = Vertex.local_int vertex in
          if vertex = 0 then (st, [ (1, [| 1 |]); (1, [| 2 |]) ]) else (st, []))
        1);
  expect (fun () ->
      Clique.run_rounds (mk ()) ~label:"bad" ~init:(fun _ -> ())
        ~step:(fun ~round:_ ~vertex st _ ->
          let vertex = Vertex.local_int vertex in
          if vertex = 0 then (st, [ (1, [| 1; 2 |]) ]) else (st, []))
        1)

let prop_bfs_depth_eq_distance =
  QCheck.Test.make ~name:"protocol BFS = centralized BFS" ~count:40
    QCheck.(pair (int_range 2 30) (int_bound 10_000))
    (fun (n, seed) ->
      let rng = Rng.create seed in
      let g = Gen.connectivize rng (Gen.gnp rng ~n ~p:0.15) in
      let net = fresh_net g in
      let tree = Primitives.bfs_tree net ~root:(Vertex.local (seed mod n)) in
      tree.Primitives.depth = Metrics.bfs_distances g (seed mod n))

let () =
  Alcotest.run "congest"
    [ ("ledger", [ Alcotest.test_case "rounds ledger" `Quick test_rounds_ledger ]);
      ( "kernel",
        [ Alcotest.test_case "basic exchange" `Quick test_basic_exchange;
          Alcotest.test_case "rejects non-neighbor" `Quick test_rejects_non_neighbor;
          Alcotest.test_case "rejects double send" `Quick test_rejects_double_send;
          Alcotest.test_case "rejects oversized" `Quick test_rejects_oversized_message;
          Alcotest.test_case "rejects self message" `Quick test_rejects_self_message;
          Alcotest.test_case "run timeout" `Quick test_run_timeout ] );
      ( "primitives",
        [ Alcotest.test_case "bfs tree" `Quick test_bfs_tree_matches_metrics;
          Alcotest.test_case "bfs partial component" `Quick test_bfs_tree_partial_component;
          Alcotest.test_case "leader election" `Quick test_leader_election;
          Alcotest.test_case "convergecast" `Quick test_convergecast;
          Alcotest.test_case "subnetwork" `Quick test_subnetwork;
          Alcotest.test_case "subnetwork violation original ids" `Quick
            test_subnetwork_violation_reports_original_id;
          QCheck_alcotest.to_alcotest prop_bfs_depth_eq_distance ] );
      ( "clique",
        [ Alcotest.test_case "all-to-all exchange" `Quick test_clique_exchange;
          Alcotest.test_case "congestion rejections" `Quick
            test_clique_rejects_self_and_double ] ) ]

(* Tests for the random-walk toolkit: mass conservation, the
   ρ-symmetry that powers Lemma 3, truncation, sweep-cut correctness
   against brute-force metrics, mixing/gap estimates and the exact
   small-graph cut enumerator. *)

module Graph = Dex_graph.Graph
module Metrics = Dex_graph.Metrics
module Gen = Dex_graph.Generators
module Walk = Dex_spectral.Walk
module Sweep = Dex_spectral.Sweep
module Mixing = Dex_spectral.Mixing
module Exact = Dex_spectral.Exact
module Rng = Dex_util.Rng

let sparse_to_dense n p =
  let a = Array.make n 0.0 in
  Hashtbl.iter (fun v x -> a.(v) <- x) p;
  a

(* ---------- walk ---------- *)

let test_mass_conservation () =
  let rng = Rng.create 1 in
  let g = Gen.connectivize rng (Gen.gnp rng ~n:30 ~p:0.15) in
  let p = Walk.walk_from g ~src:0 ~steps:10 in
  let total = Array.fold_left ( +. ) 0.0 p in
  Alcotest.(check (float 1e-9)) "mass 1" 1.0 total

let test_sparse_dense_agree () =
  let rng = Rng.create 2 in
  let g = Gen.connectivize rng (Gen.gnp rng ~n:25 ~p:0.2) in
  let dense = ref (Array.init 25 (fun v -> if v = 3 then 1.0 else 0.0)) in
  let sparse = ref (Walk.indicator 3) in
  for _ = 1 to 8 do
    dense := Walk.step_dense g !dense;
    sparse := Walk.step_sparse g !sparse
  done;
  let sd = sparse_to_dense 25 !sparse in
  Array.iteri
    (fun v x -> Alcotest.(check (float 1e-9)) (Printf.sprintf "p(%d)" v) x sd.(v))
    !dense;
  (* the sparse support is exactly the dense positive entries *)
  let dense_support =
    Array.to_list (Array.mapi (fun v x -> (v, x)) !dense)
    |> List.filter_map (fun (v, x) -> if x > 0.0 then Some v else None)
  in
  Alcotest.(check (list int)) "support matches dense positives" dense_support
    (List.sort compare (Walk.support !sparse))

let test_self_loop_mass_returns () =
  (* one vertex with a self-loop and a pendant: loop mass stays *)
  let g = Graph.of_edges ~n:2 [ (0, 1); (0, 0) ] in
  (* deg 0 = 2 (1 loop + 1 edge); from χ_0 one lazy step:
     stay 1/2 + loop share 1/4 = 3/4 at vertex 0, 1/4 at vertex 1 *)
  let p = Walk.step_dense g [| 1.0; 0.0 |] in
  Alcotest.(check (float 1e-9)) "stay" 0.75 p.(0);
  Alcotest.(check (float 1e-9)) "move" 0.25 p.(1)

let test_stationary_fixpoint () =
  let g = Gen.cycle 12 in
  let pi = Walk.degree_distribution g in
  let p' = Walk.step_dense g pi in
  Array.iteri (fun v x -> Alcotest.(check (float 1e-9)) (string_of_int v) pi.(v) x) p'

let test_truncation () =
  let g = Gen.star 5 in
  let p = Walk.indicator 0 in
  Hashtbl.replace p 1 1e-9;
  let q = Walk.truncate g ~eps:1e-6 p in
  Alcotest.(check bool) "large kept" true (Hashtbl.mem q 0);
  Alcotest.(check bool) "small dropped" false (Hashtbl.mem q 1)

let test_truncated_below_exact () =
  let rng = Rng.create 3 in
  let g = Gen.connectivize rng (Gen.gnp rng ~n:30 ~p:0.12) in
  let exact = ref (Array.init 30 (fun v -> if v = 0 then 1.0 else 0.0)) in
  let walks = Walk.truncated_walk g ~src:0 ~eps:1e-4 ~steps:6 in
  for t = 1 to 6 do
    exact := Walk.step_dense g !exact;
    let trunc = sparse_to_dense 30 walks.(t) in
    Array.iteri
      (fun v x ->
        Alcotest.(check bool)
          (Printf.sprintf "t=%d v=%d" t v)
          true
          (x <= !exact.(v) +. 1e-12))
      trunc
  done

(* the ρ-symmetry of Lemma 3: ρ_t^v(u) = ρ_t^u(v) *)
let test_rho_symmetry () =
  let rng = Rng.create 4 in
  let g = Gen.connectivize rng (Gen.gnp rng ~n:20 ~p:0.2) in
  List.iter
    (fun (u, v, t) ->
      let pu = Walk.walk_from g ~src:u ~steps:t in
      let pv = Walk.walk_from g ~src:v ~steps:t in
      let rho_uv = pu.(v) /. float_of_int (Graph.degree g v) in
      let rho_vu = pv.(u) /. float_of_int (Graph.degree g u) in
      Alcotest.(check (float 1e-9)) (Printf.sprintf "u=%d v=%d t=%d" u v t) rho_uv rho_vu)
    [ (0, 5, 3); (2, 17, 7); (1, 1, 4); (9, 12, 11) ]

(* ---------- sweep ---------- *)

let test_sweep_cut_matches_metrics () =
  let rng = Rng.create 5 in
  let g = Gen.connectivize rng (Gen.gnp rng ~n:30 ~p:0.15) in
  let walks = Walk.truncated_walk g ~src:0 ~eps:1e-6 ~steps:5 in
  let sweep = Sweep.scan g walks.(5) in
  Array.iteri
    (fun j pref ->
      let s = Sweep.take sweep (j + 1) in
      Alcotest.(check int) "volume" (Graph.volume g s) pref.Sweep.volume;
      Alcotest.(check int) "cut" (Metrics.cut_size g s) pref.Sweep.cut;
      let c = Metrics.conductance g s in
      if Float.is_finite c then
        Alcotest.(check (float 1e-9)) "conductance" c pref.Sweep.conductance)
    sweep.Sweep.prefixes

let test_sweep_order_decreasing_rho () =
  let rng = Rng.create 6 in
  let g = Gen.connectivize rng (Gen.gnp rng ~n:30 ~p:0.15) in
  let walks = Walk.truncated_walk g ~src:0 ~eps:1e-6 ~steps:4 in
  let order = Sweep.order g walks.(4) in
  for i = 1 to Array.length order - 1 do
    let r1 = Walk.rho g walks.(4) order.(i - 1) in
    let r2 = Walk.rho g walks.(4) order.(i) in
    Alcotest.(check bool) "non-increasing" true (r1 >= r2 -. 1e-12)
  done

let test_sweep_finds_barbell_cut () =
  let g = Gen.barbell ~clique:8 ~bridge:0 in
  let walks = Walk.truncated_walk g ~src:0 ~eps:1e-9 ~steps:30 in
  match Sweep.best_cut g walks.(30) with
  | None -> Alcotest.fail "no cut found"
  | Some (sweep, j) ->
    let pref = sweep.Sweep.prefixes.(j - 1) in
    Alcotest.(check bool) "sparse" true (pref.Sweep.conductance < 0.05);
    Alcotest.(check int) "the clique side" 8 j

let test_scan_vector_orders_by_value () =
  let g = Gen.barbell ~clique:6 ~bridge:0 in
  (* a vector that is 1 on the first clique, 0 on the second: the
     sweep must find the exact clique boundary *)
  let x = Array.init 12 (fun v -> if v < 6 then 1.0 else 0.0) in
  let sweep = Sweep.scan_vector g x in
  let pref = sweep.Sweep.prefixes.(5) in
  Alcotest.(check int) "boundary cut" 1 pref.Sweep.cut;
  Alcotest.(check bool) "boundary conductance tiny" true (pref.Sweep.conductance < 0.04);
  (* all 12 prefixes measured *)
  Alcotest.(check int) "covers all vertices" 12 (Array.length sweep.Sweep.prefixes)

(* ---------- mixing and gap ---------- *)

let test_mixing_time_ordering () =
  let rng = Rng.create 7 in
  let expander = Gen.random_regular rng ~n:64 ~d:8 in
  let ring = Gen.cycle 64 in
  let t_exp = Mixing.mixing_time expander (Rng.create 8) in
  let t_ring = Mixing.mixing_time ring (Rng.create 8) in
  Alcotest.(check bool) "expander mixes faster" true (t_exp < t_ring);
  Alcotest.(check bool) "expander mixes fast" true (t_exp < 64)

let test_spectral_gap_complete_vs_ring () =
  let rng = Rng.create 9 in
  let complete = Gen.complete 16 in
  let ring = Gen.cycle 16 in
  let gap_complete, _ = Mixing.spectral_gap complete (Rng.create 1) in
  let gap_ring, _ = Mixing.spectral_gap ring (Rng.create 1) in
  ignore rng;
  Alcotest.(check bool) "complete gap larger" true (gap_complete > gap_ring);
  (* K_n lazy gap = (1 - (-1/(n-1)))/2-ish: just check it is Θ(1) *)
  Alcotest.(check bool) "complete gap big" true (gap_complete > 0.3);
  Alcotest.(check bool) "ring gap small" true (gap_ring < 0.2)

let test_second_eigenvector_splits_barbell () =
  let g = Gen.barbell ~clique:6 ~bridge:0 in
  let vec = Mixing.second_eigenvector ~iters:300 g (Rng.create 11) in
  Alcotest.(check int) "one entry per vertex" (Graph.num_vertices g) (Array.length vec);
  (* the near-Fiedler direction separates the cliques: constant sign
     within each side, opposite signs across the bridge *)
  let sgn x = x >= 0.0 in
  for v = 1 to 5 do
    Alcotest.(check bool) "left side coherent" (sgn vec.(0)) (sgn vec.(v));
    Alcotest.(check bool) "right side coherent" (sgn vec.(6)) (sgn vec.(6 + v))
  done;
  Alcotest.(check bool) "sides are separated" true (sgn vec.(0) <> sgn vec.(6))

let test_cheeger_sandwich () =
  (* gap(lazy) ≤ Φ ≤ sqrt(2·2·gap(lazy)) on graphs we can brute force *)
  let graphs =
    [ Gen.cycle 10; Gen.complete 8; Gen.barbell ~clique:5 ~bridge:0; Gen.grid 3 4 ]
  in
  List.iter
    (fun g ->
      let gap, _ = Mixing.spectral_gap ~iters:500 g (Rng.create 3) in
      let phi, _ = Exact.min_conductance g in
      Alcotest.(check bool) "lower" true (gap <= phi +. 0.02);
      Alcotest.(check bool) "upper" true (phi <= sqrt (4.0 *. Float.max 0.0 gap) +. 0.05))
    graphs

(* ---------- exact enumeration ---------- *)

let test_exact_complete_graph () =
  (* K_6: min conductance cut is the balanced 3-3 split: 9/15 = 0.6 *)
  let phi, witness = Exact.min_conductance (Gen.complete 6) in
  Alcotest.(check (float 1e-9)) "phi" 0.6 phi;
  Alcotest.(check int) "balanced witness" 3 (Array.length witness)

let test_exact_barbell () =
  let g = Gen.barbell ~clique:6 ~bridge:0 in
  let phi, witness = Exact.min_conductance g in
  Alcotest.(check int) "clique side" 6 (Array.length witness);
  Alcotest.(check bool) "tiny" true (phi < 0.04)

let test_most_balanced_sparse_cut () =
  let g = Gen.barbell ~clique:6 ~bridge:0 in
  (match Exact.most_balanced_sparse_cut g ~phi:0.05 with
  | None -> Alcotest.fail "expected a cut"
  | Some (bal, witness) ->
    Alcotest.(check (float 0.01)) "balance 1/2" 0.5 bal;
    Alcotest.(check int) "witness size" 6 (Array.length witness));
  (* no 0.01-sparse cut in K_8 *)
  Alcotest.(check bool) "complete graph has none" true
    (Exact.most_balanced_sparse_cut (Gen.complete 8) ~phi:0.01 = None)

let test_exact_too_large () =
  Alcotest.check_raises "n > 24" (Invalid_argument "Exact: graph too large for subset enumeration")
    (fun () -> ignore (Exact.min_conductance (Gen.cycle 30)))

let prop_mass_conserved_sparse =
  QCheck.Test.make ~name:"sparse step conserves mass (no truncation)" ~count:60
    QCheck.(pair (int_range 3 25) (int_bound 10_000))
    (fun (n, seed) ->
      let rng = Rng.create seed in
      let g = Gen.connectivize rng (Gen.gnp rng ~n ~p:0.2) in
      let p = ref (Walk.indicator (seed mod n)) in
      for _ = 1 to 5 do
        p := Walk.step_sparse g !p
      done;
      Float.abs (Walk.mass !p -. 1.0) < 1e-9)

let () =
  Alcotest.run "spectral"
    [ ( "walk",
        [ Alcotest.test_case "mass conservation" `Quick test_mass_conservation;
          Alcotest.test_case "sparse/dense agree" `Quick test_sparse_dense_agree;
          Alcotest.test_case "self-loop mass returns" `Quick test_self_loop_mass_returns;
          Alcotest.test_case "stationary fixpoint" `Quick test_stationary_fixpoint;
          Alcotest.test_case "truncation" `Quick test_truncation;
          Alcotest.test_case "truncated ≤ exact" `Quick test_truncated_below_exact;
          Alcotest.test_case "rho symmetry (Lemma 3)" `Quick test_rho_symmetry;
          QCheck_alcotest.to_alcotest prop_mass_conserved_sparse ] );
      ( "sweep",
        [ Alcotest.test_case "prefix stats match metrics" `Quick test_sweep_cut_matches_metrics;
          Alcotest.test_case "order decreasing" `Quick test_sweep_order_decreasing_rho;
          Alcotest.test_case "finds barbell cut" `Quick test_sweep_finds_barbell_cut;
          Alcotest.test_case "scan_vector boundary" `Quick test_scan_vector_orders_by_value ] );
      ( "mixing",
        [ Alcotest.test_case "mixing time ordering" `Quick test_mixing_time_ordering;
          Alcotest.test_case "gap: complete vs ring" `Quick test_spectral_gap_complete_vs_ring;
          Alcotest.test_case "second eigenvector splits barbell" `Quick
            test_second_eigenvector_splits_barbell;
          Alcotest.test_case "cheeger sandwich" `Quick test_cheeger_sandwich ] );
      ( "exact",
        [ Alcotest.test_case "complete graph" `Quick test_exact_complete_graph;
          Alcotest.test_case "barbell" `Quick test_exact_barbell;
          Alcotest.test_case "most balanced sparse cut" `Quick test_most_balanced_sparse_cut;
          Alcotest.test_case "too large raises" `Quick test_exact_too_large ] ) ]

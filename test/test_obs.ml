(* Tests for the observability layer: the JSON codec, trace events and
   their JSONL round-trip, span trees over real algorithm runs, the
   per-edge congestion histogram, fault-aware word accounting and the
   bench snapshot schema. *)

module Json = Dex_obs.Json
module Trace = Dex_obs.Trace
module Snapshot = Dex_obs.Snapshot
module Graph = Dex_graph.Graph
module Gen = Dex_graph.Generators
module Rounds = Dex_congest.Rounds
module Network = Dex_congest.Network
module Faults = Dex_congest.Faults
module Decomposition = Dex_decomp.Decomposition
module Las_vegas = Dex_decomp.Las_vegas
module Rng = Dex_util.Rng

(* ---------- JSON codec ---------- *)

let test_json_roundtrip () =
  let doc =
    Json.Obj
      [ ("s", Json.String "a \"quoted\" line\nwith\tescapes \\ and unicode \x01");
        ("i", Json.Int (-42));
        ("f", Json.Float 1.5);
        ("b", Json.Bool true);
        ("n", Json.Null);
        ("l", Json.List [ Json.Int 1; Json.List []; Json.Obj [] ]) ]
  in
  match Json.parse (Json.to_string doc) with
  | Error e -> Alcotest.failf "parse: %s" e
  | Ok v ->
    Alcotest.(check string) "roundtrip" (Json.to_string doc) (Json.to_string v);
    Alcotest.(check (option int)) "member" (Some (-42))
      (Option.bind (Json.member "i" v) Json.to_int)

let test_json_errors () =
  let bad s =
    match Json.parse s with
    | Ok _ -> Alcotest.failf "accepted malformed input %S" s
    | Error _ -> ()
  in
  bad "";
  bad "{";
  bad "[1,]";
  bad "{\"a\":1,}";
  bad "nul";
  bad "\"unterminated";
  bad "1 2"

(* ---------- trace events: JSONL round-trip, one per variant ---------- *)

let test_event_roundtrip () =
  let events =
    [ Trace.Span_open { id = 3; parent = -1; name = "decompose"; rounds_before = 0 };
      Trace.Span_close { id = 3; name = "decompose"; rounds = 17; wall_ns = 12345 };
      Trace.Round_tick { round = 4; messages = 10; words = 12; max_edge_load = 2; active = 7 };
      Trace.Fault { kind = "drop"; round = 2; src = 1; dst = 5 };
      Trace.Fault { kind = "crash"; round = 9; src = 3; dst = -1 };
      Trace.Retry { label = "sparse-cut"; attempt = 2; certified = false };
      Trace.Note { key = "phase"; value = "phase1" } ]
  in
  List.iter
    (fun ev ->
      let line = Trace.to_jsonl_line ev in
      match Json.parse line with
      | Error e -> Alcotest.failf "parse %S: %s" line e
      | Ok v -> (
        match Trace.event_of_json v with
        | Error e -> Alcotest.failf "decode %S: %s" line e
        | Ok ev' ->
          Alcotest.(check string) "event roundtrip" line (Trace.to_jsonl_line ev')))
    events;
  (match Json.parse "{\"ev\":\"no-such-event\"}" with
  | Error e -> Alcotest.failf "parse: %s" e
  | Ok v -> (
    match Trace.event_of_json v with
    | Ok _ -> Alcotest.fail "decoded an unknown event kind"
    | Error _ -> ()))

let test_ring_eviction () =
  let tr = Trace.create ~capacity:4 () in
  for i = 1 to 10 do
    Trace.note tr ~key:"k" ~value:(string_of_int i)
  done;
  Alcotest.(check int) "emitted" 10 (Trace.emitted tr);
  Alcotest.(check int) "dropped" 6 (Trace.dropped tr);
  let retained =
    List.map
      (function Trace.Note { value; _ } -> value | _ -> Alcotest.fail "unexpected event")
      (Trace.events tr)
  in
  Alcotest.(check (list string)) "oldest first" [ "7"; "8"; "9"; "10" ] retained

(* ---------- span tree over a real decomposition run ---------- *)

let strip_wall tree =
  (* the span structure must be deterministic; wall-clock is not *)
  let rec go (t : Rounds.tree) =
    Printf.sprintf "%s:%d:%d(%s)" t.Rounds.span t.Rounds.rounds t.Rounds.self
      (String.concat "," (List.map go t.Rounds.children))
  in
  go tree

let traced_decompose ~seed =
  let g = Gen.gnp (Rng.create 7) ~n:100 ~p:0.08 in
  let ledger = Rounds.create () in
  let tr = Trace.create () in
  Rounds.attach_trace ledger (Some tr);
  let r = Decomposition.run ~ledger ~epsilon:(1.0 /. 6.0) ~k:2 g (Rng.create seed) in
  (r, ledger, tr)

let test_span_tree_deterministic () =
  let _, l1, _ = traced_decompose ~seed:11 in
  let _, l2, _ = traced_decompose ~seed:11 in
  Alcotest.(check bool) "same structure" true
    (strip_wall (Rounds.tree l1) = strip_wall (Rounds.tree l2));
  Alcotest.(check int) "same total" (Rounds.total l1) (Rounds.total l2)

let test_tree_consistency () =
  let r, ledger, tr = traced_decompose ~seed:11 in
  let tree = Rounds.tree ledger in
  let rec leaf_sum (t : Rounds.tree) =
    t.Rounds.self + List.fold_left (fun acc c -> acc + leaf_sum c) 0 t.Rounds.children
  in
  let rec node_sum_ok (t : Rounds.tree) =
    t.Rounds.rounds
    = t.Rounds.self + List.fold_left (fun acc c -> acc + c.Rounds.rounds) 0 t.Rounds.children
    && List.for_all node_sum_ok t.Rounds.children
  in
  Alcotest.(check bool) "rounds = self + children everywhere" true (node_sum_ok tree);
  Alcotest.(check int) "leaf sum = total" (Rounds.total ledger) (leaf_sum tree);
  Alcotest.(check int) "by_phase sum = total" (Rounds.total ledger)
    (List.fold_left (fun acc (_, c) -> acc + c) 0 (Rounds.by_phase ledger));
  Alcotest.(check string) "root" "total" tree.Rounds.span;
  Alcotest.(check int) "root rounds" (Rounds.total ledger) tree.Rounds.rounds;
  (* the decomposition wraps its work in named spans, and the executed
     clustering phase leaves a charge leaf somewhere under them *)
  let rec find name (t : Rounds.tree) =
    t.Rounds.span = name || List.exists (find name) t.Rounds.children
  in
  Alcotest.(check bool) "decompose span" true (find "decompose" tree);
  Alcotest.(check bool) "phase1 span" true (find "phase1" tree);
  Alcotest.(check bool) "mpx-clustering leaf" true (find "mpx-clustering" tree);
  (* executed message traffic was accounted both in stats and the trace *)
  Alcotest.(check bool) "stats.messages > 0" true
    (r.Decomposition.stats.Decomposition.messages > 0);
  Alcotest.(check int) "trace messages = stats.messages"
    r.Decomposition.stats.Decomposition.messages (Trace.messages tr);
  Alcotest.(check int) "trace words = stats.words"
    r.Decomposition.stats.Decomposition.words (Trace.words tr)

(* ---------- per-edge congestion histogram ---------- *)

(* On a star, make each leaf v send v mod 3 + 1 rounds' worth of pings
   to the hub: spoke loads differ, so top-K ordering is observable. *)
let test_hot_edges_star () =
  let n = 8 in
  let g = Gen.star n in
  let ledger = Rounds.create () in
  let tr = Trace.create () in
  Rounds.attach_trace ledger (Some tr);
  let net = Network.create g ledger in
  ignore
    (Network.run_rounds net ~label:"star-pings"
       ~init:(fun v -> if v = 0 then 0 else (v mod 3) + 1)
       ~step:(fun ~round:_ ~vertex:v budget _inbox ->
         let v = Dex_graph.Vertex.local_int v in
         if v = 0 || budget = 0 then (budget, [])
         else (budget - 1, [ (0, [| v |]) ]))
       4);
  List.iter
    (fun v ->
      Alcotest.(check int)
        (Printf.sprintf "load of spoke %d" v)
        ((v mod 3) + 1)
        (Trace.edge_load tr (0, v)))
    [ 1; 2; 3; 4; 5; 6; 7 ];
  (* descending by load, ties broken by edge — fully deterministic *)
  Alcotest.(check (list (pair (pair int int) int)))
    "top-4"
    [ ((0, 2), 3); ((0, 5), 3); ((0, 1), 2); ((0, 4), 2) ]
    (Trace.top_edges tr 4);
  Alcotest.(check (list (pair (pair int int) int)))
    "network view agrees" (Trace.top_edges tr 4) (Network.top_edges net 4);
  Alcotest.(check int) "histogram is symmetric" (Trace.edge_load tr (0, 2))
    (Trace.edge_load tr (2, 0))

(* ---------- round ticks and word accounting ---------- *)

let flood net g rounds =
  ignore
    (Network.run_rounds net ~label:"flood"
       ~init:(fun v -> v land 1)
       ~step:(fun ~round:_ ~vertex:v st inbox ->
         let v = Dex_graph.Vertex.local_int v in
         let st = List.fold_left (fun acc (_, m) -> acc lxor m.(0)) st inbox in
         let out = ref [] in
         Graph.iter_neighbors g v (fun u -> out := (u, [| st |]) :: !out);
         (st, !out))
       rounds)

let test_round_ticks () =
  let g = Gen.cycle 16 in
  let ledger = Rounds.create () in
  let tr = Trace.create () in
  Rounds.attach_trace ledger (Some tr);
  let net = Network.create g ledger in
  flood net g 5;
  let ticks =
    List.filter_map
      (function
        | Trace.Round_tick { messages; words; max_edge_load; active; _ } ->
          Some (messages, words, max_edge_load, active)
        | _ -> None)
      (Trace.events tr)
  in
  Alcotest.(check int) "one tick per round" 5 (List.length ticks);
  Alcotest.(check int) "tick messages sum = messages_sent" (Network.messages_sent net)
    (List.fold_left (fun acc (m, _, _, _) -> acc + m) 0 ticks);
  Alcotest.(check int) "tick words sum = words_sent" (Network.words_sent net)
    (List.fold_left (fun acc (_, w, _, _) -> acc + w) 0 ticks);
  (* every vertex of the cycle sends both ways, every round *)
  List.iter
    (fun (_, _, load, active) ->
      Alcotest.(check int) "all vertices active" 16 active;
      Alcotest.(check int) "undirected edges carry both directions" 2 load)
    ticks

let test_words_sent_fault_aware () =
  let g = Gen.cycle 12 in
  let run spec =
    let ledger = Rounds.create () in
    let faults = Option.map Faults.create spec in
    let net = Network.create ?faults g ledger in
    flood net g 4;
    (net, faults)
  in
  let clean, _ = run None in
  Alcotest.(check int) "clean: words = messages (word_size 1)"
    (Network.messages_sent clean) (Network.words_sent clean);
  (* duplicate everything: twice the deliveries, twice the words *)
  let doubled, _ = run (Some (Faults.lossy ~duplicate:1.0 ~drop:0.0 ())) in
  Alcotest.(check int) "duplicate=1: words doubled"
    (2 * Network.words_sent clean)
    (Network.words_sent doubled);
  (* drop everything: nothing delivered, nothing charged *)
  let silenced, faults = run (Some (Faults.lossy ~drop:1.0 ())) in
  Alcotest.(check int) "drop=1: no words" 0 (Network.words_sent silenced);
  Alcotest.(check bool) "drops recorded" true
    (match faults with Some f -> Faults.drops f > 0 | None -> false)

let test_fault_events_bridged () =
  let g = Gen.cycle 10 in
  let ledger = Rounds.create () in
  let tr = Trace.create () in
  Rounds.attach_trace ledger (Some tr);
  let faults = Faults.create (Faults.lossy ~drop:0.5 ~seed:3 ()) in
  let net = Network.create ~faults g ledger in
  flood net g 4;
  Alcotest.(check bool) "schedule dropped something" true (Faults.drops faults > 0);
  Alcotest.(check int) "every fault reached the trace" (Faults.drops faults)
    (Trace.faults tr);
  let kinds =
    List.filter_map
      (function Trace.Fault { kind; _ } -> Some kind | _ -> None)
      (Trace.events tr)
  in
  Alcotest.(check bool) "drop events present" true (List.mem "drop" kinds)

(* ---------- retries ---------- *)

let test_retry_events () =
  let g = Gen.gnp (Rng.create 5) ~n:60 ~p:0.1 in
  let ledger = Rounds.create () in
  let tr = Trace.create () in
  Rounds.attach_trace ledger (Some tr);
  let outcome = Las_vegas.decompose ~ledger ~epsilon:(1.0 /. 6.0) ~k:2 g (Rng.create 1) in
  Alcotest.(check bool) "certified" true (Result.is_ok outcome);
  let retries =
    List.filter_map
      (function Trace.Retry { label; certified; _ } -> Some (label, certified) | _ -> None)
      (Trace.events tr)
  in
  Alcotest.(check bool) "at least one retry event" true (List.length retries >= 1);
  Alcotest.(check int) "retry counter matches" (List.length retries) (Trace.retries tr);
  Alcotest.(check bool) "labelled decompose" true
    (List.for_all (fun (l, _) -> l = "decompose") retries);
  Alcotest.(check bool) "last attempt certified" true
    (snd (List.nth retries (List.length retries - 1)))

(* ---------- JSONL sink round-trip over a real run ---------- *)

let test_jsonl_sink_roundtrip () =
  let path = Filename.temp_file "dex_trace" ".jsonl" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      let g = Gen.cycle 8 in
      let ledger = Rounds.create () in
      let sink = open_out path in
      let tr = Trace.create ~sink () in
      Rounds.attach_trace ledger (Some tr);
      let net = Network.create g ledger in
      Rounds.with_span ledger "outer" (fun () -> flood net g 3);
      close_out sink;
      let ic = open_in path in
      let lines = ref [] in
      (try
         while true do
           lines := input_line ic :: !lines
         done
       with End_of_file -> close_in ic);
      let lines = List.rev !lines in
      Alcotest.(check int) "every emitted event was sunk" (Trace.emitted tr)
        (List.length lines);
      let decoded =
        List.map
          (fun line ->
            match Json.parse line with
            | Error e -> Alcotest.failf "parse %S: %s" line e
            | Ok v -> (
              match Trace.event_of_json v with
              | Error e -> Alcotest.failf "decode %S: %s" line e
              | Ok ev -> ev))
          lines
      in
      Alcotest.(check bool) "sink and ring agree" true (decoded = Trace.events tr))

(* ---------- bench snapshot schema ---------- *)

let sample_sections () =
  [ { Snapshot.id = "e1";
      title = "sample";
      tables =
        [ Snapshot.table ~title:"t" ~headers:[ "n"; "m"; "rounds" ]
            [ [ "8"; "12"; "40" ]; [ "16" ] ] ];
      notes = [ "a note" ] } ]

let test_clock_freeze () =
  Fun.protect ~finally:Dex_obs.Clock.unfreeze
    (fun () ->
      Dex_obs.Clock.freeze 42;
      Alcotest.(check int) "frozen" 42 (Dex_obs.Clock.now_ns ());
      Alcotest.(check int) "still frozen" 42 (Dex_obs.Clock.now_ns ()))

let test_json_buffer_and_float () =
  let v = Json.Obj [ ("a", Json.Int 3); ("b", Json.Float 0.5) ] in
  let buf = Buffer.create 16 in
  Json.to_buffer buf v;
  Alcotest.(check string) "to_buffer agrees with to_string"
    (Json.to_string v) (Buffer.contents buf);
  Alcotest.(check bool) "to_float on Float" true (Json.to_float (Json.Float 0.5) = Some 0.5);
  Alcotest.(check bool) "to_float widens Int" true (Json.to_float (Json.Int 3) = Some 3.0);
  Alcotest.(check bool) "to_float rejects strings" true
    (Json.to_float (Json.String "x") = None)

let test_set_sink_and_event_json () =
  let path = Filename.temp_file "dex_trace" ".jsonl" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      let tr = Trace.create () in
      Trace.emit tr (Trace.Note { key = "before"; value = "unsunk" });
      let sink = open_out path in
      Trace.set_sink tr (Some sink);
      let ev = Trace.Note { key = "after"; value = "sunk" } in
      Trace.emit tr ev;
      Trace.set_sink tr None;
      Trace.emit tr (Trace.Note { key = "detached"; value = "unsunk" });
      close_out sink;
      let ic = open_in path in
      let line = input_line ic in
      let at_eof = try ignore (input_line ic); false with End_of_file -> true in
      close_in ic;
      Alcotest.(check bool) "exactly one line sunk" true at_eof;
      Alcotest.(check string) "the sunk event, via event_to_json"
        (Json.to_string (Trace.event_to_json ev)) line;
      Alcotest.(check int) "ring kept all three" 3 (Trace.emitted tr))

let test_snapshot_version_embedded () =
  let doc = Snapshot.to_json ~mode:"quick" (sample_sections ()) in
  match Json.member "schema" doc with
  | Some (Json.String v) -> Alcotest.(check string) "schema id" Snapshot.version v
  | _ -> Alcotest.fail "snapshot lacks a schema field"

let test_snapshot_valid () =
  let doc = Snapshot.to_json ~mode:"quick" (sample_sections ()) in
  (match Snapshot.validate doc with
  | Ok () -> ()
  | Error e -> Alcotest.failf "validate: %s" e);
  (* short rows were padded to header arity *)
  let rendered = Json.to_string doc in
  (match Json.parse rendered with
  | Error e -> Alcotest.failf "reparse: %s" e
  | Ok v -> (
    match Snapshot.validate v with
    | Ok () -> ()
    | Error e -> Alcotest.failf "validate after roundtrip: %s" e));
  Alcotest.(check bool) "padded row survives" true
    (let sub = "[\"16\",\"\",\"\"]" in
     let n = String.length rendered and k = String.length sub in
     let rec scan i = i + k <= n && (String.sub rendered i k = sub || scan (i + 1)) in
     scan 0)

let test_snapshot_invalid () =
  let reject doc msg =
    match Snapshot.validate doc with
    | Ok () -> Alcotest.failf "accepted invalid snapshot: %s" msg
    | Error _ -> ()
  in
  let good = Snapshot.to_json ~mode:"quick" (sample_sections ()) in
  reject Json.Null "not an object";
  reject (Json.Obj [ ("schema", Json.String "other/1") ]) "wrong schema tag";
  (match good with
  | Json.Obj fields ->
    reject
      (Json.Obj (List.filter (fun (k, _) -> k <> "mode") fields))
      "missing mode";
    reject
      (Json.Obj
         (List.map
            (fun (k, v) -> if k = "sections" then (k, Json.Int 3) else (k, v))
            fields))
      "sections not a list"
  | _ -> Alcotest.fail "snapshot is not an object");
  (* a row wider than the header list must be rejected at construction *)
  match Snapshot.table ~title:"t" ~headers:[ "a" ] [ [ "1"; "2" ] ] with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "accepted a row wider than the headers"

let () =
  Alcotest.run "obs"
    [ ( "json",
        [ Alcotest.test_case "roundtrip" `Quick test_json_roundtrip;
          Alcotest.test_case "buffer & float accessors" `Quick test_json_buffer_and_float;
          Alcotest.test_case "malformed input" `Quick test_json_errors ] );
      ( "trace",
        [ Alcotest.test_case "event jsonl roundtrip" `Quick test_event_roundtrip;
          Alcotest.test_case "ring eviction" `Quick test_ring_eviction;
          Alcotest.test_case "jsonl sink roundtrip" `Quick test_jsonl_sink_roundtrip;
          Alcotest.test_case "set_sink attach/detach" `Quick test_set_sink_and_event_json ] );
      ( "clock",
        [ Alcotest.test_case "freeze/unfreeze" `Quick test_clock_freeze ] );
      ( "spans",
        [ Alcotest.test_case "deterministic under fixed seed" `Quick
            test_span_tree_deterministic;
          Alcotest.test_case "tree/by_phase/total consistency" `Quick
            test_tree_consistency ] );
      ( "congestion",
        [ Alcotest.test_case "hot edges on a star" `Quick test_hot_edges_star;
          Alcotest.test_case "round ticks" `Quick test_round_ticks ] );
      ( "faults",
        [ Alcotest.test_case "words_sent is fault-aware" `Quick
            test_words_sent_fault_aware;
          Alcotest.test_case "fault events bridged" `Quick test_fault_events_bridged ] );
      ( "retries",
        [ Alcotest.test_case "las vegas retry events" `Quick test_retry_events ] );
      ( "snapshot",
        [ Alcotest.test_case "valid document" `Quick test_snapshot_valid;
          Alcotest.test_case "schema id embedded" `Quick test_snapshot_version_embedded;
          Alcotest.test_case "invalid documents rejected" `Quick test_snapshot_invalid ] ) ]

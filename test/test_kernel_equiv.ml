(* Cross-kernel equivalence suite: the Legacy, Staged and Parallel
   executors must be observationally identical on the list API —
   same per-round state digests, same round counts, same message/word
   ledgers, same fault traces — and the arena-backed cursor driver
   must agree with itself across executors and with the graph-theoretic
   ground truth. This is the oracle the perf work is certified
   against (ISSUE 5 acceptance: bit-identical Conformance digests). *)

module Graph = Dex_graph.Graph
module Generators = Dex_graph.Generators
module Metrics = Dex_graph.Metrics
module Vertex = Dex_graph.Vertex
module Rng = Dex_util.Rng
module Network = Dex_congest.Network
module Faults = Dex_congest.Faults
module Rounds = Dex_congest.Rounds
module Primitives = Dex_congest.Primitives
module Conformance = Dex_congest.Conformance
module Arena = Dex_congest.Arena

let seeds = [ 1; 2; 3 ]

let executors =
  [ ("legacy", Network.Legacy);
    ("staged", Network.Staged);
    ("parallel-2", Network.Parallel 2) ]

(* ---------- observation record ---------- *)

type obs = {
  final_digest : int;
  per_round : (int * int) list; (* (round, state digest) after each round *)
  rounds : int;
  messages : int;
  words : int;
  fault_log : string list;
  drops : int;
  dups : int;
}

let fault_repr = function
  | Faults.Drop { round; src; dst } -> Printf.sprintf "drop@%d:%d->%d" round src dst
  | Faults.Duplicate { round; src; dst } ->
    Printf.sprintf "dup@%d:%d->%d" round src dst
  | Faults.Link_down { round; u; v } -> Printf.sprintf "link@%d:%d-%d" round u v
  | Faults.Crash { round; vertex } -> Printf.sprintf "crash@%d:%d" round vertex

let observe ?spec ~executor g runner =
  let faults = Option.map Faults.create spec in
  (* shard_min 0: let [Parallel _] spawn domains even on these small
     graphs, so the sharded Phase A is what the suite actually checks *)
  let net = Network.create ?faults ~executor ~shard_min:0 g (Rounds.create ()) in
  let per_round = ref [] in
  let on_round round states =
    per_round := (round, Conformance.default_digest states) :: !per_round
  in
  let states, rounds = runner g net on_round in
  { final_digest = Conformance.default_digest states;
    per_round = List.rev !per_round;
    rounds;
    messages = Network.messages_sent net;
    words = Network.words_sent net;
    fault_log =
      (match faults with Some f -> List.map fault_repr (Faults.trace f) | None -> []);
    drops = (match faults with Some f -> Faults.drops f | None -> 0);
    dups = (match faults with Some f -> Faults.duplicates f | None -> 0) }

let check_same name base o =
  Alcotest.(check int) (name ^ " rounds") base.rounds o.rounds;
  Alcotest.(check int) (name ^ " final digest") base.final_digest o.final_digest;
  Alcotest.(check (list (pair int int)))
    (name ^ " per-round digests") base.per_round o.per_round;
  Alcotest.(check int) (name ^ " messages") base.messages o.messages;
  Alcotest.(check int) (name ^ " words") base.words o.words;
  Alcotest.(check (list string)) (name ^ " fault trace") base.fault_log o.fault_log;
  Alcotest.(check int) (name ^ " drops") base.drops o.drops;
  Alcotest.(check int) (name ^ " duplicates") base.dups o.dups

let equivalent ~workload ?spec make_graph runner () =
  List.iter
    (fun seed ->
      let g = make_graph seed in
      let spec = Option.map (fun f -> f seed) spec in
      let base = observe ?spec ~executor:Network.Legacy g runner in
      List.iter
        (fun (ename, e) ->
          let o = observe ?spec ~executor:e g runner in
          check_same (Printf.sprintf "%s seed %d %s" workload seed ename) base o)
        executors)
    seeds

(* ---------- list-API workloads ---------- *)

let bfs_runner g net on_round =
  let init v = if v = 0 then (0, 0, true) else (max_int, -1, false) in
  let step ~round:_ ~vertex st inbox =
    let v = Vertex.local_int vertex in
    let dist, par, pending = st in
    let dist, par, pending =
      if dist = max_int then
        List.fold_left
          (fun (d0, p0, pend) (sender, (msg : int array)) ->
            let d = msg.(0) + 1 in
            if d < d0 then (d, sender, true) else (d0, p0, pend))
          (dist, par, pending) inbox
      else (dist, par, pending)
    in
    if pending then begin
      let out = ref [] in
      Graph.iter_neighbors g v (fun u -> out := (u, [| dist |]) :: !out);
      ((dist, par, false), !out)
    end
    else ((dist, par, false), [])
  in
  let finished states = Array.for_all (fun (_, _, p) -> not p) states in
  Network.run net ~label:"bfs" ~init ~step ~finished ~on_round ()

let leader_runner g net on_round =
  let init v = (v, true) in
  let step ~round:_ ~vertex st inbox =
    let v = Vertex.local_int vertex in
    let best0, fresh = st in
    let best =
      List.fold_left (fun acc (_, (msg : int array)) -> min acc msg.(0)) best0 inbox
    in
    if best < best0 || fresh then begin
      let out = ref [] in
      Graph.iter_neighbors g v (fun u -> out := (u, [| best |]) :: !out);
      ((best, false), !out)
    end
    else ((best, false), [])
  in
  let prev = ref [||] in
  let finished states =
    let snap = Array.map fst states in
    let same = !prev <> [||] && snap = !prev in
    prev := snap;
    same
  in
  Network.run net ~label:"leader" ~init ~step ~finished ~on_round ()

(* constant traffic for ten rounds, so drop/duplicate coins and the
   crash/link schedule all get exercised on every executor *)
let gossip_runner g net on_round =
  let init v = v in
  let step ~round:_ ~vertex st inbox =
    let v = Vertex.local_int vertex in
    let st =
      List.fold_left (fun acc (_, (msg : int array)) -> min acc msg.(0)) st inbox
    in
    let out = ref [] in
    Graph.iter_neighbors g v (fun u -> out := (u, [| st |]) :: !out);
    (st, !out)
  in
  let states = Network.run_rounds net ~label:"gossip" ~init ~step ~on_round 10 in
  (states, 10)

let gnp_graph seed = Generators.gnp (Rng.create seed) ~n:40 ~p:0.12

(* cycles always contain edge (1, 2) and vertex 3, which the fault
   schedule below targets (same shape as test_faults.ml) *)
let cycle_graph seed = Generators.cycle (16 + seed)

let fault_spec seed =
  { (Faults.lossy ~drop:0.15 ~duplicate:0.05 ~seed ()) with
    Faults.link_failures = [ ((1, 2), 1) ];
    Faults.crashes = [ (3, 2) ] }

let test_bfs_equivalent = equivalent ~workload:"bfs" gnp_graph bfs_runner

let test_leader_equivalent = equivalent ~workload:"leader" gnp_graph leader_runner

let test_faulty_gossip_equivalent =
  equivalent ~workload:"gossip" ~spec:fault_spec cycle_graph gossip_runner

(* ---------- cursor API across executors ---------- *)

let bfs_tree_obs ~executor g =
  let net = Network.create ~executor ~shard_min:0 g (Rounds.create ()) in
  let tree = Primitives.bfs_tree net ~root:(Vertex.local 0) in
  let rounds = List.assoc "bfs" (Rounds.by_phase (Network.rounds net)) in
  (tree, rounds, Network.messages_sent net, Network.words_sent net)

let test_cursor_bfs_across_executors () =
  List.iter
    (fun seed ->
      let g = gnp_graph seed in
      let base, rounds, msgs, words = bfs_tree_obs ~executor:Network.Legacy g in
      let truth = Metrics.bfs_distances g 0 in
      Array.iteri
        (fun v d ->
          Alcotest.(check int) (Printf.sprintf "depth %d vs bfs" v) truth.(v) d)
        base.Primitives.depth;
      List.iter
        (fun (ename, e) ->
          let t, r, m, w = bfs_tree_obs ~executor:e g in
          let name what = Printf.sprintf "bfs_tree seed %d %s %s" seed ename what in
          Alcotest.(check (array int)) (name "depths") base.Primitives.depth
            t.Primitives.depth;
          Alcotest.(check (array int)) (name "members") base.Primitives.members
            t.Primitives.members;
          Alcotest.(check int) (name "height") base.Primitives.height t.Primitives.height;
          Alcotest.(check int) (name "rounds") rounds r;
          Alcotest.(check int) (name "messages") msgs m;
          Alcotest.(check int) (name "words") words w)
        executors)
    seeds

let test_cursor_leader_across_executors () =
  List.iter
    (fun seed ->
      let g = gnp_graph seed in
      let run e =
        let net = Network.create ~executor:e ~shard_min:0 g (Rounds.create ()) in
        (Primitives.elect_leader net, Network.messages_sent net)
      in
      let base, base_msgs = run Network.Legacy in
      List.iter
        (fun (ename, e) ->
          let leaders, msgs = run e in
          Alcotest.(check (array int))
            (Printf.sprintf "leaders seed %d %s" seed ename)
            base leaders;
          Alcotest.(check int)
            (Printf.sprintf "leader messages seed %d %s" seed ename)
            base_msgs msgs)
        executors)
    seeds

(* ---------- arena direct coverage ---------- *)

let test_arena_cursor_surface () =
  let g = Generators.cycle 6 in
  let a = Arena.create ~word_size:2 g in
  Alcotest.(check int) "word size" 2 (Arena.word_size a);
  Alcotest.(check int) "one slot per directed edge" (2 * Graph.num_plain_edges g)
    (Arena.slot_count a);
  let net = Network.create ~word_size:2 ~executor:Network.Staged g (Rounds.create ()) in
  (match Network.executor net with
  | Network.Staged -> ()
  | Network.Legacy | Network.Parallel _ -> Alcotest.fail "executor not threaded");
  (* round 1: every vertex sends a two-word message to both cycle
     neighbors and self-wakes; round 2: fold the inbox through every
     cursor accessor so the shim and the zero-alloc path are both
     exercised and must agree *)
  let step ~round ~vertex st ib ob =
    let v = Vertex.local_int vertex in
    if round = 1 then begin
      Graph.iter_neighbors g v (fun u ->
          Arena.Outbox.send ob ~dst:(Vertex.local u) [| u; 10 * v |]);
      Arena.Outbox.wake ob;
      st
    end
    else begin
      let count = Arena.Inbox.count ib in
      let shim = Arena.Inbox.to_list ib in
      let sum = ref 0 in
      Arena.Inbox.iter ib (fun src msg ->
          (* senders addressed us by id: msg.(0) = v, msg.(1) = 10*src *)
          sum := !sum + msg.(0) + msg.(1) - (10 * src));
      let empty = Arena.Inbox.is_empty ib in
      st + (1000 * count) + (100 * List.length shim) + !sum
      + (if empty then 1_000_000 else 0)
    end
  in
  let states, rounds =
    Network.run_active net ~label:"surface" ~init:(fun _ -> 0) ~step ()
  in
  Alcotest.(check int) "two rounds to quiescence" 2 rounds;
  Array.iteri
    (fun v st ->
      (* two deliveries, two shim entries, iter sum = 2v *)
      Alcotest.(check int) (Printf.sprintf "vertex %d" v) (2000 + 200 + (2 * v)) st)
    states

let test_wake_keeps_vertex_active () =
  let g = Generators.path 5 in
  let net = Network.create ~executor:Network.Staged g (Rounds.create ()) in
  (* nobody ever sends; vertex 0 self-wakes through round 3, so the
     run must execute exactly 4 rounds (the last one finds no wake)
     and step only vertex 0 after round 1 *)
  let step ~round ~vertex st _ib ob =
    if Vertex.local_int vertex = 0 && round <= 3 then begin
      Arena.Outbox.wake ob;
      st + 1
    end
    else st
  in
  let states, rounds =
    Network.run_active net ~label:"wake" ~init:(fun _ -> 0) ~step ()
  in
  Alcotest.(check int) "rounds" 4 rounds;
  Alcotest.(check int) "vertex 0 incremented through round 3" 3 states.(0);
  for v = 1 to 4 do
    Alcotest.(check int) (Printf.sprintf "vertex %d stepped once" v) 0 states.(v)
  done

let test_run_active_round_limit () =
  let g = Generators.cycle 5 in
  let net = Network.create ~executor:Network.Staged g (Rounds.create ()) in
  let step ~round:_ ~vertex:_ st _ib ob =
    Arena.Outbox.wake ob;
    st
  in
  match Network.run_active net ~label:"forever" ~init:(fun _ -> 0) ~step ~max_rounds:7 ()
  with
  | exception Network.Round_limit_exceeded { executed; max_rounds; _ } ->
    Alcotest.(check int) "executed" 7 executed;
    Alcotest.(check int) "limit" 7 max_rounds
  | _ -> Alcotest.fail "expected Round_limit_exceeded"

let test_cursor_congestion_violation () =
  let g = Generators.path 4 in
  let net = Network.create ~executor:Network.Staged g (Rounds.create ()) in
  (* vertex 0's only neighbor is 1: sending to 3 must raise the same
     exception, with the same wording, as the legacy validator *)
  let step ~round:_ ~vertex st _ib ob =
    if Vertex.local_int vertex = 0 then Arena.Outbox.send1 ob ~dst:(Vertex.local 3) 7;
    st
  in
  match Network.run_active net ~label:"bad" ~init:(fun _ -> 0) ~step () with
  | exception Network.Congestion_violation msg ->
    Alcotest.(check string) "message" "vertex 0: 3 is not a neighbor" msg
  | _ -> Alcotest.fail "expected Congestion_violation"

let () =
  Alcotest.run "kernel-equiv"
    [ ( "list-api",
        [ Alcotest.test_case "bfs" `Quick test_bfs_equivalent;
          Alcotest.test_case "leader" `Quick test_leader_equivalent;
          Alcotest.test_case "faulty gossip" `Quick test_faulty_gossip_equivalent ] );
      ( "cursor-api",
        [ Alcotest.test_case "bfs tree" `Quick test_cursor_bfs_across_executors;
          Alcotest.test_case "leader" `Quick test_cursor_leader_across_executors ] );
      ( "arena",
        [ Alcotest.test_case "cursor surface" `Quick test_arena_cursor_surface;
          Alcotest.test_case "wake" `Quick test_wake_keeps_vertex_active;
          Alcotest.test_case "round limit" `Quick test_run_active_round_limit;
          Alcotest.test_case "violation" `Quick test_cursor_congestion_violation ] ) ]

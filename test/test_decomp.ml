(* Tests for the (ε, φ)-expander decomposition (Theorem 1): the
   parameter schedule, end-to-end quality on planted instances, the
   verification report, and the CPZ'19 baseline with its
   low-arboricity leftover. *)

module Graph = Dex_graph.Graph
module Metrics = Dex_graph.Metrics
module Gen = Dex_graph.Generators
module Params = Dex_sparsecut.Params
module Schedule = Dex_decomp.Schedule
module D = Dex_decomp.Decomposition
module Verify = Dex_decomp.Verify
module Cpz = Dex_decomp.Cpz_baseline
module Rng = Dex_util.Rng

(* ---------- schedule ---------- *)

let test_schedule_ladder_decreasing () =
  let g = Gen.complete 20 in
  let s = Schedule.make ~epsilon:0.2 ~k:3 g in
  Alcotest.(check int) "length" 4 (Array.length s.Schedule.phi);
  for i = 1 to 3 do
    Alcotest.(check bool) "strictly ordered" true (s.Schedule.phi.(i) <= s.Schedule.phi.(i - 1))
  done;
  Alcotest.(check (float 1e-12)) "phi_final" s.Schedule.phi.(3) (Schedule.phi_final s)

let test_schedule_depth_and_beta () =
  let g = Gen.complete 30 in
  let s = Schedule.make ~epsilon:0.2 ~k:2 g in
  (* d is the smallest integer with (1-ε/12)^d·2·C(n,2) < 1 *)
  let shrink = 1.0 -. (0.2 /. 12.0) in
  Alcotest.(check bool) "d sufficient" true
    ((shrink ** float_of_int s.Schedule.d) *. (30.0 *. 29.0) < 1.0);
  Alcotest.(check bool) "d minimal-ish" true
    ((shrink ** float_of_int (s.Schedule.d - 2)) *. (30.0 *. 29.0) >= 1.0);
  Alcotest.(check (float 1e-12)) "beta = eps/(3d)" (0.2 /. 3.0 /. float_of_int s.Schedule.d)
    s.Schedule.beta

let test_schedule_theory_ladder_collapses () =
  let g = Gen.complete 40 in
  let s = Schedule.make ~preset:Params.Theory ~epsilon:0.2 ~k:2 g in
  (* doubly exponential collapse: φ_2 ≪ φ_1 ≪ φ_0 *)
  Alcotest.(check bool) "phi1 < phi0 / 10" true (s.Schedule.phi.(1) < s.Schedule.phi.(0) /. 10.0);
  Alcotest.(check bool) "phi2 < phi1 / 10" true (s.Schedule.phi.(2) < s.Schedule.phi.(1) /. 10.0)

let test_schedule_validation () =
  let g = Gen.complete 5 in
  Alcotest.check_raises "epsilon"
    (Dex_util.Invariant.Violation { where = "Schedule.make"; what = "epsilon in (0,1)" })
    (fun () -> ignore (Schedule.make ~epsilon:1.5 ~k:1 g));
  Alcotest.check_raises "k"
    (Dex_util.Invariant.Violation { where = "Schedule.make"; what = "k >= 1" }) (fun () ->
      ignore (Schedule.make ~epsilon:0.5 ~k:0 g))

let test_h_of_presets () =
  Alcotest.(check (float 1e-12)) "practical h = 3θ" 0.3
    (Schedule.h_of ~preset:Params.Practical ~n:100 0.1);
  Alcotest.(check bool) "theory h larger" true
    (Schedule.h_of ~preset:Params.Theory ~n:100 0.1 > 1.0)

(* ---------- decomposition ---------- *)

let decompose ?(epsilon = 1.0 /. 6.0) ?(k = 2) ~seed g =
  D.run ~epsilon ~k g (Rng.create seed)

let test_dumbbell_two_parts () =
  let rng = Rng.create 100 in
  let g = Gen.dumbbell rng ~n1:60 ~n2:60 ~d:6 ~bridges:2 in
  let r = decompose ~seed:1 g in
  Metrics.check_partition g r.D.parts;
  (* the planted split must appear; the nearly-balanced cut may shave
     off a few extra vertices as singleton parts (still a valid
     decomposition), so assert the two big parts rather than exactly 2 *)
  let sizes = List.map Array.length r.D.parts |> List.sort compare |> List.rev in
  (match sizes with
  | a :: b :: rest ->
    Alcotest.(check bool) "two big sides" true (a >= 55 && b >= 55);
    Alcotest.(check bool) "only small extras" true (List.for_all (fun s -> s <= 3) rest)
  | _ -> Alcotest.fail "expected at least two parts");
  Alcotest.(check bool) "tiny removal" true (r.D.edge_fraction_removed < 0.05)

let test_sbm_block_recovery () =
  let rng = Rng.create 101 in
  let g = Gen.planted_partition rng ~parts:4 ~size:50 ~p_in:0.35 ~p_out:0.01 in
  let g = Gen.connectivize rng g in
  let r = decompose ~epsilon:0.3 ~seed:2 g in
  Alcotest.(check int) "four parts" 4 (List.length r.D.parts);
  (* each part should be essentially one planted block *)
  List.iter
    (fun part ->
      let counts = Array.make 4 0 in
      Array.iter (fun v -> counts.(v / 50) <- counts.(v / 50) + 1) part;
      let best = Array.fold_left max 0 counts in
      Alcotest.(check bool) "block purity ≥ 90%" true
        (10 * best >= 9 * Array.length part))
    r.D.parts;
  Alcotest.(check bool) "epsilon respected" true (r.D.edge_fraction_removed <= 0.3)

let test_expander_stays_whole () =
  let rng = Rng.create 102 in
  let g = Gen.random_regular rng ~n:150 ~d:8 in
  let r = decompose ~seed:3 g in
  Alcotest.(check int) "one part" 1 (List.length r.D.parts);
  Alcotest.(check (float 1e-9)) "nothing removed" 0.0 r.D.edge_fraction_removed

let test_decomposition_determinism () =
  let rng = Rng.create 103 in
  let g = Gen.dumbbell rng ~n1:40 ~n2:40 ~d:4 ~bridges:1 in
  let r1 = decompose ~seed:7 g and r2 = decompose ~seed:7 g in
  Alcotest.(check int) "same parts count" (List.length r1.D.parts) (List.length r2.D.parts);
  Alcotest.(check (array int)) "same assignment" r1.D.part_of r2.D.part_of;
  Alcotest.(check int) "same rounds" r1.D.stats.D.rounds r2.D.stats.D.rounds

let test_disconnected_input () =
  let g = Graph.of_edges ~n:8 [ (0, 1); (1, 2); (2, 0); (4, 5); (5, 6); (6, 4) ] in
  let r = decompose ~seed:4 g in
  Metrics.check_partition g r.D.parts;
  (* two triangles and two isolated vertices: at least 4 parts *)
  Alcotest.(check bool) "≥ 4 parts" true (List.length r.D.parts >= 4);
  Alcotest.(check (float 1e-9)) "nothing removed" 0.0 r.D.edge_fraction_removed

let test_removed_edges_match_fraction () =
  let rng = Rng.create 104 in
  let g = Gen.planted_partition rng ~parts:3 ~size:40 ~p_in:0.35 ~p_out:0.015 in
  let g = Gen.connectivize rng g in
  let r = decompose ~epsilon:0.3 ~seed:5 g in
  let m = Graph.num_edges g in
  let ledger = r.D.stats.D.removals in
  let total = ledger.D.remove1 + ledger.D.remove2 + ledger.D.remove3 in
  Alcotest.(check (float 1e-9)) "ledger consistent"
    (float_of_int total /. float_of_int m)
    r.D.edge_fraction_removed;
  Alcotest.(check int) "removed list matches ledger" total (List.length r.D.removed_edges)

let test_verify_report () =
  let rng = Rng.create 105 in
  let g = Gen.dumbbell rng ~n1:50 ~n2:50 ~d:6 ~bridges:1 in
  let r = decompose ~seed:6 g in
  let report = Verify.check g r (Rng.create 60) in
  Alcotest.(check bool) "is partition" true report.Verify.is_partition;
  Alcotest.(check bool) "epsilon ok" true report.Verify.epsilon_ok;
  Alcotest.(check bool) "phi ok" true report.Verify.phi_ok;
  Alcotest.(check int) "per-part reports" (List.length r.D.parts)
    (List.length report.Verify.parts)

let test_part_members () =
  let rng = Rng.create 106 in
  let g = Gen.dumbbell rng ~n1:30 ~n2:30 ~d:4 ~bridges:1 in
  let r = decompose ~seed:8 g in
  for v = 0 to Graph.num_vertices g - 1 do
    let part = D.part_members r v in
    Alcotest.(check bool) "v in its own part" true (Array.exists (fun u -> u = v) part)
  done

let test_warted_expander_phase2 () =
  (* the Phase-2 showcase: an expander with small dangling cliques —
     the warts must be carved out (Remove-3, becoming singletons)
     while the expander body stays in one piece *)
  let rng = Rng.create 109 in
  let base = Gen.random_regular rng ~n:256 ~d:8 in
  let g = Gen.attach_warts rng base ~warts:8 ~size:6 in
  let r = D.run ~epsilon:0.5 ~k:1 g (Rng.create 257) in
  Metrics.check_partition g r.D.parts;
  let sizes = List.map Array.length r.D.parts in
  let largest = List.fold_left max 0 sizes in
  Alcotest.(check bool) "expander body survives" true (largest >= 250);
  Alcotest.(check bool) "epsilon respected" true (r.D.edge_fraction_removed <= 0.5);
  (* warts must be separated from the body — either carved to
     singletons by Phase 2 (Remove-3) or split off as 6-clique parts
     by Phase 1; both are valid (ε, φ) outputs *)
  let wart_parts = List.length (List.filter (fun s -> s <= 6) sizes) in
  Alcotest.(check bool) "warts separated" true (wart_parts >= 6);
  List.iter
    (fun s ->
      Alcotest.(check bool) "no mid-size fragments" true (s <= 6 || s >= 250))
    sizes

(* ---------- CPZ baseline ---------- *)

let test_cpz_leftover_arboricity () =
  let rng = Rng.create 107 in
  (* power-law graph: plenty of low-degree vertices to peel *)
  let g = Gen.chung_lu rng ~n:200 ~exponent:2.5 ~avg_degree:8.0 in
  let g = Gen.connectivize rng g in
  let delta = 0.4 in
  let r = Cpz.run ~delta ~epsilon:(1.0 /. 6.0) g (Rng.create 70) in
  let threshold = int_of_float (Float.ceil (200.0 ** delta)) in
  Alcotest.(check bool)
    (Printf.sprintf "arboricity %d ≤ n^δ = %d" r.Cpz.leftover_arboricity threshold)
    true
    (r.Cpz.leftover_arboricity <= threshold);
  (* parts + leftover partition V *)
  Metrics.check_partition g (r.Cpz.leftover :: r.Cpz.parts);
  Alcotest.(check bool) "leftover nonempty on power law" true
    (Array.length r.Cpz.leftover > 0)

let test_cpz_no_leftover_on_dense_expander () =
  let rng = Rng.create 108 in
  let g = Gen.random_regular rng ~n:100 ~d:16 in
  (* n^δ = 10 < 16: nothing peels *)
  let r = Cpz.run ~delta:0.5 ~epsilon:(1.0 /. 6.0) g (Rng.create 71) in
  Alcotest.(check int) "no leftover" 0 (Array.length r.Cpz.leftover);
  Alcotest.(check int) "one part" 1 (List.length r.Cpz.parts)

let test_cpz_validation () =
  let g = Gen.complete 5 in
  Alcotest.check_raises "delta"
    (Dex_util.Invariant.Violation { where = "Cpz_baseline.run"; what = "delta in (0,1)" })
    (fun () -> ignore (Cpz.run ~delta:0.0 ~epsilon:0.1 g (Rng.create 1)))

let test_verify_part_methods () =
  (* singleton parts report +inf with method "singleton"; small parts
     use exact enumeration; larger ones the spectral bound *)
  let g = Graph.of_edges ~n:20
      (List.concat
         [ List.init 9 (fun i -> List.init (9 - i - 1) (fun j -> (i, i + j + 1))) |> List.concat;
           [] ])
  in
  (* g = K9 plus 11 isolated vertices *)
  let r = decompose ~seed:9 g in
  let report = Verify.check g r (Rng.create 90) in
  let methods = List.map (fun p -> p.Verify.method_) report.Verify.parts in
  Alcotest.(check bool) "singletons reported" true (List.mem "singleton" methods);
  Alcotest.(check bool) "exact used for the K9 part" true (List.mem "exact" methods)

module Trimming = Dex_decomp.Trimming

let test_trimming_stable_expander () =
  (* an intact expander loses nothing: every vertex keeps all inner
     degree *)
  let rng = Rng.create 301 in
  let g = Gen.random_regular rng ~n:64 ~d:8 in
  let members = Array.init 64 (fun i -> i) in
  let t = Trimming.trim g members in
  Alcotest.(check int) "nothing pruned" 0 (Array.length t.Trimming.pruned);
  Alcotest.(check int) "core intact" 64 (Array.length t.Trimming.core);
  Alcotest.(check int) "no cascade" 0 t.Trimming.cascade_length

let test_trimming_cascade_on_path () =
  (* a path trimmed from one cut end unravels completely, one vertex
     per wave: the fully sequential cascade SW's critique is about *)
  let g = Gen.path 12 in
  (* remove the edge (0,1): vertex 0 keeps 0 of deg 1 -> violates;
     then 1 keeps 1 of 2 -> 2·1 >= 2 survives... use half-open chain:
     delete (11's edge) so end vertex 11 violates, its removal makes
     10 keep 1 of 2 (2 >= 2 survives). Interior path is stable; use a
     star chain instead: each vertex of a path has degree <= 2 and an
     endpoint has 1, so removing the endpoint edge cascades only one
     step. Verify exactly that. *)
  let t = Trimming.trim_after_removal g (Array.init 12 (fun i -> i)) ~removed:[ (0, 1) ] in
  Alcotest.(check bool) "endpoint pruned" true
    (Array.exists (fun v -> v = 0) t.Trimming.pruned);
  Alcotest.(check bool) "cascade at least 1" true (t.Trimming.cascade_length >= 1)

let test_trimming_full_cascade () =
  (* path with a self-loop per vertex: interior vertices hold 2 of 3
     degree (2*2 >= 3, stable) but drop to 1 of 3 (2 < 3) once a
     neighbor goes - deleting the first edge unravels the entire path
     one wave at a time, the fully sequential behaviour the paper's
     Section 1.1 critique of trimming is about *)
  let n = 10 in
  let edges =
    List.init (n - 1) (fun i -> (i, i + 1)) @ List.init n (fun i -> (i, i))
  in
  let g = Graph.of_edges ~n edges in
  let t =
    Trimming.trim_after_removal g (Array.init n (fun i -> i)) ~removed:[ (0, 1) ]
  in
  Alcotest.(check int) "everything pruned" n (Array.length t.Trimming.pruned);
  Alcotest.(check bool) "cascade spans the path" true
    (t.Trimming.cascade_length >= n - 2);
  Alcotest.(check bool) "volume accounted" true
    (t.Trimming.pruned_volume >= Array.length t.Trimming.pruned)

let test_trimming_partition_of_members () =
  let rng = Rng.create 302 in
  let g = Gen.dumbbell rng ~n1:30 ~n2:30 ~d:6 ~bridges:1 in
  let members = Array.init 30 (fun i -> i) in
  let t = Trimming.trim g members in
  Alcotest.(check int) "core + pruned = members" 30
    (Array.length t.Trimming.core + Array.length t.Trimming.pruned)

module Straw = Dex_decomp.Recursive_baseline

let test_recursive_baseline_partitions () =
  let g = Gen.cliques_chain ~cliques:6 ~size:8 in
  let r = Straw.run ~phi:(1.0 /. 16.0) g (Rng.create 211) in
  Metrics.check_partition g r.Straw.parts;
  Alcotest.(check bool) "splits the chain" true (List.length r.Straw.parts >= 2);
  Alcotest.(check bool) "depth grows" true (r.Straw.recursion_depth >= 2);
  Alcotest.(check bool) "removal bounded" true (r.Straw.edge_fraction_removed < 0.2)

let test_recursive_baseline_expander () =
  let rng = Rng.create 212 in
  let g = Gen.random_regular rng ~n:80 ~d:8 in
  let r = Straw.run ~phi:(1.0 /. 32.0) g (Rng.create 213) in
  Alcotest.(check int) "expander whole" 1 (List.length r.Straw.parts);
  Alcotest.(check int) "one cut call" 1 r.Straw.cut_calls

(* ---------- Las Vegas wrapper ---------- *)

module Lv = Dex_decomp.Las_vegas

let test_las_vegas_certifies () =
  let rng = Rng.create 301 in
  let g =
    Gen.connectivize rng (Gen.planted_partition rng ~parts:4 ~size:30 ~p_in:0.35 ~p_out:0.01)
  in
  match Lv.decompose ~attempts:5 ~epsilon:0.3 ~k:2 g (Rng.create 302) with
  | Ok o ->
    Alcotest.(check bool) "certificate holds" true (Lv.report_ok o.Lv.report);
    Alcotest.(check bool) "attempts within budget" true (o.Lv.attempts >= 1 && o.Lv.attempts <= 5);
    Alcotest.(check bool) "rounds cover the accepted attempt" true
      (o.Lv.total_rounds >= o.Lv.result.D.stats.D.rounds);
    Metrics.check_partition g o.Lv.result.D.parts
  | Error f ->
    Alcotest.failf "expected certification within %d attempts (last report phi_ok=%b)"
      f.Lv.attempts f.Lv.last_report.Verify.phi_ok

let test_las_vegas_deterministic () =
  let rng = Rng.create 303 in
  let g =
    Gen.connectivize rng (Gen.planted_partition rng ~parts:4 ~size:25 ~p_in:0.4 ~p_out:0.01)
  in
  let go () =
    match Lv.decompose ~attempts:4 ~epsilon:0.3 ~k:2 g (Rng.create 304) with
    | Ok o -> (o.Lv.attempts, o.Lv.total_rounds, List.length o.Lv.result.D.parts)
    | Error f -> (-f.Lv.attempts, f.Lv.total_rounds, 0)
  in
  let a = go () and b = go () in
  Alcotest.(check bool) "same seed, same outcome" true (a = b)

let test_las_vegas_rejects_bad_budget () =
  let g = Gen.complete 8 in
  Alcotest.check_raises "attempts >= 1"
    (Dex_util.Invariant.Violation
       { where = "Las_vegas.decompose"; what = "attempts must be >= 1" }) (fun () ->
      ignore (Lv.decompose ~attempts:0 ~epsilon:0.3 ~k:2 g (Rng.create 305)))

let prop_decomposition_is_partition =
  QCheck.Test.make ~name:"decomposition always partitions V" ~count:8
    QCheck.(pair (int_range 20 80) (int_bound 10_000))
    (fun (n, seed) ->
      let rng = Rng.create seed in
      let g = Gen.connectivize rng (Gen.gnp rng ~n ~p:(6.0 /. float_of_int n)) in
      let r = decompose ~seed g in
      Metrics.check_partition g r.D.parts;
      r.D.edge_fraction_removed <= 1.0 /. 6.0 +. 1e-9)

let () =
  Alcotest.run "decomp"
    [ ( "schedule",
        [ Alcotest.test_case "ladder decreasing" `Quick test_schedule_ladder_decreasing;
          Alcotest.test_case "depth and beta" `Quick test_schedule_depth_and_beta;
          Alcotest.test_case "theory ladder collapses" `Quick test_schedule_theory_ladder_collapses;
          Alcotest.test_case "validation" `Quick test_schedule_validation;
          Alcotest.test_case "h_of presets" `Quick test_h_of_presets ] );
      ( "decomposition",
        [ Alcotest.test_case "dumbbell two parts" `Quick test_dumbbell_two_parts;
          Alcotest.test_case "SBM block recovery" `Quick test_sbm_block_recovery;
          Alcotest.test_case "expander stays whole" `Quick test_expander_stays_whole;
          Alcotest.test_case "determinism" `Quick test_decomposition_determinism;
          Alcotest.test_case "disconnected input" `Quick test_disconnected_input;
          Alcotest.test_case "removal ledger" `Quick test_removed_edges_match_fraction;
          Alcotest.test_case "verify report" `Quick test_verify_report;
          Alcotest.test_case "part members" `Quick test_part_members;
          Alcotest.test_case "warted expander Phase 2" `Slow test_warted_expander_phase2;
          QCheck_alcotest.to_alcotest prop_decomposition_is_partition ] );
      ( "trimming",
        [ Alcotest.test_case "stable expander" `Quick test_trimming_stable_expander;
          Alcotest.test_case "endpoint cascade" `Quick test_trimming_cascade_on_path;
          Alcotest.test_case "full cascade" `Quick test_trimming_full_cascade;
          Alcotest.test_case "core+pruned partition" `Quick test_trimming_partition_of_members ] );
      ( "verify-methods",
        [ Alcotest.test_case "per-part methods" `Quick test_verify_part_methods ] );
      ( "las-vegas",
        [ Alcotest.test_case "certifies SBM" `Quick test_las_vegas_certifies;
          Alcotest.test_case "deterministic from seed" `Quick test_las_vegas_deterministic;
          Alcotest.test_case "budget validation" `Quick test_las_vegas_rejects_bad_budget ] );
      ( "recursive-baseline",
        [ Alcotest.test_case "partitions chain" `Quick test_recursive_baseline_partitions;
          Alcotest.test_case "expander whole" `Quick test_recursive_baseline_expander ] );
      ( "cpz-baseline",
        [ Alcotest.test_case "leftover arboricity ≤ n^δ" `Quick test_cpz_leftover_arboricity;
          Alcotest.test_case "dense expander: no leftover" `Quick
            test_cpz_no_leftover_on_dense_expander;
          Alcotest.test_case "validation" `Quick test_cpz_validation ] ) ]

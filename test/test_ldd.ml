(* Tests for the low-diameter decomposition (Theorem 4): MPX
   clustering as a protocol, the V_D/V_S refinement invariants, and
   the end-to-end diameter / cut-fraction guarantees. *)

module Graph = Dex_graph.Graph
module Metrics = Dex_graph.Metrics
module Gen = Dex_graph.Generators
module Rounds = Dex_congest.Rounds
module Network = Dex_congest.Network
module Clustering = Dex_ldd.Clustering
module Neighborhood = Dex_ldd.Neighborhood
module Refine = Dex_ldd.Refine
module Ldd = Dex_ldd.Ldd
module Rng = Dex_util.Rng

let net_of g = Network.create g (Rounds.create ())

(* ---------- MPX clustering ---------- *)

let test_clustering_covers () =
  let rng = Rng.create 1 in
  let g = Gen.connectivize rng (Gen.gnp rng ~n:80 ~p:0.05) in
  let c = Clustering.run (net_of g) ~beta:0.3 rng in
  Array.iteri
    (fun v cl ->
      Alcotest.(check bool) (Printf.sprintf "vertex %d clustered" v) true (cl >= 0 && cl < 80))
    c.Clustering.cluster;
  let parts = Clustering.clusters c in
  Metrics.check_partition g parts

let test_clustering_centers_own_cluster () =
  let rng = Rng.create 2 in
  let g = Gen.grid 8 8 in
  let c = Clustering.run (net_of g) ~beta:0.4 rng in
  (* every cluster id is a vertex assigned to itself *)
  Array.iter
    (fun cl -> Alcotest.(check int) "center in own cluster" cl c.Clustering.cluster.(cl))
    c.Clustering.cluster

let test_clustering_radius_bound () =
  let rng = Rng.create 3 in
  let g = Gen.grid 12 12 in
  let beta = 0.4 in
  let c = Clustering.run (net_of g) ~beta rng in
  let horizon = c.Clustering.epochs in
  (* each vertex is within horizon hops of its center, and the
     protocol ran exactly horizon epochs *)
  let parts = Clustering.clusters c in
  List.iter
    (fun part ->
      let center = c.Clustering.cluster.(part.(0)) in
      let dist = Metrics.bfs_distances g center in
      Array.iter
        (fun v -> Alcotest.(check bool) "within horizon" true (dist.(v) <= horizon))
        part)
    parts;
  Alcotest.(check int) "rounds = epochs" horizon c.Clustering.rounds

let test_clustering_cut_fraction_expectation () =
  (* Lemma 12: Pr[edge cut] ≤ 2β; empirical average over seeds should
     be ≤ 3β comfortably *)
  let beta = 0.15 in
  let g = Gen.cycle 400 in
  let total = ref 0 in
  let seeds = 10 in
  for seed = 1 to seeds do
    let c = Clustering.run (net_of g) ~beta (Rng.create seed) in
    total := !total + Clustering.inter_cluster_edges g c
  done;
  let avg = float_of_int !total /. float_of_int seeds in
  let m = float_of_int (Graph.num_edges g) in
  Alcotest.(check bool)
    (Printf.sprintf "avg cut %.1f ≤ 3βm = %.1f" avg (3.0 *. beta *. m))
    true
    (avg <= 3.0 *. beta *. m)

let test_clustering_beta_validation () =
  let g = Gen.path 4 in
  Alcotest.check_raises "beta out of range" (Invalid_argument "Clustering.run: beta in (0,1)")
    (fun () -> ignore (Clustering.run (net_of g) ~beta:1.5 (Rng.create 1)))

let test_clustering_start_times () =
  let rng = Rng.create 4 in
  let g = Gen.grid 10 10 in
  let c = Clustering.run (net_of g) ~beta:0.3 rng in
  Array.iter
    (fun s ->
      Alcotest.(check bool) "start in [1, horizon]" true (s >= 1 && s <= c.Clustering.epochs))
    c.Clustering.start;
  (* a vertex whose start epoch is 1 must be its own center *)
  Array.iteri
    (fun v s ->
      if s = 1 then Alcotest.(check int) "epoch-1 vertex is a center" v c.Clustering.cluster.(v))
    c.Clustering.start

(* ---------- neighborhood counting ---------- *)

let test_ball_edge_count () =
  let g = Gen.path 10 in
  (* ball of radius 1 around vertex 5 = {4,5,6}: 2 edges *)
  Alcotest.(check int) "radius 1" 2 (Neighborhood.ball_edge_count g ~d:1 5);
  Alcotest.(check int) "radius 2" 4 (Neighborhood.ball_edge_count g ~d:2 5);
  Alcotest.(check int) "radius 0" 0 (Neighborhood.ball_edge_count g ~d:0 5);
  Alcotest.(check int) "whole graph" 9 (Neighborhood.ball_edge_count g ~d:20 5)

let test_ball_counts_with_loops () =
  let g = Graph.of_edges ~n:3 [ (0, 1); (1, 1) ] in
  (* ball radius 1 around 0 = {0,1}: edge 0-1 plus loop at 1 *)
  Alcotest.(check int) "loop counted" 2 (Neighborhood.ball_edge_count g ~d:1 0)

let test_all_ball_counts_match_single () =
  let rng = Rng.create 5 in
  let g = Gen.connectivize rng (Gen.gnp rng ~n:40 ~p:0.08) in
  let all = Neighborhood.all_ball_edge_counts g ~d:2 in
  for v = 0 to 39 do
    Alcotest.(check int) (Printf.sprintf "v=%d" v) (Neighborhood.ball_edge_count g ~d:2 v)
      all.(v)
  done

let test_lemma16_rounds_positive () =
  Alcotest.(check bool) "positive" true (Neighborhood.lemma16_rounds ~n:100 ~d:5 ~f:0.5 > 0);
  Alcotest.check_raises "f validation"
    (Invalid_argument "Neighborhood.lemma16_rounds: f in (0,1)") (fun () ->
      ignore (Neighborhood.lemma16_rounds ~n:100 ~d:5 ~f:1.5))

(* ---------- refinement ---------- *)

let test_refine_invariants_on_path () =
  let g = Gen.path 600 in
  let t = Refine.run g ~beta:0.4 in
  Refine.check g t;
  Alcotest.(check bool) "iterations within 2b" true (t.Refine.iterations <= (2 * t.Refine.b) + 1)

let test_refine_low_diameter_graph_all_vd () =
  (* when a ≥ diameter, every ball is the whole graph and every vertex
     is dense relative to itself: V_D = V *)
  let rng = Rng.create 6 in
  let g = Gen.random_regular rng ~n:64 ~d:6 in
  let t = Refine.run g ~beta:0.2 in
  Alcotest.(check bool) "all of V in V_D" true (Array.for_all (fun b -> b) t.Refine.in_vd)

let test_refine_vs_density () =
  let g = Gen.path 600 in
  let t = Refine.run g ~beta:0.4 in
  let m = Graph.num_edges g in
  Array.iteri
    (fun v in_vd ->
      if not in_vd then begin
        let c = Neighborhood.ball_edge_count g ~d:t.Refine.a v in
        Alcotest.(check bool) "V_S ball sparse" true (c * t.Refine.b <= m)
      end)
    t.Refine.in_vd

(* ---------- end-to-end LDD ---------- *)

let test_ldd_run_on_network () =
  (* the distributed entry point: same algorithm, rounds charged to
     the caller's network ledger *)
  let rng = Rng.create 5 in
  let g = Gen.cycle 4_000 in
  let net = net_of g in
  let r = Ldd.run net ~beta:0.6 rng in
  Metrics.check_partition g r.Ldd.parts;
  Alcotest.(check int) "rounds charged to the network ledger" r.Ldd.rounds
    (Rounds.total (Network.rounds net))

let test_ldd_partition_and_diameter () =
  (* at the paper's constants the far ball saturates unless the graph
     is long enough: a 20000-cycle at beta = 0.6 puts every vertex in
     V_S, so the MPX cuts really materialize *)
  let rng = Rng.create 7 in
  let n = 20_000 in
  let g = Gen.cycle n in
  let beta = 0.6 in
  let r = Ldd.run_graph g ~beta rng in
  Metrics.check_partition g r.Ldd.parts;
  let bound = Ldd.diameter_bound ~n ~beta () in
  List.iter
    (fun part ->
      (* parts of a cycle are arcs: diameter = size - 1 unless whole *)
      let d = if Array.length part = n then n / 2 else Array.length part - 1 in
      Alcotest.(check bool) "diameter within bound" true (d <= bound))
    r.Ldd.parts;
  Alcotest.(check bool) "actually clustered" true (List.length r.Ldd.parts > 1);
  Alcotest.(check bool) "rounds positive" true (r.Ldd.rounds > 0)

let test_ldd_cut_fraction () =
  let beta = 0.6 in
  let g = Gen.cycle 20_000 in
  let worst = ref 0.0 in
  for seed = 1 to 5 do
    let r = Ldd.run_graph g ~beta (Rng.create seed) in
    let frac =
      float_of_int (List.length r.Ldd.cut_edges) /. float_of_int (Graph.num_edges g)
    in
    if frac > !worst then worst := frac
  done;
  (* Theorem 4 (with our Lemma 13 constant): ≤ 3β w.h.p. *)
  Alcotest.(check bool)
    (Printf.sprintf "worst %.3f ≤ 3β = %.3f" !worst (3.0 *. beta))
    true
    (!worst <= 3.0 *. beta)

let test_ldd_removed_edges_consistent () =
  let rng = Rng.create 8 in
  let g = Gen.grid 20 20 in
  let r = Ldd.run_graph g ~beta:0.5 rng in
  (* cut edges really join different parts *)
  let label = Array.make (Graph.num_vertices g) (-1) in
  List.iteri (fun i part -> Array.iter (fun v -> label.(v) <- i) part) r.Ldd.parts;
  List.iter
    (fun (u, v) ->
      Alcotest.(check bool) "cut edge crosses" true (label.(u) <> label.(v)))
    r.Ldd.cut_edges

let test_ldd_expander_is_single_part () =
  (* low-diameter input: LDD may keep everything whole (V_D = V) *)
  let rng = Rng.create 9 in
  let g = Gen.random_regular rng ~n:128 ~d:8 in
  let r = Ldd.run_graph g ~beta:0.2 rng in
  Alcotest.(check int) "one part" 1 (List.length r.Ldd.parts);
  Alcotest.(check int) "no cut edges" 0 (List.length r.Ldd.cut_edges)

let prop_ldd_is_partition =
  QCheck.Test.make ~name:"LDD output is a partition within the diameter bound" ~count:10
    QCheck.(pair (int_range 50 300) (int_bound 10_000))
    (fun (n, seed) ->
      let rng = Rng.create seed in
      let g = Gen.connectivize rng (Gen.gnp rng ~n ~p:(4.0 /. float_of_int n)) in
      let beta = 0.3 in
      let r = Ldd.run_graph g ~beta rng in
      Metrics.check_partition g r.Ldd.parts;
      Ldd.max_part_diameter g r <= Ldd.diameter_bound ~n ~beta ())

let () =
  Alcotest.run "ldd"
    [ ( "clustering",
        [ Alcotest.test_case "covers all vertices" `Quick test_clustering_covers;
          Alcotest.test_case "centers own cluster" `Quick test_clustering_centers_own_cluster;
          Alcotest.test_case "radius bound" `Quick test_clustering_radius_bound;
          Alcotest.test_case "cut fraction (Lemma 12)" `Quick
            test_clustering_cut_fraction_expectation;
          Alcotest.test_case "beta validation" `Quick test_clustering_beta_validation;
          Alcotest.test_case "start times" `Quick test_clustering_start_times ] );
      ( "neighborhood",
        [ Alcotest.test_case "ball edge count" `Quick test_ball_edge_count;
          Alcotest.test_case "loops counted" `Quick test_ball_counts_with_loops;
          Alcotest.test_case "bulk matches single" `Quick test_all_ball_counts_match_single;
          Alcotest.test_case "lemma 16 rounds" `Quick test_lemma16_rounds_positive ] );
      ( "refine",
        [ Alcotest.test_case "invariants on path" `Quick test_refine_invariants_on_path;
          Alcotest.test_case "low-diameter graph ⇒ V_D = V" `Quick
            test_refine_low_diameter_graph_all_vd;
          Alcotest.test_case "V_S density" `Quick test_refine_vs_density ] );
      ( "end-to-end",
        [ Alcotest.test_case "run on a network" `Quick test_ldd_run_on_network;
          Alcotest.test_case "partition & diameter" `Quick test_ldd_partition_and_diameter;
          Alcotest.test_case "cut fraction (Theorem 4)" `Quick test_ldd_cut_fraction;
          Alcotest.test_case "cut edges cross" `Quick test_ldd_removed_edges_consistent;
          Alcotest.test_case "expander stays whole" `Quick test_ldd_expander_is_single_part;
          QCheck_alcotest.to_alcotest prop_ldd_is_partition ] ) ]

(* Tests for the dex_lint engine: every rule fires on a violating
   fixture, path scoping exempts the sanctioned locations, and the
   suppression pragma behaves as documented. Fixtures are linted
   in-memory with fake paths, so the path-scoping logic itself is
   under test. *)

module Lint = Dex_lint_core.Lint
module Json = Dex_obs.Json

let lint ?(path = "lib/congest/fixture.ml") ?all_rules src =
  match Lint.lint_source ?all_rules ~path src with
  | Ok findings -> findings
  | Error msg -> Alcotest.failf "unexpected parse error: %s" msg

let rules_of findings = List.map (fun f -> f.Lint.rule) findings

let check_rules msg expected findings =
  Alcotest.(check (list string)) msg expected (rules_of findings)

(* ---------- each rule fires ---------- *)

let test_d001_hashtbl () =
  let fs = lint "let f tbl = Hashtbl.iter (fun _ _ -> ()) tbl" in
  check_rules "iter" [ "D001" ] fs;
  check_rules "fold" [ "D001" ]
    (lint "let f tbl = Hashtbl.fold (fun _ _ acc -> acc) tbl 0");
  check_rules "to_seq_keys" [ "D001" ]
    (lint "let f tbl = List.of_seq (Hashtbl.to_seq_keys tbl)");
  check_rules "qualified Stdlib" [ "D001" ]
    (lint "let f tbl = Stdlib.Hashtbl.iter (fun _ _ -> ()) tbl")

let test_d001_allows_ordered_ops () =
  check_rules "mem/replace/find fine" []
    (lint
       "let f tbl = Hashtbl.replace tbl 1 2; Hashtbl.mem tbl 1 && \
        Hashtbl.find tbl 1 = 2")

let test_d002_random () =
  check_rules "Random.int" [ "D002" ] (lint "let f () = Random.int 10");
  check_rules "Random.State" [ "D002" ]
    (lint "let f st = Random.State.int st 10");
  check_rules "self_init" [ "D002" ] (lint "let f () = Random.self_init ()")

let test_d003_aborts () =
  check_rules "failwith" [ "D003" ] (lint "let f () = failwith \"x\"");
  check_rules "invalid_arg" [ "D003" ] (lint "let f () = invalid_arg \"x\"");
  check_rules "assert false" [ "D003" ] (lint "let f () = assert false");
  check_rules "assert cond is fine" [] (lint "let f x = assert (x > 0)")

let test_d004_wall_clock () =
  check_rules "Sys.time" [ "D004" ] (lint "let f () = Sys.time ()");
  check_rules "gettimeofday" [ "D004" ] (lint "let f () = Unix.gettimeofday ()");
  check_rules "Unix.time" [ "D004" ] (lint "let f () = Unix.time ()")

let test_d005_poly_compare () =
  check_rules "g = g'" [ "D005" ] (lint "let f g g2 = g = g2");
  check_rules "field" [ "D005" ] (lint "let f a b = a.graph = b.other");
  check_rules "compare network" [ "D005" ] (lint "let f net x = compare net x");
  check_rules "suffix _graph" [ "D005" ]
    (lint "let f sub_graph x = min sub_graph x");
  check_rules "type constraint" [ "D005" ]
    (lint "let f a b = (a : Dex_graph.Graph.t) = b");
  check_rules "ints fine" [] (lint "let f a b = a = b && compare a b = 0")

let test_d006_poly_sort () =
  (* the exact defect class Graph.build shipped with: adjacency sorted
     with a bare polymorphic compare *)
  check_rules "Array.sort compare" [ "D006" ]
    (lint ~path:"lib/graph/graph.ml" "let f a = Array.sort compare a");
  check_rules "List.sort_uniq compare" [ "D006" ]
    (lint ~path:"lib/graph/graph.ml" "let f l = List.sort_uniq compare l");
  check_rules "qualified Stdlib.compare" [ "D006" ]
    (lint ~path:"lib/congest/x.ml" "let f l = List.stable_sort Stdlib.compare l");
  check_rules "monomorphic Int.compare fine" []
    (lint ~path:"lib/graph/graph.ml" "let f a = Array.sort Int.compare a");
  check_rules "explicit comparator fine" []
    (lint ~path:"lib/graph/graph.ml"
       "let f l = List.sort (fun (a, _) (b, _) -> Int.compare a b) l")

let test_d006_scoped_to_kernel () =
  let src = "let f a = Array.sort compare a" in
  check_rules "lib/graph fires" [ "D006" ] (lint ~path:"lib/graph/x.ml" src);
  check_rules "lib/congest fires" [ "D006" ] (lint ~path:"lib/congest/x.ml" src);
  check_rules "lib/sparsecut exempt" [] (lint ~path:"lib/sparsecut/x.ml" src);
  check_rules "bench exempt" [] (lint ~path:"bench/main.ml" src)

(* ---------- path scoping ---------- *)

let test_scope_d003_only_protocol_layers () =
  let src = "let f () = failwith \"x\"" in
  check_rules "congest" [ "D003" ] (lint ~path:"lib/congest/x.ml" src);
  check_rules "routing" [ "D003" ] (lint ~path:"lib/routing/x.ml" src);
  check_rules "expander" [ "D003" ] (lint ~path:"lib/expander/x.ml" src);
  check_rules "util exempt" [] (lint ~path:"lib/util/x.ml" src);
  check_rules "graph exempt" [] (lint ~path:"lib/graph/x.ml" src)

let test_scope_d002_rng_exempt () =
  let src = "let f () = Random.int 3" in
  check_rules "rng.ml exempt" [] (lint ~path:"lib/util/rng.ml" src);
  check_rules "elsewhere fires" [ "D002" ] (lint ~path:"lib/util/other.ml" src)

let test_scope_d004_obs_and_bench_exempt () =
  let src = "let f () = Unix.gettimeofday ()" in
  check_rules "lib/obs exempt" [] (lint ~path:"lib/obs/clock.ml" src);
  check_rules "bench exempt" [] (lint ~path:"bench/main.ml" src);
  check_rules "congest fires" [ "D004" ] (lint ~path:"lib/congest/x.ml" src)

let test_scope_absolute_paths () =
  let src = "let f () = failwith \"x\"" in
  check_rules "absolute path anchors at lib/" [ "D003" ]
    (lint ~path:"/root/repo/lib/congest/x.ml" src)

let test_all_rules_overrides_scope () =
  let src = "let f () = failwith \"x\"" in
  check_rules "scoped off" [] (lint ~path:"whatever.ml" src);
  check_rules "--all-rules on" [ "D003" ]
    (lint ~all_rules:true ~path:"whatever.ml" src)

(* ---------- suppression pragmas ---------- *)

let test_suppression_same_and_next_line () =
  check_rules "next line" []
    (lint
       "(* dex-lint: allow D002 test needs ambient randomness *)\n\
        let f () = Random.int 3");
  check_rules "same line" []
    (lint
       "let f () = Random.int 3 (* dex-lint: allow D002 inline reason *)")

let test_suppression_is_rule_specific () =
  check_rules "other rule still fires" [ "D003" ]
    (lint
       "(* dex-lint: allow D002 wrong rule *)\n\
        let f () = failwith \"x\"")

let test_suppression_requires_reason () =
  (* the reasonless pragma is spliced so linting this file does not
     trip over the literal *)
  let fs =
    lint ("(* dex-lint: " ^ "allow D002 *)\nlet f () = Random.int 3")
  in
  check_rules "inert pragma: D000 + the finding" [ "D000"; "D002" ] fs

let test_suppression_does_not_leak () =
  check_rules "two lines below: fires" [ "D002" ]
    (lint
       "(* dex-lint: allow D002 reason *)\nlet a = 1\nlet f () = Random.int 3")

(* ---------- driver behavior ---------- *)

let test_parse_error () =
  match Lint.lint_source ~path:"lib/x.ml" "let let let" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "expected a parse error"

let test_findings_sorted_and_positioned () =
  let fs =
    lint "let a () = Random.int 1\nlet b () = failwith \"x\"\nlet c tbl = Hashtbl.iter ignore tbl"
  in
  check_rules "ordered by line" [ "D002"; "D003"; "D001" ] fs;
  Alcotest.(check (list int)) "line numbers" [ 1; 2; 3 ]
    (List.map (fun f -> f.Lint.line) fs)

(* ---------- typed engine: C003 on interfaces ---------- *)

module Typed = Dex_lint_core.Typed_lint

let mli ?(path = "lib/congest/fixture.mli") ?all_rules src =
  match Typed.lint_mli_source ?all_rules ~path src with
  | Ok findings -> findings
  | Error msg -> Alcotest.failf "unexpected parse error: %s" msg

let test_c003_vertex_params () =
  check_rules "raw root" [ "C003" ] (mli "val bfs : root:int -> unit");
  check_rules "raw vertex map" [ "C003" ]
    (mli "val relabel : vertex_map:int array -> unit");
  check_rules "phantom-typed root is fine" []
    (mli "val bfs : root:Dex_graph.Vertex.local -> unit");
  check_rules "unlabelled ints untouched" [] (mli "val degree : int -> int")

let test_c003_scoping_and_pragma () =
  check_rules "outside the protocol layers" []
    (mli ~path:"lib/graph/fixture.mli" "val bfs : root:int -> unit");
  check_rules "--all-rules overrides the scope" [ "C003" ]
    (mli ~path:"lib/graph/fixture.mli" ~all_rules:true "val bfs : root:int -> unit");
  check_rules "pragma suppresses" []
    (mli "(* dex-lint: allow C003 staged migration *)\nval bfs : root:int -> unit")

let test_c_rule_pragma_scan () =
  let p =
    Lint.scan_pragmas ~path:"x.ml"
      "(* dex-lint: allow C002 guarded upstream *)\nlet x = 1"
  in
  Alcotest.(check bool) "C-rule pragma covers its line and the next" true
    (Hashtbl.mem p.Lint.allowed (1, "C002") && Hashtbl.mem p.Lint.allowed (2, "C002"));
  Alcotest.(check int) "well-formed" 0 (List.length p.Lint.malformed)

(* ---------- typed engine: W-rules on real .cmts ---------- *)

let have_ocamlc =
  lazy (Sys.command "ocamlc -version > /dev/null 2> /dev/null" = 0)

(* compile [src] with -bin-annot and run the W-rules on its .cmt;
   ocamlc writes outputs next to the source *)
let w_findings src =
  let dir = Filename.temp_file "dex_lint_w" "" in
  Sys.remove dir;
  Sys.mkdir dir 0o755;
  let ml = Filename.concat dir "probe.ml" in
  Fun.protect
    ~finally:(fun () ->
      Array.iter (fun f -> Sys.remove (Filename.concat dir f)) (Sys.readdir dir);
      Sys.rmdir dir)
    (fun () ->
      let oc = open_out ml in
      output_string oc src;
      close_out oc;
      let rc =
        Sys.command
          (Printf.sprintf "ocamlc -bin-annot -c %s 2> /dev/null"
             (Filename.quote ml))
      in
      if rc <> 0 then Alcotest.failf "probe did not compile:\n%s" src;
      match
        (Cmt_format.read_cmt (Filename.concat dir "probe.cmt")).cmt_annots
      with
      | Cmt_format.Implementation str -> Typed.w_rules ~file:"probe.ml" str
      | _ -> Alcotest.fail "expected an implementation cmt")

let test_w_rules_certify () =
  if Lazy.force have_ocamlc then begin
    check_rules "C001: static length over a literal budget" [ "C001" ]
      (w_findings
         "let create ~word_size () = word_size\n\
          let _b = create ~word_size:2 ()\n\
          let site () : int * int array = (1, [| 1; 2; 3 |])");
    check_rules "static length within the default budget" []
      (w_findings "let site () : int * int array = (1, [| 7 |])");
    check_rules "length decided through a local helper" []
      (w_findings
         "let encode x = [| x |]\n\
          let site x : int * int array = (1, encode x)");
    check_rules "C002: unguarded dynamic length" [ "C002" ]
      (w_findings "let site n : int * int array = (1, Array.make n 0)");
    check_rules "Invariant.words guard recognized" []
      (w_findings
         "module Invariant = struct let words ~budget:_ ~where:_ a = a end\n\
          let site n : int * int array =\n\
         \  (1, Invariant.words ~budget:1 ~where:\"t\" (Array.make n 0))");
    check_rules "non-literal budget disables C001, never C002"
      [ "C002" ]
      (w_findings
         "let create ~word_size () = word_size\n\
          let _b w = create ~word_size:w ()\n\
          let wide () : int * int array = (1, [| 1; 2; 3 |])\n\
          let dyn n : int * int array = (1, Array.make n 0)")
  end

(* ---------- typed engine: unit naming, dune parsing, the ladder ---------- *)

let test_unit_name_splitting () =
  Alcotest.(check (list string)) "wrapped" [ "Dex_congest"; "Network" ]
    (Typed.split_wrapped "Dex_congest__Network");
  Alcotest.(check (list string)) "plain" [ "Dexpander" ]
    (Typed.split_wrapped "Dexpander");
  Alcotest.(check string) "exe unit" "Dune.exe.Test_lint"
    (Typed.canon_of_unit_name "Dune__exe__Test_lint")

let test_declared_libraries () =
  Alcotest.(check (list string)) "parsed across lines"
    [ "dex_util"; "dex_graph"; "dex_obs" ]
    (Typed.declared_libraries
       "(library\n (name x)\n (libraries dex_util dex_graph\n   dex_obs))");
  Alcotest.(check (list string)) "no stanza" []
    (Typed.declared_libraries "(executable (name y))")

let test_layer_ranks_ladder () =
  let r l =
    match Typed.rank l with
    | Some r -> r
    | None -> Alcotest.failf "no rank for %s" l
  in
  Alcotest.(check bool) "util below congest" true (r "dex_util" < r "dex_congest");
  Alcotest.(check bool) "congest below ldd" true (r "dex_congest" < r "dex_ldd");
  Alcotest.(check bool) "ldd below decomp" true (r "dex_ldd" < r "dex_decomp");
  Alcotest.(check bool) "decomp below triangle" true (r "dex_decomp" < r "dex_triangle");
  Alcotest.(check bool) "umbrella on top" true (r "dex_triangle" < r "dexpander")

let test_json_report_round_trips () =
  let fs = lint "let f () = failwith \"x\"" in
  let doc = Lint.report_to_json ~files:1 ~errors:[ ("bad.ml", "boom") ] fs in
  match Json.parse (Json.to_string doc) with
  | Error msg -> Alcotest.failf "report not valid JSON: %s" msg
  | Ok v ->
    Alcotest.(check (option string)) "tool" (Some "dex_lint")
      (Option.bind (Json.member "tool" v) Json.to_str);
    let findings = Option.bind (Json.member "findings" v) Json.to_list in
    Alcotest.(check (option int)) "one finding" (Some 1)
      (Option.map List.length findings)

let test_rule_table_complete () =
  Alcotest.(check (list string)) "ids"
    [ "D001"; "D002"; "D003"; "D004"; "D005"; "D006" ]
    (List.map fst Lint.rules)

let () =
  Alcotest.run "lint"
    [ ( "rules",
        [ Alcotest.test_case "D001 hashtbl order" `Quick test_d001_hashtbl;
          Alcotest.test_case "D001 ordered ops ok" `Quick test_d001_allows_ordered_ops;
          Alcotest.test_case "D002 ambient random" `Quick test_d002_random;
          Alcotest.test_case "D003 untyped aborts" `Quick test_d003_aborts;
          Alcotest.test_case "D004 wall clock" `Quick test_d004_wall_clock;
          Alcotest.test_case "D005 poly compare" `Quick test_d005_poly_compare;
          Alcotest.test_case "D006 poly sort" `Quick test_d006_poly_sort;
          Alcotest.test_case "D006 kernel scoped" `Quick test_d006_scoped_to_kernel ] );
      ( "scoping",
        [ Alcotest.test_case "D003 protocol layers" `Quick
            test_scope_d003_only_protocol_layers;
          Alcotest.test_case "D002 rng exempt" `Quick test_scope_d002_rng_exempt;
          Alcotest.test_case "D004 obs/bench exempt" `Quick
            test_scope_d004_obs_and_bench_exempt;
          Alcotest.test_case "absolute paths" `Quick test_scope_absolute_paths;
          Alcotest.test_case "--all-rules" `Quick test_all_rules_overrides_scope ] );
      ( "suppressions",
        [ Alcotest.test_case "same and next line" `Quick
            test_suppression_same_and_next_line;
          Alcotest.test_case "rule specific" `Quick test_suppression_is_rule_specific;
          Alcotest.test_case "reason required" `Quick test_suppression_requires_reason;
          Alcotest.test_case "no leak" `Quick test_suppression_does_not_leak ] );
      ( "driver",
        [ Alcotest.test_case "parse error" `Quick test_parse_error;
          Alcotest.test_case "sorted findings" `Quick
            test_findings_sorted_and_positioned;
          Alcotest.test_case "json round trip" `Quick test_json_report_round_trips;
          Alcotest.test_case "rule table" `Quick test_rule_table_complete ] );
      ( "typed",
        [ Alcotest.test_case "C003 vertex params" `Quick test_c003_vertex_params;
          Alcotest.test_case "C003 scoping & pragma" `Quick
            test_c003_scoping_and_pragma;
          Alcotest.test_case "C-rule pragmas scan" `Quick test_c_rule_pragma_scan;
          Alcotest.test_case "W-rules certify budgets" `Quick test_w_rules_certify;
          Alcotest.test_case "unit name splitting" `Quick test_unit_name_splitting;
          Alcotest.test_case "dune (libraries ...) parsing" `Quick
            test_declared_libraries;
          Alcotest.test_case "layer ladder" `Quick test_layer_ranks_ladder ] ) ]

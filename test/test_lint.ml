(* Tests for the dex_lint engine: every rule fires on a violating
   fixture, path scoping exempts the sanctioned locations, and the
   suppression pragma behaves as documented. Fixtures are linted
   in-memory with fake paths, so the path-scoping logic itself is
   under test. *)

module Lint = Dex_lint_core.Lint
module Json = Dex_obs.Json

let lint ?(path = "lib/congest/fixture.ml") ?all_rules src =
  match Lint.lint_source ?all_rules ~path src with
  | Ok findings -> findings
  | Error msg -> Alcotest.failf "unexpected parse error: %s" msg

let rules_of findings = List.map (fun f -> f.Lint.rule) findings

let check_rules msg expected findings =
  Alcotest.(check (list string)) msg expected (rules_of findings)

(* ---------- each rule fires ---------- *)

let test_d001_hashtbl () =
  let fs = lint "let f tbl = Hashtbl.iter (fun _ _ -> ()) tbl" in
  check_rules "iter" [ "D001" ] fs;
  check_rules "fold" [ "D001" ]
    (lint "let f tbl = Hashtbl.fold (fun _ _ acc -> acc) tbl 0");
  check_rules "to_seq_keys" [ "D001" ]
    (lint "let f tbl = List.of_seq (Hashtbl.to_seq_keys tbl)");
  check_rules "qualified Stdlib" [ "D001" ]
    (lint "let f tbl = Stdlib.Hashtbl.iter (fun _ _ -> ()) tbl")

let test_d001_allows_ordered_ops () =
  check_rules "mem/replace/find fine" []
    (lint
       "let f tbl = Hashtbl.replace tbl 1 2; Hashtbl.mem tbl 1 && \
        Hashtbl.find tbl 1 = 2")

let test_d002_random () =
  check_rules "Random.int" [ "D002" ] (lint "let f () = Random.int 10");
  check_rules "Random.State" [ "D002" ]
    (lint "let f st = Random.State.int st 10");
  check_rules "self_init" [ "D002" ] (lint "let f () = Random.self_init ()")

let test_d003_aborts () =
  check_rules "failwith" [ "D003" ] (lint "let f () = failwith \"x\"");
  check_rules "invalid_arg" [ "D003" ] (lint "let f () = invalid_arg \"x\"");
  check_rules "assert false" [ "D003" ] (lint "let f () = assert false");
  check_rules "assert cond is fine" [] (lint "let f x = assert (x > 0)")

let test_d004_wall_clock () =
  check_rules "Sys.time" [ "D004" ] (lint "let f () = Sys.time ()");
  check_rules "gettimeofday" [ "D004" ] (lint "let f () = Unix.gettimeofday ()");
  check_rules "Unix.time" [ "D004" ] (lint "let f () = Unix.time ()")

let test_d005_poly_compare () =
  check_rules "g = g'" [ "D005" ] (lint "let f g g2 = g = g2");
  check_rules "field" [ "D005" ] (lint "let f a b = a.graph = b.other");
  check_rules "compare network" [ "D005" ] (lint "let f net x = compare net x");
  check_rules "suffix _graph" [ "D005" ]
    (lint "let f sub_graph x = min sub_graph x");
  check_rules "type constraint" [ "D005" ]
    (lint "let f a b = (a : Dex_graph.Graph.t) = b");
  check_rules "ints fine" [] (lint "let f a b = a = b && compare a b = 0")

(* ---------- path scoping ---------- *)

let test_scope_d003_only_protocol_layers () =
  let src = "let f () = failwith \"x\"" in
  check_rules "congest" [ "D003" ] (lint ~path:"lib/congest/x.ml" src);
  check_rules "routing" [ "D003" ] (lint ~path:"lib/routing/x.ml" src);
  check_rules "expander" [ "D003" ] (lint ~path:"lib/expander/x.ml" src);
  check_rules "util exempt" [] (lint ~path:"lib/util/x.ml" src);
  check_rules "graph exempt" [] (lint ~path:"lib/graph/x.ml" src)

let test_scope_d002_rng_exempt () =
  let src = "let f () = Random.int 3" in
  check_rules "rng.ml exempt" [] (lint ~path:"lib/util/rng.ml" src);
  check_rules "elsewhere fires" [ "D002" ] (lint ~path:"lib/util/other.ml" src)

let test_scope_d004_obs_and_bench_exempt () =
  let src = "let f () = Unix.gettimeofday ()" in
  check_rules "lib/obs exempt" [] (lint ~path:"lib/obs/clock.ml" src);
  check_rules "bench exempt" [] (lint ~path:"bench/main.ml" src);
  check_rules "congest fires" [ "D004" ] (lint ~path:"lib/congest/x.ml" src)

let test_scope_absolute_paths () =
  let src = "let f () = failwith \"x\"" in
  check_rules "absolute path anchors at lib/" [ "D003" ]
    (lint ~path:"/root/repo/lib/congest/x.ml" src)

let test_all_rules_overrides_scope () =
  let src = "let f () = failwith \"x\"" in
  check_rules "scoped off" [] (lint ~path:"whatever.ml" src);
  check_rules "--all-rules on" [ "D003" ]
    (lint ~all_rules:true ~path:"whatever.ml" src)

(* ---------- suppression pragmas ---------- *)

let test_suppression_same_and_next_line () =
  check_rules "next line" []
    (lint
       "(* dex-lint: allow D002 test needs ambient randomness *)\n\
        let f () = Random.int 3");
  check_rules "same line" []
    (lint
       "let f () = Random.int 3 (* dex-lint: allow D002 inline reason *)")

let test_suppression_is_rule_specific () =
  check_rules "other rule still fires" [ "D003" ]
    (lint
       "(* dex-lint: allow D002 wrong rule *)\n\
        let f () = failwith \"x\"")

let test_suppression_requires_reason () =
  let fs =
    lint "(* dex-lint: allow D002 *)\nlet f () = Random.int 3"
  in
  check_rules "inert pragma: D000 + the finding" [ "D000"; "D002" ] fs

let test_suppression_does_not_leak () =
  check_rules "two lines below: fires" [ "D002" ]
    (lint
       "(* dex-lint: allow D002 reason *)\nlet a = 1\nlet f () = Random.int 3")

(* ---------- driver behavior ---------- *)

let test_parse_error () =
  match Lint.lint_source ~path:"lib/x.ml" "let let let" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "expected a parse error"

let test_findings_sorted_and_positioned () =
  let fs =
    lint "let a () = Random.int 1\nlet b () = failwith \"x\"\nlet c tbl = Hashtbl.iter ignore tbl"
  in
  check_rules "ordered by line" [ "D002"; "D003"; "D001" ] fs;
  Alcotest.(check (list int)) "line numbers" [ 1; 2; 3 ]
    (List.map (fun f -> f.Lint.line) fs)

let test_json_report_round_trips () =
  let fs = lint "let f () = failwith \"x\"" in
  let doc = Lint.report_to_json ~files:1 ~errors:[ ("bad.ml", "boom") ] fs in
  match Json.parse (Json.to_string doc) with
  | Error msg -> Alcotest.failf "report not valid JSON: %s" msg
  | Ok v ->
    Alcotest.(check (option string)) "tool" (Some "dex_lint")
      (Option.bind (Json.member "tool" v) Json.to_str);
    let findings = Option.bind (Json.member "findings" v) Json.to_list in
    Alcotest.(check (option int)) "one finding" (Some 1)
      (Option.map List.length findings)

let test_rule_table_complete () =
  Alcotest.(check (list string)) "ids"
    [ "D001"; "D002"; "D003"; "D004"; "D005" ]
    (List.map fst Lint.rules)

let () =
  Alcotest.run "lint"
    [ ( "rules",
        [ Alcotest.test_case "D001 hashtbl order" `Quick test_d001_hashtbl;
          Alcotest.test_case "D001 ordered ops ok" `Quick test_d001_allows_ordered_ops;
          Alcotest.test_case "D002 ambient random" `Quick test_d002_random;
          Alcotest.test_case "D003 untyped aborts" `Quick test_d003_aborts;
          Alcotest.test_case "D004 wall clock" `Quick test_d004_wall_clock;
          Alcotest.test_case "D005 poly compare" `Quick test_d005_poly_compare ] );
      ( "scoping",
        [ Alcotest.test_case "D003 protocol layers" `Quick
            test_scope_d003_only_protocol_layers;
          Alcotest.test_case "D002 rng exempt" `Quick test_scope_d002_rng_exempt;
          Alcotest.test_case "D004 obs/bench exempt" `Quick
            test_scope_d004_obs_and_bench_exempt;
          Alcotest.test_case "absolute paths" `Quick test_scope_absolute_paths;
          Alcotest.test_case "--all-rules" `Quick test_all_rules_overrides_scope ] );
      ( "suppressions",
        [ Alcotest.test_case "same and next line" `Quick
            test_suppression_same_and_next_line;
          Alcotest.test_case "rule specific" `Quick test_suppression_is_rule_specific;
          Alcotest.test_case "reason required" `Quick test_suppression_requires_reason;
          Alcotest.test_case "no leak" `Quick test_suppression_does_not_leak ] );
      ( "driver",
        [ Alcotest.test_case "parse error" `Quick test_parse_error;
          Alcotest.test_case "sorted findings" `Quick
            test_findings_sorted_and_positioned;
          Alcotest.test_case "json round trip" `Quick test_json_report_round_trips;
          Alcotest.test_case "rule table" `Quick test_rule_table_complete ] ) ]

(* Tests for the Nibble family and the nearly most balanced sparse cut
   (Theorem 3): parameter formulas, the j-sequence, single nibbles on
   planted instances, ParallelNibble's overlap machinery, Partition's
   balance/conductance guarantees, and the baselines. *)

module Graph = Dex_graph.Graph
module Metrics = Dex_graph.Metrics
module Gen = Dex_graph.Generators
module Params = Dex_sparsecut.Params
module Nibble = Dex_sparsecut.Nibble
module Pn = Dex_sparsecut.Parallel_nibble
module Partition = Dex_sparsecut.Partition
module Baselines = Dex_sparsecut.Baselines
module Exact = Dex_spectral.Exact
module Rng = Dex_util.Rng

let mk_params ?(preset = Params.Practical) phi m = Params.make ~preset ~phi ~m ()

(* ---------- params ---------- *)

let test_params_formulas_theory () =
  let p = mk_params ~preset:Params.Theory (1.0 /. 20.0) 1000 in
  (* t0 = 49·ln(1000·e²)/φ² *)
  let expected_t0 = Float.ceil (49.0 *. log (1000.0 *. exp 2.0) /. (0.05 *. 0.05)) in
  Alcotest.(check int) "t0" (int_of_float expected_t0) p.Params.t0;
  Alcotest.(check int) "ell = ceil log2 m" 10 p.Params.ell;
  let expected_gamma = 5.0 *. 0.05 /. (7.0 *. 7.0 *. 8.0 *. log (1000.0 *. exp 4.0)) in
  Alcotest.(check (float 1e-12)) "gamma" expected_gamma p.Params.gamma;
  let expected_f = (0.05 ** 3.0) /. (144.0 *. (log (1000.0 *. exp 4.0) ** 2.0)) in
  Alcotest.(check (float 1e-15)) "f(phi)" expected_f p.Params.f_phi

let test_params_eps_b_halves () =
  let p = mk_params 0.05 1000 in
  for b = 1 to p.Params.ell - 1 do
    let r = Params.eps_b p b /. Params.eps_b p (b + 1) in
    Alcotest.(check (float 1e-9)) "eps_b ratio 2" 2.0 r
  done;
  Alcotest.check_raises "b out of range" (Invalid_argument "Params.eps_b: b out of range")
    (fun () -> ignore (Params.eps_b p 0))

let test_params_validation () =
  Alcotest.check_raises "phi too large"
    (Invalid_argument "Params.make: phi must be in (0, 1/12]") (fun () ->
      ignore (mk_params 0.2 100));
  Alcotest.check_raises "phi zero" (Invalid_argument "Params.make: phi must be in (0, 1/12]")
    (fun () -> ignore (mk_params 0.0 100))

let test_params_caps () =
  let p = mk_params 0.05 1_000_000 in
  Alcotest.(check bool) "practical t0 capped" true (p.Params.t0 <= 20_000);
  let copies = Params.parallel_copies p ~volume:2_000_000 in
  Alcotest.(check bool) "copies within cap" true (copies >= 1 && copies <= p.Params.parallel_cap);
  let iters = Params.partition_iterations p ~volume:2_000_000 ~p:0.01 in
  Alcotest.(check bool) "iterations within cap" true (iters >= 1 && iters <= p.Params.partition_cap);
  let w = Params.overlap_bound p ~volume:2_000_000 in
  Alcotest.(check int) "w = 10 ceil ln vol" (10 * 15) w

let test_h_inverse_roundtrip () =
  let n = 1024 in
  let theta = 0.3 in
  (* h_inverse(h(θ)) = θ: the ladder φ_i = h⁻¹(φ_{i-1}) inverts h *)
  Alcotest.(check (float 1e-9)) "roundtrip" theta (Params.h_inverse ~n (Params.h ~n theta));
  Alcotest.(check bool) "h increasing" true (Params.h ~n 0.4 > Params.h ~n 0.3);
  Alcotest.(check bool) "h_inverse contracts small θ" true (Params.h_inverse ~n 0.1 < 0.1)

(* the intended identity test, spelled directly *)
let test_sweep_schedule () =
  let p = mk_params 0.05 1000 in
  (* practical stride 16: early window plus every 16th step *)
  Alcotest.(check bool) "early window" true (Params.should_sweep p 7);
  Alcotest.(check bool) "stride multiple" true (Params.should_sweep p 160);
  Alcotest.(check bool) "skipped step" false (Params.should_sweep p 161);
  let theory = mk_params ~preset:Params.Theory 0.05 1000 in
  Alcotest.(check bool) "theory checks every step" true (Params.should_sweep theory 161)

let test_relaxed_factor_presets () =
  let practical = mk_params 0.05 1000 in
  let theory = mk_params ~preset:Params.Theory 0.05 1000 in
  Alcotest.(check (float 1e-9)) "practical 3" 3.0 practical.Params.c1_relaxed_factor;
  Alcotest.(check (float 1e-9)) "theory 12 (the paper's C.1-star)" 12.0
    theory.Params.c1_relaxed_factor

let test_practical_output_within_3phi () =
  (* with the practical preset every non-empty output obeys the
     tightened C.1-star: conductance <= 3 phi *)
  let rng = Rng.create 77 in
  let g = Gen.connectivize rng (Gen.gnp rng ~n:50 ~p:0.15) in
  let phi = 1.0 /. 20.0 in
  let params = mk_params phi (Graph.num_edges g) in
  for seed = 1 to 6 do
    let outcome = Nibble.approximate params g ~src:(seed * 7 mod 50) ~b:1 in
    match outcome.Nibble.result with
    | None -> ()
    | Some cut ->
      Alcotest.(check bool) "<= 3 phi" true (cut.Nibble.conductance <= (3.0 *. phi) +. 1e-9)
  done

let test_h_identity () =
  let n = 512 in
  let theta = 0.12 in
  let lf = log (float_of_int n) in
  Alcotest.(check (float 1e-9)) "h" ((theta ** (1.0 /. 3.0)) *. (lf ** (5.0 /. 3.0)))
    (Params.h ~n theta);
  Alcotest.(check (float 1e-9)) "h_inverse" (theta ** 3.0 /. (lf ** 5.0))
    (Params.h_inverse ~n theta)

(* ---------- single nibbles ---------- *)

let test_nibble_finds_planted_cut () =
  let g = Gen.barbell ~clique:16 ~bridge:0 in
  let params = mk_params (1.0 /. 16.0) (Graph.num_edges g) in
  let outcome = Nibble.approximate params g ~src:0 ~b:3 in
  match outcome.Nibble.result with
  | None -> Alcotest.fail "nibble should find the barbell cut"
  | Some cut ->
    Alcotest.(check bool) "conductance within 12φ" true
      (cut.Nibble.conductance <= 12.0 /. 16.0 +. 1e-9);
    Alcotest.(check bool) "nontrivial" true (Array.length cut.Nibble.vertices >= 2)

let test_nibble_matches_exact_variant () =
  (* both variants find sparse cuts on the same instance *)
  let g = Gen.barbell ~clique:12 ~bridge:2 in
  let params = mk_params (1.0 /. 16.0) (Graph.num_edges g) in
  let a = Nibble.nibble params g ~src:0 ~b:2 in
  let b = Nibble.approximate params g ~src:0 ~b:2 in
  Alcotest.(check bool) "exact finds" true (a.Nibble.result <> None);
  Alcotest.(check bool) "approximate finds" true (b.Nibble.result <> None)

let test_nibble_cut_conductance_bound () =
  (* every non-empty output satisfies Φ(C) ≤ 12φ (C.1 or C.1-star) *)
  let rng = Rng.create 31 in
  for seed = 1 to 8 do
    let g = Gen.connectivize rng (Gen.gnp rng ~n:40 ~p:0.1) in
    let params = mk_params (1.0 /. 14.0) (Graph.num_edges g) in
    let src = seed mod 40 in
    let outcome = Nibble.approximate params g ~src ~b:(1 + (seed mod 3)) in
    match outcome.Nibble.result with
    | None -> ()
    | Some cut ->
      Alcotest.(check bool) "≤ 12φ" true (cut.Nibble.conductance <= 12.0 /. 14.0 +. 1e-9);
      (* C.3: volume ceiling *)
      Alcotest.(check bool) "volume ceiling" true
        (12 * cut.Nibble.volume <= 11 * Graph.total_volume g + 12)
  done

let test_nibble_participants_cover_cut () =
  let g = Gen.barbell ~clique:10 ~bridge:0 in
  let params = mk_params (1.0 /. 16.0) (Graph.num_edges g) in
  let outcome = Nibble.approximate params g ~src:0 ~b:2 in
  (match outcome.Nibble.result with
  | None -> Alcotest.fail "expected cut"
  | Some cut ->
    let members = Hashtbl.create 32 in
    Array.iter (fun v -> Hashtbl.replace members v ()) outcome.Nibble.participants;
    Array.iter
      (fun v -> Alcotest.(check bool) "cut ⊆ participants" true (Hashtbl.mem members v))
      cut.Nibble.vertices);
  Alcotest.(check bool) "rounds positive" true (outcome.Nibble.rounds > 0);
  Alcotest.(check bool) "steps ≤ t0" true (outcome.Nibble.steps_executed <= params.Params.t0)

let test_participating_edges_incident () =
  let g = Gen.cycle 10 in
  let params = mk_params (1.0 /. 16.0) (Graph.num_edges g) in
  let outcome = Nibble.approximate params g ~src:0 ~b:1 in
  let edges = Nibble.participating_edges g outcome in
  let members = Hashtbl.create 32 in
  Array.iter (fun v -> Hashtbl.replace members v ()) outcome.Nibble.participants;
  List.iter
    (fun (u, v) ->
      Alcotest.(check bool) "incident" true (Hashtbl.mem members u || Hashtbl.mem members v);
      Alcotest.(check bool) "normalized" true (u <= v))
    edges;
  (* no duplicates *)
  let sorted = List.sort compare edges in
  Alcotest.(check int) "deduplicated" (List.length sorted)
    (List.length (List.sort_uniq compare sorted))

let test_nibble_on_isolated_vertex () =
  let g = Graph.of_edges ~n:3 [ (1, 2) ] in
  let params = mk_params (1.0 /. 16.0) 4 in
  let outcome = Nibble.approximate params g ~src:0 ~b:1 in
  Alcotest.(check bool) "no cut from isolated src" true (outcome.Nibble.result = None)

(* Lemma 3: Vol(Z_{u,phi,b}) <= (t0+1)/(2 eps_b), where Z is the set
   of start vertices whose walk puts rho_t(u) >= 2 eps_b mass on u at
   some t <= t0. Verified exhaustively on a small graph with a custom
   (shortened) walk length — eps_b rescales with t0 through the record
   field, so the inequality is tested in its exact form. *)
let test_lemma3_z_volume_bound () =
  let rng = Rng.create 83 in
  let g = Gen.connectivize rng (Gen.gnp rng ~n:18 ~p:0.25) in
  let base = mk_params (1.0 /. 16.0) (Graph.num_edges g) in
  let params = { base with Params.t0 = 12 } in
  let b = 2 in
  let eps = Params.eps_b params b in
  let t0 = params.Params.t0 in
  (* all walks from all starts, exact (un-truncated) *)
  let walks =
    Array.init 18 (fun v ->
        let p = ref (Array.init 18 (fun u -> if u = v then 1.0 else 0.0)) in
        Array.init (t0 + 1) (fun t ->
            if t = 0 then !p
            else begin
              p := Dex_spectral.Walk.step_dense g !p;
              !p
            end))
  in
  for u = 0 to 17 do
    let z_volume = ref 0 in
    for v = 0 to 17 do
      let member = ref false in
      for t = 0 to t0 do
        let rho = walks.(v).(t).(u) /. float_of_int (max 1 (Graph.degree g u)) in
        if rho >= 2.0 *. eps then member := true
      done;
      if !member then z_volume := !z_volume + Graph.degree g v
    done;
    let bound = float_of_int (t0 + 1) /. (2.0 *. eps) in
    Alcotest.(check bool)
      (Printf.sprintf "Vol(Z_u) for u=%d: %d <= %.1f" u !z_volume bound)
      true
      (float_of_int !z_volume <= bound)
  done

let test_c3_volume_floor () =
  (* any returned cut respects the C.3 floor Vol >= (5/7) 2^{b-1} *)
  let g = Gen.barbell ~clique:16 ~bridge:0 in
  let params = mk_params (1.0 /. 16.0) (Graph.num_edges g) in
  List.iter
    (fun b ->
      let outcome = Nibble.approximate params g ~src:0 ~b in
      match outcome.Nibble.result with
      | None -> ()
      | Some cut ->
        Alcotest.(check bool)
          (Printf.sprintf "b=%d floor" b)
          true
          (float_of_int cut.Nibble.volume >= 5.0 /. 7.0 *. (2.0 ** float_of_int (b - 1))))
    [ 1; 3; 5; 7 ]

(* ---------- parallel nibble ---------- *)

let test_random_nibble_runs () =
  let rng = Rng.create 17 in
  let g = Gen.dumbbell rng ~n1:30 ~n2:30 ~d:4 ~bridges:1 in
  let params = mk_params (1.0 /. 16.0) (Graph.num_edges g) in
  let outcome = Pn.random_nibble params g rng in
  Alcotest.(check bool) "b in range" true (outcome.Nibble.b >= 1 && outcome.Nibble.b <= params.Params.ell);
  Alcotest.(check bool) "src in range" true
    (outcome.Nibble.src >= 0 && outcome.Nibble.src < Graph.num_vertices g)

let test_parallel_nibble_union_volume () =
  let rng = Rng.create 19 in
  let g = Gen.dumbbell rng ~n1:30 ~n2:30 ~d:4 ~bridges:1 in
  let params = mk_params (1.0 /. 16.0) (Graph.num_edges g) in
  let r = Pn.run ~k:4 params g rng in
  Alcotest.(check int) "copies" 4 r.Pn.copies;
  if not r.Pn.aborted then begin
    let vol = Graph.volume g r.Pn.cut in
    Alcotest.(check bool) "≤ 23/24 Vol" true (24 * vol <= 23 * Graph.total_volume g)
  end;
  Alcotest.(check bool) "rounds positive" true (r.Pn.rounds > 0);
  Alcotest.(check int) "all nibbles recorded" 4 (List.length r.Pn.nibbles)

let test_parallel_nibble_overlap_detection () =
  (* many copies on a tiny graph force heavy P-star overlap *)
  let g = Gen.barbell ~clique:6 ~bridge:0 in
  let rng = Rng.create 23 in
  let params = mk_params (1.0 /. 16.0) (Graph.num_edges g) in
  let r = Pn.run ~k:200 params g rng in
  Alcotest.(check bool) "overlap observed" true (r.Pn.max_overlap > 10);
  (* w = 10·ceil(ln Vol) ≈ 40: 200 copies on 32 edges must abort *)
  Alcotest.(check bool) "aborted" true r.Pn.aborted;
  Alcotest.(check (array int)) "empty cut on abort" [||] r.Pn.cut

(* ---------- partition (Theorem 3) ---------- *)

let test_partition_balanced_cut_dumbbell () =
  let rng = Rng.create 29 in
  let g = Gen.dumbbell rng ~n1:60 ~n2:60 ~d:6 ~bridges:2 in
  let params = mk_params (1.0 /. 16.0) (Graph.num_edges g) in
  let r = Partition.run params g rng in
  Alcotest.(check bool) "found" true (Array.length r.Partition.cut > 0);
  (* Theorem 3: bal(C) ≥ min(b/2, 1/48); planted b ≈ 1/2 *)
  Alcotest.(check bool) "balance ≥ 1/48" true (r.Partition.balance >= 1.0 /. 48.0);
  (* conductance within h(φ) = φ^{1/3}·log^{5/3} n (generous) *)
  let bound = Params.h ~n:(Graph.num_vertices g) (1.0 /. 16.0) in
  Alcotest.(check bool) "conductance bounded" true (r.Partition.conductance <= bound)

let test_partition_unbalanced_planted_cut () =
  let rng = Rng.create 31 in
  (* balance b ≈ 60/(60+300) = 1/6; guarantee is ≥ min(b/2, 1/48) = 1/48 *)
  let g = Gen.dumbbell rng ~n1:60 ~n2:300 ~d:6 ~bridges:2 in
  let params = mk_params (1.0 /. 16.0) (Graph.num_edges g) in
  let r = Partition.run params g rng in
  Alcotest.(check bool) "found" true (Array.length r.Partition.cut > 0);
  Alcotest.(check bool) "balance ≥ 1/48" true (r.Partition.balance >= 1.0 /. 48.0)

let test_partition_volume_ceiling () =
  let rng = Rng.create 37 in
  let g = Gen.cliques_chain ~cliques:6 ~size:10 in
  let params = mk_params (1.0 /. 16.0) (Graph.num_edges g) in
  let r = Partition.run params g rng in
  let vol = Graph.volume g r.Partition.cut in
  Alcotest.(check bool) "Vol(C) ≤ 47/48 Vol(V)" true (48 * vol <= 47 * Graph.total_volume g)

let test_partition_expander_no_false_positive () =
  let rng = Rng.create 41 in
  let g = Gen.random_regular rng ~n:128 ~d:8 in
  let params = mk_params (1.0 /. 16.0) (Graph.num_edges g) in
  let r = Partition.run params g rng in
  (* Theorem 3 case 2: ∅ or a cut within the h bound *)
  if Array.length r.Partition.cut > 0 then begin
    let bound = Params.h ~n:128 (1.0 /. 16.0) in
    Alcotest.(check bool) "within h bound" true (r.Partition.conductance <= bound)
  end

let test_partition_empty_graph () =
  let g = Graph.empty 5 in
  let params = mk_params (1.0 /. 16.0) 1 in
  let r = Partition.run params g (Rng.create 1) in
  Alcotest.(check bool) "certified" true (Partition.certified_no_sparse_cut r);
  Alcotest.(check int) "zero rounds" 0 r.Partition.rounds

let test_partition_respects_most_balanced_reference () =
  (* on a small graph compare against the exact most balanced cut *)
  let g = Gen.barbell ~clique:8 ~bridge:0 in
  let phi = 1.0 /. 16.0 in
  let params = mk_params phi (Graph.num_edges g) in
  let r = Partition.run params g (Rng.create 43) in
  match Exact.most_balanced_sparse_cut g ~phi with
  | None -> Alcotest.fail "barbell must have a sparse cut"
  | Some (b, _) ->
    Alcotest.(check bool) "Theorem 3 balance" true
      (r.Partition.balance >= Float.min (b /. 2.0) (1.0 /. 48.0) -. 1e-9)

(* ---------- run_verified (Las Vegas wrapper) ---------- *)

let test_run_verified_accepts_dumbbell () =
  let rng = Rng.create 53 in
  let g = Gen.dumbbell rng ~n1:60 ~n2:60 ~d:6 ~bridges:2 in
  let phi = 1.0 /. 16.0 in
  let params = mk_params phi (Graph.num_edges g) in
  let bound = Params.h ~n:(Graph.num_vertices g) phi in
  match Partition.run_verified ~attempts:3 ~bound params g rng with
  | Error _ -> Alcotest.fail "dumbbell run should certify within 3 attempts"
  | Ok o ->
    Alcotest.(check bool) "acceptable" true (Partition.acceptable ~bound o.Partition.value);
    Alcotest.(check bool) "attempts in budget" true
      (o.Partition.attempts >= 1 && o.Partition.attempts <= 3);
    Alcotest.(check bool) "rounds summed" true
      (o.Partition.rounds_total >= o.Partition.value.Partition.rounds)

let test_run_verified_reports_best_on_failure () =
  let rng = Rng.create 59 in
  let g = Gen.dumbbell rng ~n1:40 ~n2:40 ~d:6 ~bridges:2 in
  let params = mk_params (1.0 /. 16.0) (Graph.num_edges g) in
  (* an absurd bound no non-empty cut can meet: every attempt fails,
     but the wrapper must return its best attempt with full context *)
  match Partition.run_verified ~attempts:2 ~bound:1e-9 params g rng with
  | Ok o when Partition.certified_no_sparse_cut o.Partition.value ->
    (* certified-empty is acceptable by definition; nothing to check *)
    ()
  | Ok _ -> Alcotest.fail "a non-empty cut cannot meet a 1e-9 bound"
  | Error e ->
    Alcotest.(check int) "used full budget" 2 e.Partition.attempts;
    Alcotest.(check bool) "best attempt carried" true
      (Array.length e.Partition.value.Partition.cut > 0);
    Alcotest.(check bool) "rounds accumulated" true
      (e.Partition.rounds_total >= e.Partition.value.Partition.rounds)

let test_run_verified_validation () =
  let g = Gen.barbell ~clique:6 ~bridge:0 in
  let params = mk_params (1.0 /. 16.0) (Graph.num_edges g) in
  Alcotest.check_raises "attempts must be >= 1"
    (Invalid_argument "Partition.run_verified: attempts must be >= 1")
    (fun () ->
      ignore (Partition.run_verified ~attempts:0 ~bound:1.0 params g (Rng.create 1)))

(* ---------- ACL personalized PageRank ---------- *)

module Ppr = Dex_sparsecut.Pagerank_cut

let test_ppr_invariants () =
  let rng = Rng.create 91 in
  let g = Gen.connectivize rng (Gen.gnp rng ~n:40 ~p:0.12) in
  let m = Graph.num_edges g in
  let eps = 1.0 /. (20.0 *. float_of_int m) in
  let p, r, pushes = Ppr.approximate_pagerank ~eps g ~src:5 in
  Alcotest.(check bool) "pushed" true (pushes > 0);
  (* termination invariant: every residual is below eps·deg *)
  Hashtbl.iter
    (fun v rv ->
      Alcotest.(check bool)
        (Printf.sprintf "residual at %d" v)
        true
        (rv < eps *. float_of_int (Graph.degree g v) +. 1e-12))
    r;
  (* mass conservation: p + r sums to 1 *)
  let total =
    Hashtbl.fold (fun _ x acc -> acc +. x) p 0.0
    +. Hashtbl.fold (fun _ x acc -> acc +. x) r 0.0
  in
  Alcotest.(check (float 1e-9)) "mass" 1.0 total

let test_ppr_finds_barbell_cut () =
  let g = Gen.barbell ~clique:12 ~bridge:0 in
  match Ppr.run g ~src:0 with
  | None -> Alcotest.fail "expected a cut"
  | Some c ->
    Alcotest.(check bool) "sparse" true (c.Ppr.conductance < 0.05);
    Alcotest.(check int) "the seed clique" 12 (Array.length c.Ppr.cut);
    Alcotest.(check bool) "support local" true (c.Ppr.support <= 24)

let test_ppr_validation () =
  let g = Gen.path 4 in
  Alcotest.check_raises "alpha" (Invalid_argument "Pagerank_cut: alpha in (0,1)")
    (fun () -> ignore (Ppr.run ~alpha:1.5 g ~src:0))

(* ---------- executed walk protocol ---------- *)

module Wp = Dex_sparsecut.Walk_protocol
module Walk = Dex_spectral.Walk
module Network = Dex_congest.Network
module Rounds = Dex_congest.Rounds

let test_walk_protocol_matches_central () =
  let rng = Rng.create 71 in
  let g = Gen.connectivize rng (Gen.gnp rng ~n:30 ~p:0.15) in
  let eps = 1e-5 and steps = 8 in
  let net = Network.create g (Rounds.create ()) in
  let pairs, rounds = Wp.run net ~src:3 ~eps ~steps in
  Alcotest.(check int) "rounds = steps + 1" (steps + 1) rounds;
  let protocol = Wp.distribution_table pairs in
  let central = (Walk.truncated_walk g ~src:3 ~eps ~steps).(steps) in
  Alcotest.(check int) "same support" (Hashtbl.length central) (Hashtbl.length protocol);
  Hashtbl.iter
    (fun v x ->
      let y = try Hashtbl.find protocol v with Not_found -> 0.0 in
      Alcotest.(check (float 1e-12)) (Printf.sprintf "mass at %d" v) x y)
    central

let test_walk_protocol_with_self_loops () =
  (* the saturated-subgraph case: self-loops keep their share *)
  let g = Graph.of_edges ~n:3 [ (0, 1); (1, 2); (0, 0) ] in
  let net = Network.create g (Rounds.create ()) in
  let pairs, _ = Wp.run net ~src:0 ~eps:0.0 ~steps:1 in
  let tbl = Wp.distribution_table pairs in
  (* deg 0 = 2 (loop + edge): stays 1/2 + loop 1/4 = 3/4; sends 1/4 *)
  Alcotest.(check (float 1e-12)) "stay" 0.75 (Hashtbl.find tbl 0);
  Alcotest.(check (float 1e-12)) "move" 0.25 (Hashtbl.find tbl 1)

let test_walk_protocol_charges_ledger () =
  let g = Gen.cycle 8 in
  let ledger = Rounds.create () in
  let net = Network.create g ledger in
  let _ = Wp.run net ~src:0 ~eps:1e-6 ~steps:5 in
  Alcotest.(check int) "ledger charged" 6 (Rounds.total ledger)

(* ---------- sequential ST reference ---------- *)

module St = Dex_sparsecut.St_reference

let test_st_reference_dumbbell () =
  let rng = Rng.create 59 in
  let g = Gen.dumbbell rng ~n1:50 ~n2:50 ~d:6 ~bridges:1 in
  let params = mk_params (1.0 /. 16.0) (Graph.num_edges g) in
  let r = St.run params g (Rng.create 61) in
  Alcotest.(check bool) "found a cut" true (Array.length r.St.cut > 0);
  Alcotest.(check bool) "volume ceiling" true
    (48 * Graph.volume g r.St.cut <= 47 * Graph.total_volume g);
  Alcotest.(check bool) "rounds accumulate" true (r.St.rounds > 0);
  Alcotest.(check bool) "nibbles counted" true (r.St.nibbles >= 1)

let test_st_reference_empty () =
  let params = mk_params (1.0 /. 16.0) 1 in
  let r = St.run params (Graph.empty 4) (Rng.create 1) in
  Alcotest.(check int) "no cut" 0 (Array.length r.St.cut);
  Alcotest.(check int) "no rounds" 0 r.St.rounds

let test_st_reference_max_nibbles () =
  let rng = Rng.create 67 in
  let g = Gen.cliques_chain ~cliques:6 ~size:8 in
  let params = mk_params (1.0 /. 16.0) (Graph.num_edges g) in
  let r = St.run ~max_nibbles:2 params g rng in
  Alcotest.(check bool) "bounded" true (r.St.nibbles <= 2)

(* ---------- baselines ---------- *)

let test_spectral_baseline_dumbbell () =
  let rng = Rng.create 47 in
  let g = Gen.dumbbell rng ~n1:40 ~n2:40 ~d:4 ~bridges:1 in
  match Baselines.spectral g (Rng.create 48) with
  | None -> Alcotest.fail "spectral should always return a cut"
  | Some c ->
    Alcotest.(check bool) "sparse" true (c.Baselines.conductance < 0.1);
    Alcotest.(check bool) "balanced here" true (c.Baselines.balance > 0.3)

let test_dsmp_baseline_runs () =
  let rng = Rng.create 53 in
  let g = Gen.dumbbell rng ~n1:40 ~n2:40 ~d:4 ~bridges:1 in
  match Baselines.dsmp ~walk_length:200 g (Rng.create 54) with
  | None -> Alcotest.fail "dsmp returns a cut on a connected graph"
  | Some c ->
    Alcotest.(check int) "rounds = walk length" 200 c.Baselines.rounds;
    Alcotest.(check bool) "conductance recorded" true (Float.is_finite c.Baselines.conductance)

let prop_nibble_output_is_sparse =
  QCheck.Test.make ~name:"non-empty nibble output obeys C.1/C.1-star" ~count:25
    QCheck.(pair (int_range 10 40) (int_bound 10_000))
    (fun (n, seed) ->
      let rng = Rng.create seed in
      let g = Gen.connectivize rng (Gen.gnp rng ~n ~p:0.15) in
      let params = mk_params (1.0 /. 13.0) (max 1 (Graph.num_edges g)) in
      let outcome = Nibble.approximate params g ~src:(seed mod n) ~b:1 in
      match outcome.Nibble.result with
      | None -> true
      | Some cut -> cut.Nibble.conductance <= (12.0 /. 13.0) +. 1e-9)

let () =
  Alcotest.run "sparsecut"
    [ ( "params",
        [ Alcotest.test_case "theory formulas" `Quick test_params_formulas_theory;
          Alcotest.test_case "eps_b halves" `Quick test_params_eps_b_halves;
          Alcotest.test_case "validation" `Quick test_params_validation;
          Alcotest.test_case "caps" `Quick test_params_caps;
          Alcotest.test_case "sweep schedule" `Quick test_sweep_schedule;
          Alcotest.test_case "relaxed factor presets" `Quick test_relaxed_factor_presets;
          Alcotest.test_case "practical 3phi bound" `Quick test_practical_output_within_3phi;
          Alcotest.test_case "h / h_inverse identity" `Quick test_h_identity;
          Alcotest.test_case "h roundtrip" `Quick test_h_inverse_roundtrip ] );
      ( "nibble",
        [ Alcotest.test_case "finds planted cut" `Quick test_nibble_finds_planted_cut;
          Alcotest.test_case "variants agree" `Quick test_nibble_matches_exact_variant;
          Alcotest.test_case "conductance bound" `Quick test_nibble_cut_conductance_bound;
          Alcotest.test_case "participants cover cut" `Quick test_nibble_participants_cover_cut;
          Alcotest.test_case "participating edges" `Quick test_participating_edges_incident;
          Alcotest.test_case "isolated source" `Quick test_nibble_on_isolated_vertex;
          Alcotest.test_case "Lemma 3 volume bound" `Quick test_lemma3_z_volume_bound;
          Alcotest.test_case "C.3 volume floor" `Quick test_c3_volume_floor;
          QCheck_alcotest.to_alcotest prop_nibble_output_is_sparse ] );
      ( "parallel-nibble",
        [ Alcotest.test_case "random nibble" `Quick test_random_nibble_runs;
          Alcotest.test_case "union volume ceiling" `Quick test_parallel_nibble_union_volume;
          Alcotest.test_case "overlap abort" `Quick test_parallel_nibble_overlap_detection ] );
      ( "partition",
        [ Alcotest.test_case "balanced dumbbell" `Quick test_partition_balanced_cut_dumbbell;
          Alcotest.test_case "unbalanced dumbbell" `Quick test_partition_unbalanced_planted_cut;
          Alcotest.test_case "volume ceiling" `Quick test_partition_volume_ceiling;
          Alcotest.test_case "expander case" `Quick test_partition_expander_no_false_positive;
          Alcotest.test_case "empty graph" `Quick test_partition_empty_graph;
          Alcotest.test_case "balance vs exact reference" `Quick
            test_partition_respects_most_balanced_reference ] );
      ( "run-verified",
        [ Alcotest.test_case "accepts dumbbell" `Quick test_run_verified_accepts_dumbbell;
          Alcotest.test_case "best attempt on failure" `Quick
            test_run_verified_reports_best_on_failure;
          Alcotest.test_case "validation" `Quick test_run_verified_validation ] );
      ( "pagerank",
        [ Alcotest.test_case "push invariants" `Quick test_ppr_invariants;
          Alcotest.test_case "finds barbell cut" `Quick test_ppr_finds_barbell_cut;
          Alcotest.test_case "validation" `Quick test_ppr_validation ] );
      ( "walk-protocol",
        [ Alcotest.test_case "matches central computation" `Quick
            test_walk_protocol_matches_central;
          Alcotest.test_case "self loops" `Quick test_walk_protocol_with_self_loops;
          Alcotest.test_case "ledger" `Quick test_walk_protocol_charges_ledger ] );
      ( "st-reference",
        [ Alcotest.test_case "dumbbell" `Quick test_st_reference_dumbbell;
          Alcotest.test_case "empty" `Quick test_st_reference_empty;
          Alcotest.test_case "max nibbles" `Quick test_st_reference_max_nibbles ] );
      ( "baselines",
        [ Alcotest.test_case "spectral dumbbell" `Quick test_spectral_baseline_dumbbell;
          Alcotest.test_case "dsmp runs" `Quick test_dsmp_baseline_runs ] ) ]

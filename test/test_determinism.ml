(* Determinism regression tests (the dynamic side of the dex_lint
   rules) and schedule-permutation conformance checks.

   Determinism: rebuilding a graph from a shuffled, endpoint-flipped
   edge list yields the same internal representation (adjacency is
   sorted at build time), so a schedule-insensitive algorithm must
   return bit-identical results on it. A regression here means some
   code path started observing hash order, ambient randomness or
   another representation artifact.

   Conformance: Dex_congest.Conformance replays protocols under a
   permuted activation/delivery schedule; conformant protocols pass,
   and deliberately racy or budget-violating ones are detected. *)

module Graph = Dex_graph.Graph
module Gen = Dex_graph.Generators
module Rng = Dex_util.Rng
module Decomposition = Dex_decomp.Decomposition
module Enum = Dex_triangle.Expander_enum
module Conformance = Dex_congest.Conformance

(* shuffled edge list, each edge flipped pseudo-randomly: a different
   presentation of the same graph *)
let permuted_copy seed g =
  let rng = Rng.create seed in
  let edges = Array.of_list (Graph.edges g) in
  Rng.shuffle rng edges;
  let edges = Array.map (fun (u, v) -> if Rng.bool rng then (v, u) else (u, v)) edges in
  Graph.of_edge_array ~n:(Graph.num_vertices g) edges

let test_graph seed =
  let rng = Rng.create seed in
  Gen.connectivize rng (Gen.gnp rng ~n:96 ~p:0.08)

(* ---------- decomposition determinism ---------- *)

let check_same_partition msg a b =
  Alcotest.(check (list (array int)))
    (msg ^ ": parts") a.Decomposition.parts b.Decomposition.parts;
  Alcotest.(check (array int)) (msg ^ ": part_of") a.Decomposition.part_of
    b.Decomposition.part_of;
  Alcotest.(check int) (msg ^ ": rounds") a.Decomposition.stats.Decomposition.rounds
    b.Decomposition.stats.Decomposition.rounds;
  Alcotest.(check int) (msg ^ ": removed edges")
    (List.length a.Decomposition.removed_edges)
    (List.length b.Decomposition.removed_edges)

let test_decompose_repr_independent () =
  let g = test_graph 41 in
  let g' = permuted_copy 42 g in
  let run h = Decomposition.run ~epsilon:(1. /. 6.) ~k:2 h (Rng.create 7) in
  check_same_partition "permuted adjacency" (run g) (run g');
  check_same_partition "same graph twice" (run g) (run g)

let test_decompose_seed_sensitivity_is_sole_source () =
  (* same representation, same seed, three times in a row: any drift
     means hidden global state *)
  let g = test_graph 43 in
  let run () = Decomposition.run ~epsilon:(1. /. 6.) ~k:2 g (Rng.create 11) in
  let a = run () and b = run () and c = run () in
  check_same_partition "run 1 vs 2" a b;
  check_same_partition "run 2 vs 3" b c

(* ---------- triangle enumeration determinism ---------- *)

let tri = Alcotest.(triple int int int)

let test_triangles_repr_independent () =
  let g = test_graph 45 in
  let g' = permuted_copy 46 g in
  let run h = (Enum.run h (Rng.create 9)).Enum.triangles in
  Alcotest.(check (list tri)) "same triangle set" (run g) (run g');
  Alcotest.(check (list tri)) "repeat run" (run g) (run g)

(* ---------- conformance: clean protocols pass ---------- *)

let small_expander seed = Gen.random_regular (Rng.create seed) ~n:24 ~d:4

let test_bfs_conformant () =
  let g = small_expander 50 in
  let r = Conformance.check g ~protocol:(Conformance.bfs ~root:(Dex_graph.Vertex.local 0) g) () in
  Alcotest.(check bool)
    (String.concat "; " (List.map Conformance.describe r.Conformance.violations))
    true (Conformance.ok r);
  Alcotest.(check int) "round counts agree" r.Conformance.rounds_canonical
    r.Conformance.rounds_permuted

let test_leader_conformant () =
  let g = small_expander 51 in
  let r = Conformance.check g ~protocol:(Conformance.leader g) () in
  Alcotest.(check bool)
    (String.concat "; " (List.map Conformance.describe r.Conformance.violations))
    true (Conformance.ok r);
  Alcotest.(check int) "messages agree" r.Conformance.messages_canonical
    r.Conformance.messages_permuted

(* ---------- conformance: races and kernel violations detected ---------- *)

(* adopt the sender of the FIRST inbox message: delivery-order
   dependent by construction *)
type racy_state = { got : int; sent : bool }

let racy_protocol g () =
  let init _ = { got = -1; sent = false } in
  let step ~round:_ ~vertex:v st inbox =
    let v = Dex_graph.Vertex.local_int v in
    let st =
      match inbox with
      | (sender, _) :: _ when st.got < 0 -> { st with got = sender }
      | _ -> st
    in
    if st.sent then (st, [])
    else
      let outbox = ref [] in
      Graph.iter_neighbors g v (fun u -> outbox := (u, [| v |]) :: !outbox);
      ({ st with sent = true }, !outbox)
  in
  let finished states = Array.for_all (fun st -> st.sent && st.got >= 0) states in
  { Conformance.init; step; finished }

let test_race_detected () =
  let g = small_expander 52 in
  let r = Conformance.check g ~protocol:(racy_protocol g) () in
  Alcotest.(check bool) "race reported" true
    (List.exists
       (function Conformance.State_divergence _ -> true | _ -> false)
       r.Conformance.violations)

let one_shot per_vertex () =
  let init _ = false in
  let step ~round:_ ~vertex:v sent _inbox =
    let v = Dex_graph.Vertex.local_int v in
    if sent then (true, []) else (true, per_vertex v)
  in
  let finished states = Array.for_all Fun.id states in
  { Conformance.init; step; finished }

let test_word_budget_audited () =
  let g = small_expander 53 in
  (* dex-lint: allow C001 deliberately over budget to exercise the audit *)
  let wide v = [ ((Graph.neighbors g v).(0), [| v; v |]) ] in
  let r = Conformance.check ~word_size:1 g ~protocol:(one_shot wide) () in
  Alcotest.(check bool) "over-budget message reported" true
    (List.exists
       (function
         | Conformance.Word_budget_exceeded { words = 2; budget = 1; _ } -> true
         | _ -> false)
       r.Conformance.violations)

let test_duplicate_edge_audited () =
  let g = small_expander 54 in
  let twice v =
    let u = (Graph.neighbors g v).(0) in
    [ (u, [| v |]); (u, [| v |]) ]
  in
  let r = Conformance.check g ~protocol:(one_shot twice) () in
  Alcotest.(check bool) "duplicate directed edge reported" true
    (List.exists
       (function Conformance.Duplicate_message _ -> true | _ -> false)
       r.Conformance.violations)

let test_non_neighbor_audited () =
  let g = Gen.path 6 in
  let far v = [ ((v + 3) mod 6, [| v |]) ] in
  let r = Conformance.check g ~protocol:(one_shot far) () in
  Alcotest.(check bool) "non-neighbor send reported" true
    (List.exists
       (function Conformance.Not_a_neighbor _ -> true | _ -> false)
       r.Conformance.violations)

let test_describe_covers_all () =
  let open Conformance in
  let vs =
    [ Word_budget_exceeded
        { run = Canonical; round = 1; vertex = 2; dst = 3; words = 4; budget = 1 };
      Duplicate_message { run = Permuted; round = 1; vertex = 2; dst = 3 };
      Not_a_neighbor { run = Canonical; round = 1; vertex = 2; dst = 3 };
      Round_limit { run = Permuted; executed = 9 };
      State_divergence
        { round = 1; vertex = 2; digest_canonical = 3; digest_permuted = 4 };
      Round_divergence { rounds_canonical = 5; rounds_permuted = 6 } ]
  in
  List.iter (fun v -> Alcotest.(check bool) "non-empty" true (describe v <> "")) vs

let () =
  Alcotest.run "determinism"
    [ ( "representation-independence",
        [ Alcotest.test_case "decomposition" `Quick test_decompose_repr_independent;
          Alcotest.test_case "decomposition repeat" `Quick
            test_decompose_seed_sensitivity_is_sole_source;
          Alcotest.test_case "triangle enumeration" `Quick
            test_triangles_repr_independent ] );
      ( "conformance",
        [ Alcotest.test_case "bfs passes" `Quick test_bfs_conformant;
          Alcotest.test_case "leader passes" `Quick test_leader_conformant;
          Alcotest.test_case "schedule race detected" `Quick test_race_detected;
          Alcotest.test_case "word budget audited" `Quick test_word_budget_audited;
          Alcotest.test_case "duplicate edge audited" `Quick test_duplicate_edge_audited;
          Alcotest.test_case "non-neighbor audited" `Quick test_non_neighbor_audited;
          Alcotest.test_case "describe" `Quick test_describe_covers_all ] ) ]

(* Tests for Dex_graph.Graph and Dex_graph.Metrics: representation
   invariants, the self-loop degree convention, subgraph operators
   G[S] / G{S}, and the cut metrics of the paper's Section 1. *)

module Graph = Dex_graph.Graph
module Metrics = Dex_graph.Metrics
module Gen = Dex_graph.Generators
module Rng = Dex_util.Rng

let triangle_plus_pendant () =
  (* 0-1-2 triangle with a pendant 3 attached to 0 *)
  Graph.of_edges ~n:4 [ (0, 1); (1, 2); (0, 2); (0, 3) ]

let random_graph seed n p =
  let rng = Rng.create seed in
  Gen.gnp rng ~n ~p

(* ---------- construction and degrees ---------- *)

let test_basic_counts () =
  let g = triangle_plus_pendant () in
  Alcotest.(check int) "n" 4 (Graph.num_vertices g);
  Alcotest.(check int) "m" 4 (Graph.num_edges g);
  Alcotest.(check int) "deg 0" 3 (Graph.degree g 0);
  Alcotest.(check int) "deg 3" 1 (Graph.degree g 3);
  Alcotest.(check int) "total volume" 8 (Graph.total_volume g);
  Graph.check g

let test_self_loops_count_one () =
  let g = Graph.of_edges ~n:2 [ (0, 1); (0, 0); (0, 0) ] in
  Alcotest.(check int) "deg with loops" 3 (Graph.degree g 0);
  Alcotest.(check int) "plain degree" 1 (Graph.plain_degree g 0);
  Alcotest.(check int) "self loops" 2 (Graph.self_loops g 0);
  Alcotest.(check int) "edges include loops" 3 (Graph.num_edges g);
  Alcotest.(check int) "volume" 4 (Graph.total_volume g);
  Graph.check g

let test_mem_edge () =
  let g = triangle_plus_pendant () in
  Alcotest.(check bool) "0-1" true (Graph.mem_edge g 0 1);
  Alcotest.(check bool) "1-0" true (Graph.mem_edge g 1 0);
  Alcotest.(check bool) "1-3" false (Graph.mem_edge g 1 3);
  Alcotest.(check bool) "no loop" false (Graph.mem_edge g 0 0)

let test_out_of_range () =
  Alcotest.check_raises "bad endpoint"
    (Invalid_argument "Graph.of_edges: endpoint out of range") (fun () ->
      ignore (Graph.of_edges ~n:2 [ (0, 5) ]))

let test_iter_edges_roundtrip () =
  let g = triangle_plus_pendant () in
  let edges = Graph.edges g in
  Alcotest.(check int) "count" 4 (List.length edges);
  let g2 = Graph.of_edges ~n:4 edges in
  Alcotest.(check int) "same m" (Graph.num_edges g) (Graph.num_edges g2);
  for v = 0 to 3 do
    Alcotest.(check int) "same degree" (Graph.degree g v) (Graph.degree g2 v)
  done

(* ---------- subgraphs ---------- *)

let test_induced_subgraph () =
  let g = triangle_plus_pendant () in
  let sub, mapping = Graph.induced_subgraph g [| 0; 1; 2 |] in
  Alcotest.(check int) "sub n" 3 (Graph.num_vertices sub);
  Alcotest.(check int) "sub m" 3 (Graph.num_edges sub);
  Alcotest.(check (array int)) "mapping" [| 0; 1; 2 |] mapping;
  (* vertex 0 lost its pendant edge: degree drops *)
  Alcotest.(check int) "induced degree drops" 2 (Graph.degree sub 0)

let test_saturated_subgraph_preserves_degrees () =
  let g = triangle_plus_pendant () in
  let sub, mapping = Graph.saturated_subgraph g [| 0; 1; 2 |] in
  Array.iteri
    (fun i v ->
      Alcotest.(check int)
        (Printf.sprintf "degree preserved at %d" v)
        (Graph.degree g v) (Graph.degree sub i))
    mapping;
  Alcotest.(check int) "loop added at cut endpoint" 1 (Graph.self_loops sub 0);
  Graph.check sub

let test_remove_edges_adds_loops () =
  let g = triangle_plus_pendant () in
  let g' = Graph.remove_edges g [ (0, 1); (3, 0) ] in
  Alcotest.(check int) "degree never changes (0)" (Graph.degree g 0) (Graph.degree g' 0);
  Alcotest.(check int) "degree never changes (3)" (Graph.degree g 3) (Graph.degree g' 3);
  Alcotest.(check bool) "edge gone" false (Graph.mem_edge g' 0 1);
  Alcotest.(check int) "loop at 3" 1 (Graph.self_loops g' 3);
  Alcotest.(check int) "plain m" 2 (Graph.num_plain_edges g');
  Graph.check g'

let test_with_self_loops_validation () =
  let g = Gen.path 3 in
  Alcotest.check_raises "length mismatch"
    (Invalid_argument "Graph.with_self_loops: length mismatch") (fun () ->
      ignore (Graph.with_self_loops g [| 1 |]));
  Alcotest.check_raises "negative"
    (Invalid_argument "Graph.with_self_loops: negative at 1") (fun () ->
      ignore (Graph.with_self_loops g [| 0; -1; 0 |]));
  let g' = Graph.with_self_loops g [| 2; 0; 0 |] in
  Alcotest.(check int) "loops added" 2 (Graph.self_loops g' 0);
  Alcotest.(check int) "degree grows" 3 (Graph.degree g' 0)

let test_empty_graph () =
  let g = Graph.empty 4 in
  Alcotest.(check int) "no edges" 0 (Graph.num_edges g);
  Alcotest.(check int) "volume" 0 (Graph.total_volume g);
  Graph.check g

(* ---------- metrics ---------- *)

let test_cut_and_conductance () =
  let g = triangle_plus_pendant () in
  (* S = {3}: one crossing edge, Vol = 1 *)
  Alcotest.(check int) "cut {3}" 1 (Metrics.cut_size g [| 3 |]);
  Alcotest.(check (float 1e-9)) "phi {3}" 1.0 (Metrics.conductance g [| 3 |]);
  (* S = {0,3}: edges 0-1 and 0-2 cross *)
  Alcotest.(check int) "cut {0,3}" 2 (Metrics.cut_size g [| 0; 3 |]);
  Alcotest.(check (float 1e-9)) "phi {0,3}" 0.5 (Metrics.conductance g [| 0; 3 |]);
  Alcotest.(check (float 1e-9)) "balance {0,3}" 0.5 (Metrics.balance g [| 0; 3 |])

let test_conductance_symmetric () =
  let g = random_graph 3 24 0.2 in
  let rng = Rng.create 9 in
  for _ = 1 to 20 do
    let size = 1 + Rng.int rng 22 in
    let s = Rng.sample_without_replacement rng ~n:24 ~k:size in
    let s_bar = Metrics.complement g s in
    let c1 = Metrics.conductance g s and c2 = Metrics.conductance g s_bar in
    if Float.is_finite c1 || Float.is_finite c2 then
      Alcotest.(check (float 1e-9)) "phi(S) = phi(S̄)" c1 c2
  done

let test_components () =
  let g = Graph.of_edges ~n:6 [ (0, 1); (1, 2); (3, 4) ] in
  let comps = Metrics.connected_components g in
  Alcotest.(check int) "3 components" 3 (List.length comps);
  Alcotest.(check (array int)) "largest first" [| 0; 1; 2 |] (List.hd comps);
  Alcotest.(check bool) "not connected" false (Metrics.is_connected g);
  Alcotest.(check bool) "path connected" true (Metrics.is_connected (Gen.path 5))

let test_bfs_and_diameter () =
  let g = Gen.path 10 in
  let dist = Metrics.bfs_distances g 0 in
  Alcotest.(check int) "dist to end" 9 dist.(9);
  Alcotest.(check int) "diameter path" 9 (Metrics.diameter g);
  Alcotest.(check int) "2sweep finds it" 9 (Metrics.diameter_2sweep g);
  Alcotest.(check int) "cycle diameter" 5 (Metrics.diameter (Gen.cycle 10));
  Alcotest.(check int) "complete diameter" 1 (Metrics.diameter (Gen.complete 5));
  Alcotest.(check int) "eccentricity middle" 5 (Metrics.eccentricity g 4)

let test_multi_source_bfs () =
  let g = Gen.path 10 in
  let dist = Metrics.bfs_multi_distances g [| 0; 9 |] in
  Alcotest.(check int) "middle" 4 dist.(4);
  Alcotest.(check int) "near right" 1 dist.(8)

let test_degeneracy () =
  Alcotest.(check int) "tree degeneracy" 1 (Metrics.degeneracy (Gen.binary_tree 4));
  Alcotest.(check int) "K5 degeneracy" 4 (Metrics.degeneracy (Gen.complete 5));
  Alcotest.(check int) "cycle degeneracy" 2 (Metrics.degeneracy (Gen.cycle 8));
  Alcotest.(check int) "grid degeneracy" 2 (Metrics.degeneracy (Gen.grid 5 5))

let test_sparse_cut_predicate () =
  (* one barbell bridge: conductance of a side is tiny, a single
     vertex of K5 is not sparse *)
  let g = Gen.barbell ~clique:5 ~bridge:0 in
  let side = Array.init 5 (fun i -> i) in
  Alcotest.(check bool) "bridge side is a 0.2-sparse cut" true
    (Metrics.is_sparse_cut g ~phi:0.2 side);
  Alcotest.(check bool) "single K5 vertex is not" false
    (Metrics.is_sparse_cut g ~phi:0.2 [| 1 |])

let test_arboricity_bound () =
  (* arboricity(K5) = 3 <= bound = degeneracy = 4; trees have bound 1 *)
  Alcotest.(check int) "K5" 4 (Metrics.arboricity_upper_bound (Gen.complete 5));
  Alcotest.(check int) "tree" 1 (Metrics.arboricity_upper_bound (Gen.binary_tree 4))

let test_fold_vertices_sums_degrees () =
  let g = triangle_plus_pendant () in
  let handshake = Graph.fold_vertices g 0 (fun acc v -> acc + Graph.degree g v) in
  Alcotest.(check int) "handshake lemma" (2 * Graph.num_edges g) handshake

let test_partition_checks () =
  let g = Gen.path 4 in
  Metrics.check_partition g [ [| 0; 1 |]; [| 2; 3 |] ];
  Alcotest.(check int) "inter edges" 1
    (Metrics.inter_component_edges g [ [| 0; 1 |]; [| 2; 3 |] ]);
  Alcotest.check_raises "missing vertex"
    (Invalid_argument "Metrics.check_partition: vertex 3 uncovered") (fun () ->
      Metrics.check_partition g [ [| 0; 1 |]; [| 2 |] ]);
  Alcotest.check_raises "duplicate"
    (Invalid_argument "Metrics.check_partition: vertex appears twice") (fun () ->
      Metrics.check_partition g [ [| 0; 1 |]; [| 1; 2; 3 |] ])

let test_subset_diameter () =
  let g = Gen.cycle 12 in
  Alcotest.(check int) "arc of 4" 3 (Metrics.subset_diameter g [| 0; 1; 2; 3 |])

(* ---------- properties ---------- *)

let graph_gen =
  QCheck.Gen.(
    let* n = int_range 2 24 in
    let* edges =
      list_size (int_range 0 60) (pair (int_range 0 (n - 1)) (int_range 0 (n - 1)))
    in
    return (Graph.of_edges ~n edges))

let arb_graph = QCheck.make graph_gen

let prop_invariants =
  QCheck.Test.make ~name:"graph invariants hold" ~count:200 arb_graph (fun g ->
      Graph.check g;
      true)

let prop_volume_split =
  QCheck.Test.make ~name:"Vol(S) + Vol(S̄) = Vol(V)" ~count:200 arb_graph (fun g ->
      let n = Graph.num_vertices g in
      let s = Array.init (n / 2) (fun i -> i) in
      let s_bar = Metrics.complement g s in
      Graph.volume g s + Graph.volume g s_bar = Graph.total_volume g)

let prop_cut_bounded =
  QCheck.Test.make ~name:"cut ≤ min volume side" ~count:200 arb_graph (fun g ->
      let n = Graph.num_vertices g in
      let s = Array.init (max 1 (n / 2)) (fun i -> i) in
      let cut = Metrics.cut_size g s in
      let vol_s = Graph.volume g s in
      let vol_rest = Graph.total_volume g - vol_s in
      cut <= vol_s && cut <= max cut vol_rest)

let prop_remove_edges_degree_invariant =
  QCheck.Test.make ~name:"remove_edges preserves degrees" ~count:200 arb_graph (fun g ->
      let edges = Graph.edges g in
      let g' = Graph.remove_edges g edges in
      let ok = ref (Graph.num_plain_edges g' = 0) in
      for v = 0 to Graph.num_vertices g - 1 do
        if Graph.degree g v <> Graph.degree g' v then ok := false
      done;
      !ok)

let prop_saturated_degrees =
  QCheck.Test.make ~name:"G{S} preserves degrees" ~count:200 arb_graph (fun g ->
      let n = Graph.num_vertices g in
      let s = Array.init ((n + 1) / 2) (fun i -> i * 2 mod n) in
      let s = Array.of_list (List.sort_uniq compare (Array.to_list s)) in
      let sub, mapping = Graph.saturated_subgraph g s in
      let ok = ref true in
      Array.iteri
        (fun i v -> if Graph.degree sub i <> Graph.degree g v then ok := false)
        mapping;
      !ok)

let prop_components_partition =
  QCheck.Test.make ~name:"components form a partition" ~count:200 arb_graph (fun g ->
      let comps = Metrics.connected_components g in
      Metrics.check_partition g comps;
      Metrics.inter_component_edges g comps = 0)

(* ---------- serialization ---------- *)

module Io = Dex_graph.Graph_io

let test_io_roundtrip () =
  let g = triangle_plus_pendant () in
  let g2 = Io.parse (Io.to_string g) in
  Alcotest.(check int) "n" (Graph.num_vertices g) (Graph.num_vertices g2);
  Alcotest.(check int) "m" (Graph.num_edges g) (Graph.num_edges g2);
  for v = 0 to 3 do
    Alcotest.(check int) "degree" (Graph.degree g v) (Graph.degree g2 v)
  done

let test_io_file_roundtrip () =
  let g = triangle_plus_pendant () in
  let path = Filename.temp_file "dex_graph" ".txt" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      Io.save path g;
      let g2 = Io.load path in
      Alcotest.(check int) "n" (Graph.num_vertices g) (Graph.num_vertices g2);
      Alcotest.(check int) "m" (Graph.num_edges g) (Graph.num_edges g2);
      for v = 0 to 3 do
        Alcotest.(check int) "degree" (Graph.degree g v) (Graph.degree g2 v)
      done)

let test_io_parse_features () =
  let g = Io.parse "# header\nn 5\n0 1\n1\t2\n\n3 3\n" in
  Alcotest.(check int) "n declared" 5 (Graph.num_vertices g);
  Alcotest.(check int) "edges with loop" 3 (Graph.num_edges g);
  Alcotest.(check int) "self loop" 1 (Graph.self_loops g 3);
  let g2 = Io.parse "0 7\n" in
  Alcotest.(check int) "n inferred" 8 (Graph.num_vertices g2)

let test_io_errors () =
  (match Io.parse "0 x\n" with
  | exception Failure msg ->
    Alcotest.(check bool) "line number in message" true
      (String.length msg >= 4 && String.sub msg 0 4 = "line")
  | _ -> Alcotest.fail "expected parse failure");
  match Io.parse "n 2\n0 5\n" with
  | exception Failure _ -> ()
  | _ -> Alcotest.fail "expected out-of-range failure"

let prop_io_roundtrip =
  QCheck.Test.make ~name:"serialization roundtrip" ~count:100 arb_graph (fun g ->
      let g2 = Io.parse (Io.to_string g) in
      Graph.num_vertices g = Graph.num_vertices g2
      && Graph.num_edges g = Graph.num_edges g2
      && Graph.edges g = Graph.edges g2)

let () =
  Alcotest.run "graph"
    [ ( "construction",
        [ Alcotest.test_case "basic counts" `Quick test_basic_counts;
          Alcotest.test_case "self-loop degree convention" `Quick test_self_loops_count_one;
          Alcotest.test_case "mem_edge" `Quick test_mem_edge;
          Alcotest.test_case "out of range" `Quick test_out_of_range;
          Alcotest.test_case "edges roundtrip" `Quick test_iter_edges_roundtrip ] );
      ( "subgraphs",
        [ Alcotest.test_case "induced" `Quick test_induced_subgraph;
          Alcotest.test_case "saturated preserves degrees" `Quick
            test_saturated_subgraph_preserves_degrees;
          Alcotest.test_case "remove_edges adds loops" `Quick test_remove_edges_adds_loops;
          Alcotest.test_case "with_self_loops validation" `Quick test_with_self_loops_validation;
          Alcotest.test_case "empty graph" `Quick test_empty_graph ] );
      ( "metrics",
        [ Alcotest.test_case "cut & conductance" `Quick test_cut_and_conductance;
          Alcotest.test_case "conductance symmetric" `Quick test_conductance_symmetric;
          Alcotest.test_case "components" `Quick test_components;
          Alcotest.test_case "bfs & diameter" `Quick test_bfs_and_diameter;
          Alcotest.test_case "multi-source bfs" `Quick test_multi_source_bfs;
          Alcotest.test_case "degeneracy" `Quick test_degeneracy;
          Alcotest.test_case "sparse-cut predicate" `Quick test_sparse_cut_predicate;
          Alcotest.test_case "arboricity bound" `Quick test_arboricity_bound;
          Alcotest.test_case "fold_vertices" `Quick test_fold_vertices_sums_degrees;
          Alcotest.test_case "partition checks" `Quick test_partition_checks;
          Alcotest.test_case "subset diameter" `Quick test_subset_diameter ] );
      ( "serialization",
        [ Alcotest.test_case "roundtrip" `Quick test_io_roundtrip;
          Alcotest.test_case "file roundtrip" `Quick test_io_file_roundtrip;
          Alcotest.test_case "parse features" `Quick test_io_parse_features;
          Alcotest.test_case "errors" `Quick test_io_errors;
          QCheck_alcotest.to_alcotest prop_io_roundtrip ] );
      ( "properties",
        [ QCheck_alcotest.to_alcotest prop_invariants;
          QCheck_alcotest.to_alcotest prop_volume_split;
          QCheck_alcotest.to_alcotest prop_cut_bounded;
          QCheck_alcotest.to_alcotest prop_remove_edges_degree_invariant;
          QCheck_alcotest.to_alcotest prop_saturated_degrees;
          QCheck_alcotest.to_alcotest prop_components_partition ] ) ]

(* Tests for the fault-injection layer and the reliable-delivery
   primitives: fault-schedule determinism (same seed => identical
   trace and identical algorithm output), drop/duplication semantics,
   permanent link failures, crash-stop faults, and the honest ledger
   accounting of lossy runs. *)

module Graph = Dex_graph.Graph
module Metrics = Dex_graph.Metrics
module Gen = Dex_graph.Generators
module Vertex = Dex_graph.Vertex
module Rounds = Dex_congest.Rounds
module Network = Dex_congest.Network
module Faults = Dex_congest.Faults
module Reliable = Dex_congest.Reliable
module Primitives = Dex_congest.Primitives
module Rng = Dex_util.Rng

let lossy_net ?(spec = Faults.lossy ~drop:0.1 ~seed:42 ()) g =
  let faults = Faults.create spec in
  let net = Network.create ~faults g (Rounds.create ()) in
  (net, faults)

(* ---------- fault-schedule determinism ---------- *)

let run_lossy_bfs spec =
  let rng = Rng.create 5 in
  let g = Gen.connectivize rng (Gen.gnp rng ~n:30 ~p:0.12) in
  let net, faults = lossy_net ~spec g in
  let tree = Reliable.bfs_tree net ~root:(Vertex.local 0) in
  (tree.Primitives.depth, Faults.trace faults, Faults.drops faults,
   Rounds.total (Network.rounds net), Network.messages_sent net)

let test_fault_determinism () =
  let spec = Faults.lossy ~drop:0.15 ~duplicate:0.05 ~seed:1234 () in
  let d1, t1, n1, r1, m1 = run_lossy_bfs spec in
  let d2, t2, n2, r2, m2 = run_lossy_bfs spec in
  Alcotest.(check (array int)) "same output" d1 d2;
  Alcotest.(check bool) "same fault trace" true (t1 = t2);
  Alcotest.(check int) "same drop count" n1 n2;
  Alcotest.(check int) "same rounds" r1 r2;
  Alcotest.(check int) "same messages" m1 m2;
  (* a different seed gives a different adversary *)
  let _, t3, _, _, _ = run_lossy_bfs (Faults.lossy ~drop:0.15 ~duplicate:0.05 ~seed:99 ()) in
  Alcotest.(check bool) "different seed, different trace" false (t1 = t3)

let test_zero_probability_is_fault_free () =
  let rng = Rng.create 6 in
  let g = Gen.connectivize rng (Gen.gnp rng ~n:25 ~p:0.15) in
  let plain = Network.create g (Rounds.create ()) in
  let reference = Primitives.bfs_tree plain ~root:(Vertex.local 0) in
  let net, faults = lossy_net ~spec:(Faults.lossy ~drop:0.0 ~seed:7 ()) g in
  let tree = Reliable.bfs_tree net ~root:(Vertex.local 0) in
  Alcotest.(check (array int)) "depths" reference.Primitives.depth tree.Primitives.depth;
  Alcotest.(check int) "no drops" 0 (Faults.drops faults);
  Alcotest.(check bool) "empty trace" true (Faults.trace faults = [])

(* ---------- reliable primitives under message loss ---------- *)

let test_reliable_bfs_under_drops () =
  let rng = Rng.create 8 in
  let g = Gen.connectivize rng (Gen.gnp rng ~n:40 ~p:0.1) in
  let net, faults = lossy_net ~spec:(Faults.lossy ~drop:0.2 ~duplicate:0.1 ~seed:3 ()) g in
  let tree = Reliable.bfs_tree net ~root:(Vertex.local 0) in
  Alcotest.(check (array int)) "depths equal BFS distances"
    (Metrics.bfs_distances g 0) tree.Primitives.depth;
  Alcotest.(check bool) "faults actually fired" true (Faults.drops faults > 0)

let test_reliable_bfs_fault_free_matches () =
  let rng = Rng.create 9 in
  let g = Gen.connectivize rng (Gen.gnp rng ~n:30 ~p:0.12) in
  let net = Network.create g (Rounds.create ()) in
  let tree = Reliable.bfs_tree net ~root:(Vertex.local 3) in
  Alcotest.(check (array int)) "depths" (Metrics.bfs_distances g 3) tree.Primitives.depth;
  Alcotest.(check int) "root parent" 3 tree.Primitives.parent.(3);
  Array.iteri
    (fun v d ->
      if v <> 3 && d <> max_int then
        Alcotest.(check int) "parent one step closer" (d - 1)
          tree.Primitives.depth.(tree.Primitives.parent.(v)))
    tree.Primitives.depth

let test_reliable_leader_under_drops () =
  let rng = Rng.create 10 in
  let g = Gen.connectivize rng (Gen.gnp rng ~n:35 ~p:0.1) in
  let net, _ = lossy_net ~spec:(Faults.lossy ~drop:0.25 ~seed:11 ()) g in
  let leaders = Reliable.elect_leader net in
  Array.iteri (fun v l -> Alcotest.(check int) (Printf.sprintf "leader of %d" v) 0 l) leaders

let test_reliable_rounds_overhead_charged () =
  (* lossy runs must cost more rounds than fault-free ones, and the
     ledger must carry the difference under the protocol label *)
  let rng = Rng.create 12 in
  let g = Gen.connectivize rng (Gen.gnp rng ~n:40 ~p:0.1) in
  let base = Network.create g (Rounds.create ()) in
  let _ = Reliable.bfs_tree base ~root:(Vertex.local 0) in
  let base_rounds = List.assoc "bfs-reliable" (Rounds.by_phase (Network.rounds base)) in
  let net, _ = lossy_net ~spec:(Faults.lossy ~drop:0.3 ~seed:13 ()) g in
  let _ = Reliable.bfs_tree net ~root:(Vertex.local 0) in
  let lossy_rounds = List.assoc "bfs-reliable" (Rounds.by_phase (Network.rounds net)) in
  Alcotest.(check bool)
    (Printf.sprintf "lossy %d >= fault-free %d" lossy_rounds base_rounds)
    true (lossy_rounds >= base_rounds)

let test_value_limit_packs_two_per_word () =
  (* the packing contract behind reliable delivery: two payload values
     plus an ack bit per machine word *)
  Alcotest.(check bool) "positive" true (Reliable.value_limit > 0);
  Alcotest.(check bool) "two values + ack fit one word" true
    (Reliable.value_limit <= 1 lsl 30)

(* ---------- permanent link failures ---------- *)

let test_link_failure_fails_delivery () =
  let g = Gen.path 3 in
  let spec = { Faults.none with Faults.link_failures = [ ((1, 2), 1) ]; Faults.seed = 1 } in
  let faults = Faults.create spec in
  let net = Network.create ~faults g (Rounds.create ()) in
  let config = { Reliable.max_retries = 5; Reliable.give_up = false } in
  (match Reliable.bfs_tree ~config net ~root:(Vertex.local 0) with
  | exception Reliable.Delivery_failed { vertex; neighbor; attempts; _ } ->
    Alcotest.(check int) "failing vertex" 1 vertex;
    Alcotest.(check int) "unreachable neighbor" 2 neighbor;
    Alcotest.(check int) "attempts = budget" 5 attempts
  | _ -> Alcotest.fail "expected Delivery_failed");
  (* the failed run still charged its rounds *)
  Alcotest.(check bool) "rounds charged" true (Rounds.total (Network.rounds net) > 0);
  (* the trace shows the dead link *)
  Alcotest.(check bool) "link-down event recorded" true
    (List.exists
       (function Faults.Link_down { u = 1; v = 2; _ } -> true | _ -> false)
       (Faults.trace faults))

let test_link_failure_give_up_partitions () =
  let g = Gen.path 3 in
  let spec = { Faults.none with Faults.link_failures = [ ((1, 2), 1) ]; Faults.seed = 1 } in
  let net = Network.create ~faults:(Faults.create spec) g (Rounds.create ()) in
  let config = { Reliable.max_retries = 4; Reliable.give_up = true } in
  let tree = Reliable.bfs_tree ~config net ~root:(Vertex.local 0) in
  Alcotest.(check (array int)) "vertex 2 unreachable" [| 0; 1; max_int |] tree.Primitives.depth;
  Alcotest.(check (array int)) "members" [| 0; 1 |] tree.Primitives.members

(* ---------- crash-stop faults ---------- *)

let test_crash_stop () =
  let g = Gen.path 4 in
  let spec = { Faults.none with Faults.crashes = [ (3, 1) ]; Faults.seed = 1 } in
  let faults = Faults.create spec in
  let net = Network.create ~faults g (Rounds.create ()) in
  let config = { Reliable.max_retries = 4; Reliable.give_up = true } in
  let tree = Reliable.bfs_tree ~config net ~root:(Vertex.local 0) in
  Alcotest.(check (array int)) "crashed vertex outside tree"
    [| 0; 1; 2; max_int |] tree.Primitives.depth;
  Alcotest.(check bool) "crash event recorded" true
    (List.exists
       (function Faults.Crash { vertex = 3; _ } -> true | _ -> false)
       (Faults.trace faults))

(* ---------- congestion discipline still enforced under faults ---------- *)

let test_validation_precedes_faults () =
  (* even an adversary that drops everything does not excuse a
     congestion violation: validation happens before fault application *)
  let g = Gen.path 3 in
  let spec = Faults.lossy ~drop:1.0 ~seed:2 () in
  let net = Network.create ~faults:(Faults.create spec) g (Rounds.create ()) in
  (match
     Network.run_rounds net ~label:"bad"
       ~init:(fun _ -> ())
       ~step:(fun ~round:_ ~vertex st _ ->
         let vertex = Vertex.local_int vertex in
         if vertex = 0 then (st, [ (1, [| 1 |]); (1, [| 2 |]) ]) else (st, []))
       1
   with
  | exception Network.Congestion_violation _ -> ()
  | _ -> Alcotest.fail "expected Congestion_violation")

let test_drop_everything_counts () =
  let g = Gen.cycle 5 in
  let faults = Faults.create (Faults.lossy ~drop:1.0 ~seed:3 ()) in
  let net = Network.create ~faults g (Rounds.create ()) in
  let step ~round ~vertex st _ =
    let vertex = Vertex.local_int vertex in
    if round = 1 then begin
      let out = ref [] in
      Graph.iter_neighbors g vertex (fun u -> out := (u, [| vertex |]) :: !out);
      (st, !out)
    end
    else (st, [])
  in
  let _ = Network.run_rounds net ~label:"flood" ~init:(fun _ -> 0) ~step 2 in
  Alcotest.(check int) "all 10 sends dropped" 10 (Faults.drops faults);
  Alcotest.(check int) "nothing delivered" 0 (Network.messages_sent net)

let test_duplicates_counted () =
  let g = Gen.path 2 in
  let faults = Faults.create (Faults.lossy ~drop:0.0 ~duplicate:1.0 ~seed:4 ()) in
  let net = Network.create ~faults g (Rounds.create ()) in
  let step ~round ~vertex st _ =
    let vertex = Vertex.local_int vertex in
    if round = 1 && vertex = 0 then (st, [ (1, [| 7 |]) ]) else (st, [])
  in
  let _ = Network.run_rounds net ~label:"dup" ~init:(fun _ -> 0) ~step 2 in
  Alcotest.(check int) "one duplicate" 1 (Faults.duplicates faults);
  Alcotest.(check int) "delivered twice" 2 (Network.messages_sent net)

(* ---------- property: reliable BFS = centralized BFS under loss ---------- *)

let prop_reliable_bfs_under_loss =
  QCheck.Test.make ~name:"reliable BFS = centralized BFS under 15% loss" ~count:25
    QCheck.(pair (int_range 2 25) (int_bound 10_000))
    (fun (n, seed) ->
      let rng = Rng.create seed in
      let g = Gen.connectivize rng (Gen.gnp rng ~n ~p:0.15) in
      let faults = Faults.create (Faults.lossy ~drop:0.15 ~duplicate:0.05 ~seed ()) in
      let net = Network.create ~faults g (Rounds.create ()) in
      let tree = Reliable.bfs_tree net ~root:(Vertex.local (seed mod n)) in
      tree.Primitives.depth = Metrics.bfs_distances g (seed mod n))

let () =
  Alcotest.run "faults"
    [ ( "schedule",
        [ Alcotest.test_case "deterministic from seed" `Quick test_fault_determinism;
          Alcotest.test_case "p=0 is fault-free" `Quick test_zero_probability_is_fault_free;
          Alcotest.test_case "drop everything" `Quick test_drop_everything_counts;
          Alcotest.test_case "duplicates counted" `Quick test_duplicates_counted ] );
      ( "reliable",
        [ Alcotest.test_case "bfs under drops" `Quick test_reliable_bfs_under_drops;
          Alcotest.test_case "bfs fault-free" `Quick test_reliable_bfs_fault_free_matches;
          Alcotest.test_case "leader under drops" `Quick test_reliable_leader_under_drops;
          Alcotest.test_case "overhead charged" `Quick test_reliable_rounds_overhead_charged;
          Alcotest.test_case "value_limit packing" `Quick test_value_limit_packs_two_per_word;
          QCheck_alcotest.to_alcotest prop_reliable_bfs_under_loss ] );
      ( "failures",
        [ Alcotest.test_case "link failure raises" `Quick test_link_failure_fails_delivery;
          Alcotest.test_case "link failure give-up" `Quick test_link_failure_give_up_partitions;
          Alcotest.test_case "crash stop" `Quick test_crash_stop;
          Alcotest.test_case "validation precedes faults" `Quick test_validation_precedes_faults ] ) ]

(* End-to-end tests of the public Dexpander API — the calls a
   downstream user makes, exactly as the README shows them. *)

module X = Dexpander

let test_decompose_api () =
  let rng = X.Rng.create 1 in
  let g = X.Generators.dumbbell rng ~n1:40 ~n2:40 ~d:6 ~bridges:1 in
  let r = X.decompose g ~seed:1 in
  Alcotest.(check int) "two parts" 2 (List.length r.X.Decomposition.parts);
  X.Metrics.check_partition g r.X.Decomposition.parts

let test_decompose_epsilon_k_knobs () =
  let rng = X.Rng.create 2 in
  let g = X.Generators.planted_partition rng ~parts:3 ~size:30 ~p_in:0.4 ~p_out:0.02 in
  let g = X.Generators.connectivize rng g in
  let r = X.decompose ~epsilon:0.3 ~k:3 g ~seed:2 in
  Alcotest.(check bool) "epsilon respected" true
    (r.X.Decomposition.edge_fraction_removed <= 0.3);
  Alcotest.(check int) "schedule k" 3 r.X.Decomposition.schedule.X.Schedule.k

let test_sparse_cut_api () =
  let rng = X.Rng.create 3 in
  let g = X.Generators.dumbbell rng ~n1:30 ~n2:30 ~d:4 ~bridges:1 in
  let r = X.sparse_cut ~phi:0.05 g ~seed:3 in
  Alcotest.(check bool) "found balanced cut" true (r.X.Sparse_cut.balance >= 1.0 /. 48.0)

let test_ldd_api () =
  let g = X.Generators.cycle 14_000 in
  let r = X.low_diameter_decomposition ~beta:0.7 g ~seed:4 in
  X.Metrics.check_partition g r.X.Ldd.parts;
  Alcotest.(check bool) "clustered" true (List.length r.X.Ldd.parts > 1)

let test_triangles_api () =
  let rng = X.Rng.create 5 in
  let g = X.Generators.connectivize rng (X.Generators.gnp rng ~n:50 ~p:0.3) in
  let r = X.enumerate_triangles g ~seed:5 in
  Alcotest.(check bool) "complete" true r.X.Triangle_enum.complete;
  Alcotest.(check int) "matches exact" (X.Triangles.count g)
    (List.length r.X.Triangle_enum.triangles)

let test_reexports_cohere () =
  (* the umbrella modules are the same as the underlying libraries *)
  let g = X.Generators.complete 5 in
  Alcotest.(check int) "graph ops" 10 (X.Graph.num_edges g);
  Alcotest.(check int) "triangles" 10 (X.Triangles.count g);
  let gap, _ = X.Mixing.spectral_gap g (X.Rng.create 6) in
  Alcotest.(check bool) "spectral available" true (gap > 0.0)

let test_seeded_reproducibility () =
  let rng = X.Rng.create 7 in
  let g = X.Generators.dumbbell rng ~n1:30 ~n2:30 ~d:4 ~bridges:1 in
  let r1 = X.decompose g ~seed:42 and r2 = X.decompose g ~seed:42 in
  Alcotest.(check (array int)) "identical partitions" r1.X.Decomposition.part_of
    r2.X.Decomposition.part_of

let () =
  Alcotest.run "core"
    [ ( "public-api",
        [ Alcotest.test_case "decompose" `Quick test_decompose_api;
          Alcotest.test_case "decompose knobs" `Quick test_decompose_epsilon_k_knobs;
          Alcotest.test_case "sparse cut" `Quick test_sparse_cut_api;
          Alcotest.test_case "ldd" `Quick test_ldd_api;
          Alcotest.test_case "triangles" `Quick test_triangles_api;
          Alcotest.test_case "re-exports" `Quick test_reexports_cohere;
          Alcotest.test_case "reproducibility" `Quick test_seeded_reproducibility ] ) ]
